#include "exec/reference_executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/parallel.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "expr/eval.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

// Floor division (regrid/window bin coordinates by value, negatives included).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

// Canonical string key for a row restricted to `cols`; consistent with
// Value::ToString so Int64(3) and Float64(3.0) key identically ("3").
std::string RowKey(const Table& t, int64_t row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    key += t.At(row, c).ToString();
    key += '\x1f';
  }
  return key;
}

std::vector<int> AllColumns(const Table& t) {
  std::vector<int> cols(static_cast<size_t>(t.num_columns()));
  for (int i = 0; i < t.num_columns(); ++i) cols[static_cast<size_t>(i)] = i;
  return cols;
}

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    NEXUS_ASSIGN_OR_RETURN(int i, schema.FindFieldOrError(n));
    out.push_back(i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Aggregation machinery (shared by aggregate, regrid, window).
// ---------------------------------------------------------------------------

struct AggState {
  int64_t count = 0;     // non-null inputs seen
  int64_t isum = 0;      // exact integer sum
  double fsum = 0.0;     // floating sum
  Value min_v, max_v;    // extremes

  void Update(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_int64()) isum += v.AsInt64();
    if (v.is_numeric()) fsum += v.AsDouble();
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
  }

  Result<Value> Finish(AggFunc func, DataType input_type) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int64(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return input_type == DataType::kInt64 ? Value::Int64(isum)
                                              : Value::Float64(fsum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Float64(fsum / static_cast<double>(count));
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Status::Internal("unhandled aggregate");
  }
};

// Grouped aggregation core: rows of `input` are grouped by `group_cols`
// (first-seen order); each AggSpec's input expression is pre-evaluated to a
// column. `count_star` entries (null input) count rows.
Result<TablePtr> RunGroupedAggregate(const Table& input,
                                     const std::vector<int>& group_cols,
                                     const std::vector<AggSpec>& aggs,
                                     SchemaPtr output_schema) {
  std::vector<Column> agg_inputs;
  std::vector<DataType> agg_types;
  for (const AggSpec& a : aggs) {
    if (a.input != nullptr) {
      NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*a.input, input));
      agg_types.push_back(c.type());
      agg_inputs.push_back(std::move(c));
    } else {
      agg_types.push_back(DataType::kInt64);
      agg_inputs.emplace_back(DataType::kInt64);  // unused placeholder
    }
  }
  std::unordered_map<std::string, size_t> group_index;
  std::vector<int64_t> group_rep_row;          // representative row per group
  std::vector<std::vector<AggState>> states;   // per group, per agg
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    std::string key = RowKey(input, r, group_cols);
    auto [it, inserted] = group_index.emplace(std::move(key), states.size());
    if (inserted) {
      group_rep_row.push_back(r);
      states.emplace_back(aggs.size());
    }
    std::vector<AggState>& gs = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].input == nullptr) {
        ++gs[a].count;  // count(*): every row counts
      } else {
        gs[a].Update(agg_inputs[a].GetValue(r));
      }
    }
  }
  // SQL semantics: a global aggregate (no group keys) over an empty input
  // still yields one row (count = 0, sum/min/max = null).
  if (group_cols.empty() && states.empty()) {
    group_rep_row.push_back(0);  // unused: no group columns to gather
    states.emplace_back(aggs.size());
  }
  TableBuilder builder(output_schema);
  builder.Reserve(static_cast<int64_t>(states.size()));
  std::vector<Value> row;
  for (size_t g = 0; g < states.size(); ++g) {
    row.clear();
    for (int c : group_cols) row.push_back(input.At(group_rep_row[g], c));
    for (size_t a = 0; a < aggs.size(); ++a) {
      NEXUS_ASSIGN_OR_RETURN(Value v, states[g][a].Finish(aggs[a].func, agg_types[a]));
      row.push_back(std::move(v));
    }
    NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

}  // namespace

Result<Dataset> ReferenceExecutor::Execute(const Plan& plan) {
  loop_stack_.clear();
  return Exec(plan);
}

Result<TablePtr> ReferenceExecutor::ExecTable(const Plan& plan) {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, Exec(plan));
  return d.AsTable();
}

Result<Dataset> ReferenceExecutor::Exec(const Plan& plan) {
  if (!telemetry::Enabled()) return ExecNode(plan);
  telemetry::SpanGuard span(telemetry::kCategoryOperator, plan.NodeLabel());
  auto result = ExecNode(plan);
  if (result.ok() && span.active()) {
    span.AddCounter("rows", result.ValueOrDie().num_rows());
    span.AddCounter("bytes", result.ValueOrDie().ByteSize());
  }
  return result;
}

Result<Dataset> ReferenceExecutor::ExecNode(const Plan& plan) {
  switch (plan.kind()) {
    case OpKind::kScan: {
      if (catalog_ == nullptr) {
        return Status::PlanError("scan without a catalog");
      }
      return catalog_->Get(plan.As<ScanOp>().table);
    }
    case OpKind::kValues:
      return plan.As<ValuesOp>().data;
    case OpKind::kLoopVar: {
      if (loop_stack_.empty()) {
        return Status::PlanError("loopvar outside iterate at runtime");
      }
      const ExecLoopFrame& frame = loop_stack_.back();
      return plan.As<LoopVarOp>().previous ? frame.previous : frame.current;
    }
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                             EvalPredicate(*plan.As<SelectOp>().predicate, *in));
      return Dataset(in->TakeRows(sel));
    }
    case OpKind::kProject: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(std::vector<int> cols,
                             ResolveColumns(*in->schema(), plan.As<ProjectOp>().columns));
      std::vector<Field> fields;
      std::vector<Column> out_cols;
      for (int c : cols) {
        fields.push_back(in->schema()->field(c));
        out_cols.push_back(in->column(c));
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Table::Make(schema, std::move(out_cols)));
      return Dataset(out);
    }
    case OpKind::kExtend: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      std::vector<Field> fields = in->schema()->fields();
      std::vector<Column> cols = in->columns();
      TablePtr working = in;
      for (const auto& [name, expr] : plan.As<ExtendOp>().defs) {
        NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*expr, *working));
        fields.push_back(Field::Attr(name, c.type()));
        cols.push_back(std::move(c));
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr s, Schema::Make(fields));
        NEXUS_ASSIGN_OR_RETURN(working, Table::Make(s, cols));
      }
      return Dataset(working);
    }
    case OpKind::kJoin: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr left, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr right, ExecTable(*plan.child(1)));
      const auto& op = plan.As<JoinOp>();
      NEXUS_ASSIGN_OR_RETURN(std::vector<int> lk,
                             ResolveColumns(*left->schema(), op.left_keys));
      NEXUS_ASSIGN_OR_RETURN(std::vector<int> rk,
                             ResolveColumns(*right->schema(), op.right_keys));
      // Hash the right side.
      std::unordered_map<std::string, std::vector<int64_t>> hash;
      for (int64_t r = 0; r < right->num_rows(); ++r) {
        // SQL equi-join semantics: null keys never match.
        bool has_null_key = false;
        for (int c : rk) {
          if (right->column(c).IsNull(r)) {
            has_null_key = true;
            break;
          }
        }
        if (!has_null_key) hash[RowKey(*right, r, rk)].push_back(r);
      }
      // Output layout: left fields, then right non-key fields (tags cleared).
      std::vector<int> right_out_cols;
      std::vector<Field> fields = left->schema()->fields();
      for (int c = 0; c < right->num_columns(); ++c) {
        const std::string& n = right->schema()->field(c).name;
        if (std::find(op.right_keys.begin(), op.right_keys.end(), n) !=
            op.right_keys.end()) {
          continue;
        }
        Field f = right->schema()->field(c);
        f.is_dimension = false;
        fields.push_back(f);
        right_out_cols.push_back(c);
      }
      bool semi_anti = op.type == JoinType::kSemi || op.type == JoinType::kAnti;
      SchemaPtr out_schema;
      if (semi_anti) {
        out_schema = left->schema();
      } else {
        NEXUS_ASSIGN_OR_RETURN(out_schema, Schema::Make(std::move(fields)));
      }
      // Residual scope: left fields + all right fields not already on the left.
      SchemaPtr residual_schema;
      std::vector<int> residual_right_cols;
      if (op.residual != nullptr) {
        std::vector<Field> combined = left->schema()->fields();
        for (int c = 0; c < right->num_columns(); ++c) {
          const Field& f = right->schema()->field(c);
          if (left->schema()->FindField(f.name) >= 0) continue;
          combined.push_back(f);
          residual_right_cols.push_back(c);
        }
        NEXUS_ASSIGN_OR_RETURN(residual_schema, Schema::Make(std::move(combined)));
      }
      auto residual_passes = [&](int64_t lr, int64_t rr) -> Result<bool> {
        if (op.residual == nullptr) return true;
        std::vector<Value> combined = left->Row(lr);
        for (int c : residual_right_cols) combined.push_back(right->At(rr, c));
        NEXUS_ASSIGN_OR_RETURN(Value v,
                               EvalExprRow(*op.residual, *residual_schema, combined));
        return !v.is_null() && v.AsBool();
      };
      // Morsel-parallel probe: each morsel of left rows appends its matches
      // to a private builder; the per-morsel tables are concatenated in
      // morsel order below, reproducing the sequential row order exactly.
      // (A sequential run covers all rows in one call landing in slot 0.)
      const int64_t nl = left->num_rows();
      const int64_t grain = kMorselRows;
      const size_t morsels =
          static_cast<size_t>(std::max<int64_t>(1, (nl + grain - 1) / grain));
      std::vector<TablePtr> parts(morsels);
      std::vector<Status> statuses(morsels, Status::OK());
      ParallelFor(nl, grain, [&](int64_t begin, int64_t end) {
        size_t slot = static_cast<size_t>(begin / grain);
        statuses[slot] = [&]() -> Status {
          TableBuilder builder(out_schema);
          std::vector<Value> row;
          for (int64_t lr = begin; lr < end; ++lr) {
            bool null_key = false;
            for (int c : lk) {
              if (left->column(c).IsNull(lr)) {
                null_key = true;
                break;
              }
            }
            const std::vector<int64_t>* matches = nullptr;
            if (!null_key) {
              auto it = hash.find(RowKey(*left, lr, lk));
              if (it != hash.end()) matches = &it->second;
            }
            int64_t match_count = 0;
            if (matches != nullptr) {
              for (int64_t rr : *matches) {
                NEXUS_ASSIGN_OR_RETURN(bool pass, residual_passes(lr, rr));
                if (!pass) continue;
                ++match_count;
                if (op.type == JoinType::kSemi || op.type == JoinType::kAnti) break;
                row = left->Row(lr);
                for (int c : right_out_cols) row.push_back(right->At(rr, c));
                NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
              }
            }
            if (match_count == 0 && op.type == JoinType::kLeft) {
              row = left->Row(lr);
              for (size_t i = 0; i < right_out_cols.size(); ++i) {
                row.push_back(Value::Null());
              }
              NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
            }
            if ((op.type == JoinType::kSemi && match_count > 0) ||
                (op.type == JoinType::kAnti && match_count == 0)) {
              NEXUS_RETURN_NOT_OK(builder.AppendRow(left->Row(lr)));
            }
          }
          NEXUS_ASSIGN_OR_RETURN(parts[slot], builder.Finish());
          return Status::OK();
        }();
      });
      for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);
      std::vector<Column> joined_cols;
      for (const Field& f : out_schema->fields()) joined_cols.emplace_back(f.type);
      for (const TablePtr& part : parts) {
        if (part == nullptr) continue;
        for (int c = 0; c < part->num_columns(); ++c) {
          NEXUS_RETURN_NOT_OK(
              joined_cols[static_cast<size_t>(c)].AppendColumn(part->column(c)));
        }
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             Table::Make(out_schema, std::move(joined_cols)));
      return Dataset(out);
    }
    case OpKind::kAggregate: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& op = plan.As<AggregateOp>();
      NEXUS_ASSIGN_OR_RETURN(std::vector<int> group_cols,
                             ResolveColumns(*in->schema(), op.group_by));
      std::vector<Field> fields;
      for (int c : group_cols) fields.push_back(in->schema()->field(c));
      for (const AggSpec& a : op.aggs) {
        DataType input_type = DataType::kInt64;
        if (a.input != nullptr) {
          NEXUS_ASSIGN_OR_RETURN(input_type, InferExprType(*a.input, *in->schema()));
        }
        NEXUS_ASSIGN_OR_RETURN(DataType out_t, AggResultType(a.func, input_type));
        fields.push_back(Field::Attr(a.output_name, out_t));
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             RunGroupedAggregate(*in, group_cols, op.aggs, schema));
      return Dataset(out);
    }
    case OpKind::kSort: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& keys = plan.As<SortOp>().keys;
      std::vector<int> key_cols;
      for (const SortKey& k : keys) {
        NEXUS_ASSIGN_OR_RETURN(int c, in->schema()->FindFieldOrError(k.column));
        key_cols.push_back(c);
      }
      std::vector<int64_t> order(static_cast<size_t>(in->num_rows()));
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
      std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        for (size_t k = 0; k < keys.size(); ++k) {
          int cmp = in->At(a, key_cols[k]).Compare(in->At(b, key_cols[k]));
          if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
        }
        return false;
      });
      return Dataset(in->TakeRows(order));
    }
    case OpKind::kLimit: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& op = plan.As<LimitOp>();
      return Dataset(in->Slice(op.offset, op.limit));
    }
    case OpKind::kDistinct: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      std::vector<int> all = AllColumns(*in);
      std::unordered_map<std::string, bool> seen;
      std::vector<int64_t> keep;
      for (int64_t r = 0; r < in->num_rows(); ++r) {
        if (seen.emplace(RowKey(*in, r, all), true).second) keep.push_back(r);
      }
      return Dataset(in->TakeRows(keep));
    }
    case OpKind::kUnion: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr left, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr right, ExecTable(*plan.child(1)));
      if (!left->schema()->Equals(*right->schema())) {
        return Status::TypeError("union schema mismatch at runtime");
      }
      std::vector<Column> cols = left->columns();
      for (size_t c = 0; c < cols.size(); ++c) {
        NEXUS_RETURN_NOT_OK(cols[c].AppendColumn(right->column(static_cast<int>(c))));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             Table::Make(left->schema(), std::move(cols)));
      return Dataset(out);
    }
    case OpKind::kRename: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      std::vector<Field> fields = in->schema()->fields();
      for (const auto& [from, to] : plan.As<RenameOp>().mapping) {
        NEXUS_ASSIGN_OR_RETURN(int i, in->schema()->FindFieldOrError(from));
        fields[static_cast<size_t>(i)].name = to;
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Table::Make(schema, in->columns()));
      return Dataset(out);
    }
    case OpKind::kRebox: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& op = plan.As<ReboxOp>();
      std::vector<Field> fields = in->schema()->fields();
      for (Field& f : fields) f.is_dimension = false;
      for (const std::string& d : op.dims) {
        NEXUS_ASSIGN_OR_RETURN(int i, in->schema()->FindFieldOrError(d));
        if (in->column(i).has_nulls()) {
          return Status::InvalidArgument(
              StrCat("rebox dimension ", d, " contains nulls"));
        }
        fields[static_cast<size_t>(i)].is_dimension = true;
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Table::Make(schema, in->columns()));
      return Dataset(out);
    }
    case OpKind::kUnbox: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr out, Table::Make(in->schema()->WithoutDimensions(), in->columns()));
      return Dataset(out);
    }
    case OpKind::kSlice: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      std::vector<int64_t> keep;
      const auto& ranges = plan.As<SliceOp>().ranges;
      std::vector<int> dim_cols;
      for (const DimRange& r : ranges) {
        NEXUS_ASSIGN_OR_RETURN(int c, in->schema()->FindFieldOrError(r.dim));
        dim_cols.push_back(c);
      }
      for (int64_t row = 0; row < in->num_rows(); ++row) {
        bool inside = true;
        for (size_t i = 0; i < ranges.size(); ++i) {
          int64_t v = in->column(dim_cols[i]).ints()[static_cast<size_t>(row)];
          if (v < ranges[i].lo || v >= ranges[i].hi) {
            inside = false;
            break;
          }
        }
        if (inside) keep.push_back(row);
      }
      return Dataset(in->TakeRows(keep));
    }
    case OpKind::kShift: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      std::vector<Column> cols = in->columns();
      for (const auto& [dim, delta] : plan.As<ShiftOp>().offsets) {
        NEXUS_ASSIGN_OR_RETURN(int c, in->schema()->FindFieldOrError(dim));
        std::vector<int64_t> shifted = cols[static_cast<size_t>(c)].ints();
        for (int64_t& v : shifted) v += delta;
        cols[static_cast<size_t>(c)] = Column::FromInt64(std::move(shifted));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Table::Make(in->schema(), std::move(cols)));
      return Dataset(out);
    }
    case OpKind::kRegrid: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& op = plan.As<RegridOp>();
      // Bin each dimension by its factor (1 when unlisted), then aggregate
      // numeric attributes per bin.
      std::vector<int> dim_cols = in->schema()->DimensionIndices();
      std::vector<int64_t> factors(dim_cols.size(), 1);
      for (const auto& [dim, f] : op.factors) {
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          if (in->schema()->field(dim_cols[d]).name == dim) factors[d] = f;
        }
      }
      std::vector<Column> binned_cols = in->columns();
      for (size_t d = 0; d < dim_cols.size(); ++d) {
        std::vector<int64_t> binned =
            in->column(dim_cols[d]).ints();
        for (int64_t& v : binned) v = FloorDiv(v, factors[d]);
        binned_cols[static_cast<size_t>(dim_cols[d])] =
            Column::FromInt64(std::move(binned));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr binned,
                             Table::Make(in->schema(), std::move(binned_cols)));
      std::vector<AggSpec> aggs;
      std::vector<Field> fields;
      std::vector<std::string> group_names;
      for (int c : dim_cols) {
        fields.push_back(in->schema()->field(c));
        group_names.push_back(in->schema()->field(c).name);
      }
      for (int c : in->schema()->AttributeIndices()) {
        const Field& f = in->schema()->field(c);
        if (!IsNumeric(f.type)) continue;
        NEXUS_ASSIGN_OR_RETURN(DataType out_t, AggResultType(op.func, f.type));
        fields.push_back(Field::Attr(f.name, out_t));
        aggs.push_back(AggSpec{op.func, Expr::ColumnRef(f.name), f.name});
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out,
                             RunGroupedAggregate(*binned, dim_cols, aggs, schema));
      return Dataset(out);
    }
    case OpKind::kTranspose: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& order = plan.As<TransposeOp>().dim_order;
      std::vector<Field> fields;
      std::vector<Column> cols;
      for (const std::string& d : order) {
        NEXUS_ASSIGN_OR_RETURN(int c, in->schema()->FindFieldOrError(d));
        fields.push_back(in->schema()->field(c));
        cols.push_back(in->column(c));
      }
      for (int c : in->schema()->AttributeIndices()) {
        fields.push_back(in->schema()->field(c));
        cols.push_back(in->column(c));
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, Table::Make(schema, std::move(cols)));
      return Dataset(out);
    }
    case OpKind::kWindow: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, ExecTable(*plan.child(0)));
      const auto& op = plan.As<WindowOp>();
      std::vector<int> dim_cols = in->schema()->DimensionIndices();
      std::vector<int64_t> radii(dim_cols.size(), 0);
      for (const auto& [dim, r] : op.radii) {
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          if (in->schema()->field(dim_cols[d]).name == dim) radii[d] = r;
        }
      }
      // Index cells by coordinates.
      std::map<std::vector<int64_t>, int64_t> index;
      std::vector<int64_t> coords(dim_cols.size());
      for (int64_t r = 0; r < in->num_rows(); ++r) {
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          coords[d] = in->column(dim_cols[d]).ints()[static_cast<size_t>(r)];
        }
        index[coords] = r;
      }
      std::vector<int> attr_cols;
      std::vector<Field> fields;
      for (int c : dim_cols) fields.push_back(in->schema()->field(c));
      for (int c : in->schema()->AttributeIndices()) {
        const Field& f = in->schema()->field(c);
        if (!IsNumeric(f.type)) continue;
        NEXUS_ASSIGN_OR_RETURN(DataType out_t, AggResultType(op.func, f.type));
        fields.push_back(Field::Attr(f.name, out_t));
        attr_cols.push_back(c);
      }
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      TableBuilder builder(schema);
      std::vector<Value> row;
      // Enumerate the window box around each occupied cell.
      std::vector<int64_t> offset(dim_cols.size());
      for (int64_t r = 0; r < in->num_rows(); ++r) {
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          coords[d] = in->column(dim_cols[d]).ints()[static_cast<size_t>(r)];
        }
        std::vector<AggState> states(attr_cols.size());
        std::vector<DataType> types;
        for (int c : attr_cols) types.push_back(in->schema()->field(c).type);
        std::fill(offset.begin(), offset.end(), 0);
        for (size_t d = 0; d < offset.size(); ++d) offset[d] = -radii[d];
        while (true) {
          std::vector<int64_t> probe(coords);
          for (size_t d = 0; d < probe.size(); ++d) probe[d] += offset[d];
          auto it = index.find(probe);
          if (it != index.end()) {
            for (size_t a = 0; a < attr_cols.size(); ++a) {
              states[a].Update(in->At(it->second, attr_cols[a]));
            }
          }
          // Odometer increment over the box.
          size_t d = 0;
          for (; d < offset.size(); ++d) {
            if (offset[d] < radii[d]) {
              ++offset[d];
              for (size_t e = 0; e < d; ++e) offset[e] = -radii[e];
              break;
            }
          }
          if (d == offset.size()) break;
        }
        row.clear();
        for (int64_t c : coords) row.push_back(Value::Int64(c));
        for (size_t a = 0; a < attr_cols.size(); ++a) {
          NEXUS_ASSIGN_OR_RETURN(Value v, states[a].Finish(op.func, types[a]));
          row.push_back(std::move(v));
        }
        NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, builder.Finish());
      return Dataset(out);
    }
    case OpKind::kElemWise: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr left, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr right, ExecTable(*plan.child(1)));
      BinaryOp op = plan.As<ElemWiseOpSpec>().op;
      std::vector<int> ld = left->schema()->DimensionIndices();
      std::vector<int> rd = right->schema()->DimensionIndices();
      int la = left->schema()->AttributeIndices().at(0);
      int ra = right->schema()->AttributeIndices().at(0);
      std::unordered_map<std::string, int64_t> rindex;
      for (int64_t r = 0; r < right->num_rows(); ++r) {
        rindex[RowKey(*right, r, rd)] = r;
      }
      DataType lt = left->schema()->field(la).type;
      DataType rt = right->schema()->field(ra).type;
      NEXUS_ASSIGN_OR_RETURN(DataType vt, CommonNumericType(lt, rt));
      if (op == BinaryOp::kDiv) vt = DataType::kFloat64;
      std::vector<Field> fields;
      for (int c : ld) fields.push_back(left->schema()->field(c));
      fields.push_back(Field::Attr(left->schema()->field(la).name, vt));
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
      TableBuilder builder(schema);
      std::vector<Value> row;
      Schema pair_schema({Field::Attr("l", lt), Field::Attr("r", rt)});
      ExprPtr formula = Expr::Binary(op, Expr::ColumnRef("l"), Expr::ColumnRef("r"));
      for (int64_t r = 0; r < left->num_rows(); ++r) {
        auto it = rindex.find(RowKey(*left, r, ld));
        if (it == rindex.end()) continue;  // cell-wise ops intersect occupancy
        row.clear();
        for (int c : ld) row.push_back(left->At(r, c));
        NEXUS_ASSIGN_OR_RETURN(
            Value v, EvalExprRow(*formula, pair_schema,
                                 {left->At(r, la), right->At(it->second, ra)}));
        NEXUS_ASSIGN_OR_RETURN(Value cast, v.CastTo(vt));
        row.push_back(std::move(cast));
        NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, builder.Finish());
      return Dataset(out);
    }
    case OpKind::kMatMul: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr left, ExecTable(*plan.child(0)));
      NEXUS_ASSIGN_OR_RETURN(TablePtr right, ExecTable(*plan.child(1)));
      const auto& op = plan.As<MatMulOp>();
      std::vector<int> ld = left->schema()->DimensionIndices();
      std::vector<int> rd = right->schema()->DimensionIndices();
      if (ld.size() != 2 || rd.size() != 2) {
        return Status::PlanError("matmul inputs must be 2-d at runtime");
      }
      int la = left->schema()->AttributeIndices().at(0);
      int ra = right->schema()->AttributeIndices().at(0);
      // Group the right side by its contraction coordinate.
      std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>> rows_of_k;
      for (int64_t r = 0; r < right->num_rows(); ++r) {
        int64_t k = right->column(rd[0]).ints()[static_cast<size_t>(r)];
        int64_t c = right->column(rd[1]).ints()[static_cast<size_t>(r)];
        rows_of_k[k].emplace_back(c, right->column(ra).NumericAt(r));
      }
      // Accumulate the sparse product.
      std::map<std::pair<int64_t, int64_t>, double> acc;
      for (int64_t r = 0; r < left->num_rows(); ++r) {
        int64_t i = left->column(ld[0]).ints()[static_cast<size_t>(r)];
        int64_t k = left->column(ld[1]).ints()[static_cast<size_t>(r)];
        auto it = rows_of_k.find(k);
        if (it == rows_of_k.end()) continue;
        double a = left->column(la).NumericAt(r);
        for (const auto& [c, b] : it->second) acc[{i, c}] += a * b;
      }
      DataType lt = left->schema()->field(la).type;
      DataType rt = right->schema()->field(ra).type;
      NEXUS_ASSIGN_OR_RETURN(DataType vt, CommonNumericType(lt, rt));
      std::string row_name = left->schema()->field(ld[0]).name;
      std::string col_name = right->schema()->field(rd[1]).name;
      if (col_name == row_name) col_name += "_2";
      NEXUS_ASSIGN_OR_RETURN(
          SchemaPtr schema,
          Schema::Make({Field::Dim(row_name), Field::Dim(col_name),
                        Field::Attr(op.result_attr, vt)}));
      TableBuilder builder(schema);
      for (const auto& [rc, v] : acc) {
        // MatMul output is sparse: zero-valued sums are not materialized
        // (keeps table, array, and linear-algebra providers agreeing).
        if (v == 0.0) continue;
        Value val = vt == DataType::kInt64
                        ? Value::Int64(static_cast<int64_t>(std::llround(v)))
                        : Value::Float64(v);
        NEXUS_RETURN_NOT_OK(builder.AppendRow(
            {Value::Int64(rc.first), Value::Int64(rc.second), val}));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, builder.Finish());
      return Dataset(out);
    }
    case OpKind::kPageRank: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr edges, ExecTable(*plan.child(0)));
      const auto& op = plan.As<PageRankOp>();
      NEXUS_ASSIGN_OR_RETURN(int sc, edges->schema()->FindFieldOrError(op.src_col));
      NEXUS_ASSIGN_OR_RETURN(int dc, edges->schema()->FindFieldOrError(op.dst_col));
      // Compact node ids.
      std::map<int64_t, int64_t> node_id;
      const auto& src = edges->column(sc).ints();
      const auto& dst = edges->column(dc).ints();
      for (int64_t v : src) node_id.emplace(v, 0);
      for (int64_t v : dst) node_id.emplace(v, 0);
      int64_t n = 0;
      for (auto& [v, id] : node_id) id = n++;
      std::vector<int64_t> out_degree(static_cast<size_t>(n), 0);
      std::vector<std::pair<int64_t, int64_t>> edge_list;
      edge_list.reserve(src.size());
      for (size_t e = 0; e < src.size(); ++e) {
        int64_t s = node_id[src[e]], d = node_id[dst[e]];
        ++out_degree[static_cast<size_t>(s)];
        edge_list.emplace_back(s, d);
      }
      std::vector<double> rank(static_cast<size_t>(n), n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
      std::vector<double> next(static_cast<size_t>(n));
      for (int64_t iter = 0; iter < op.max_iters; ++iter) {
        double dangling = 0.0;
        for (int64_t v = 0; v < n; ++v) {
          if (out_degree[static_cast<size_t>(v)] == 0) {
            dangling += rank[static_cast<size_t>(v)];
          }
        }
        double base = (1.0 - op.damping) / static_cast<double>(n) +
                      op.damping * dangling / static_cast<double>(n);
        std::fill(next.begin(), next.end(), base);
        for (const auto& [s, d] : edge_list) {
          next[static_cast<size_t>(d)] +=
              op.damping * rank[static_cast<size_t>(s)] /
              static_cast<double>(out_degree[static_cast<size_t>(s)]);
        }
        double delta = 0.0;
        for (int64_t v = 0; v < n; ++v) {
          delta += std::fabs(next[static_cast<size_t>(v)] - rank[static_cast<size_t>(v)]);
        }
        rank.swap(next);
        ++iterations_run_;
        if (delta < op.epsilon) break;
      }
      NEXUS_ASSIGN_OR_RETURN(
          SchemaPtr schema,
          Schema::Make({Field::Dim("node"), Field::Attr("rank", DataType::kFloat64)}));
      TableBuilder builder(schema);
      for (const auto& [v, id] : node_id) {
        NEXUS_RETURN_NOT_OK(builder.AppendRow(
            {Value::Int64(v), Value::Float64(rank[static_cast<size_t>(id)])}));
      }
      NEXUS_ASSIGN_OR_RETURN(TablePtr out, builder.Finish());
      return Dataset(out);
    }
    case OpKind::kIterate: {
      const auto& op = plan.As<IterateOp>();
      NEXUS_ASSIGN_OR_RETURN(Dataset state, Exec(*plan.child(0)));
      for (int64_t iter = 0; iter < op.max_iters; ++iter) {
        loop_stack_.push_back(ExecLoopFrame{state, state});
        auto next = Exec(*op.body);
        loop_stack_.pop_back();
        NEXUS_RETURN_NOT_OK(next.status());
        ++iterations_run_;
        if (op.measure != nullptr) {
          loop_stack_.push_back(ExecLoopFrame{next.ValueOrDie(), state});
          auto measured = Exec(*op.measure);
          loop_stack_.pop_back();
          NEXUS_RETURN_NOT_OK(measured.status());
          NEXUS_ASSIGN_OR_RETURN(TablePtr mt, measured.ValueOrDie().AsTable());
          if (mt->num_rows() != 1 || mt->num_columns() != 1) {
            return Status::PlanError(
                StrCat("iterate measure must yield exactly one cell, got ",
                       mt->num_rows(), " rows"));
          }
          Value v = mt->At(0, 0);
          state = next.MoveValue();
          if (!v.is_null() && v.AsDouble() < op.epsilon) break;
        } else {
          state = next.MoveValue();
        }
      }
      return state;
    }
    case OpKind::kExchange:
      // Exchange is a physical placement marker; data-wise it is identity.
      return Exec(*plan.child(0));
  }
  return Status::Internal("unhandled operator in reference executor");
}

}  // namespace nexus
