#include "exec/incremental/view.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "exec/spill/spill.h"
#include "expr/eval.h"
#include "optimizer/incremental.h"
#include "relational/engine.h"
#include "telemetry/metrics.h"

namespace nexus {
namespace incremental {

namespace {

// ---------------------------------------------------------------------------
// Scratch-order keys.
//
// Each delta row carries its position in the full-recompute output of its
// operator as a lexicographic int64 vector. Widths are fixed per node
// (scan/const = 1, join = left + right, union = 1 + max(children), padded
// with kKeyPad), so keys of one node always compare component-wise and a
// sort by key reproduces the full-recompute row order exactly.
// ---------------------------------------------------------------------------

using Key = std::vector<int64_t>;

constexpr int64_t kKeyPad = std::numeric_limits<int64_t>::min();

// Hidden key-column prefixes carried through relational::HashJoin so the
// join's gather recovers each output pair's (left, right) keys.
constexpr const char* kLeftKeyPrefix = "__nxlk";
constexpr const char* kRightKeyPrefix = "__nxrk";

constexpr const char* kRefuseMarker = "ivm-refuse: ";

Status Refuse(const std::string& why) {
  return Status(StatusCode::kUnavailable, StrCat(kRefuseMarker, why));
}

bool IsRefusal(const Status& s) {
  return s.code() == StatusCode::kUnavailable &&
         s.message().rfind(kRefuseMarker, 0) == 0;
}

std::string RefusalReason(const Status& s) {
  return s.message().substr(std::string(kRefuseMarker).size());
}

telemetry::Counter* RefreshesCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().counter("incremental.refreshes");
  return c;
}
telemetry::Counter* FallbacksCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().counter("incremental.fallbacks");
  return c;
}
telemetry::Counter* DeltaRowsCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().counter("incremental.delta_rows");
  return c;
}
telemetry::Gauge* StateBytesGauge() {
  static telemetry::Gauge* g =
      telemetry::MetricsRegistry::Global().gauge("incremental.state_bytes");
  return g;
}

/// A batch of delta rows sorted by scratch-order key (keys parallel rows).
struct DeltaBatch {
  TablePtr rows;
  std::vector<Key> keys;
  int64_t num_rows() const { return rows == nullptr ? 0 : rows->num_rows(); }
};

Result<TablePtr> AugmentKeys(const TablePtr& t, const std::vector<Key>& keys,
                             int width, const char* prefix) {
  std::vector<Field> fields = t->schema()->fields();
  std::vector<Column> cols = t->columns();
  for (int k = 0; k < width; ++k) {
    std::vector<int64_t> comp(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      comp[i] = keys[i][static_cast<size_t>(k)];
    }
    fields.push_back(
        Field::Attr(StrCat(prefix, static_cast<int64_t>(k)), DataType::kInt64));
    cols.push_back(Column::FromInt64(std::move(comp)));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(cols));
}

// ---------------------------------------------------------------------------
// Runtime state tree.
// ---------------------------------------------------------------------------

/// One join side's retained build state: the child's full output to date,
/// augmented with its key columns and kept in key order. May be parked in a
/// spill file between refreshes (exec/spill policy).
struct SideState {
  // Retained rows live as a materialized prefix plus in-key-order tail
  // chunks, so the hot path — one more append-only delta — is O(|Δ|): the
  // chunk is pushed, nothing is copied. Chunks collapse into the prefix
  // only when the whole side is needed as a join input (the other side
  // produced a delta) or when parking to scratch.
  TablePtr rows;  // augmented: child columns + key columns; sorted by key
  std::vector<TablePtr> tail_chunks;
  std::vector<Key> keys;  // prefix + chunk rows, sorted
  int key_width = 0;
  std::unique_ptr<spill::SpillFile> parked;
  SchemaPtr parked_schema;
  int64_t parked_rows = 0;

  int64_t num_rows() const {
    int64_t n = rows == nullptr ? 0 : rows->num_rows();
    for (const TablePtr& c : tail_chunks) n += c->num_rows();
    return n;
  }

  int64_t bytes() const {
    int64_t b = rows == nullptr ? 0 : rows->ByteSize();
    for (const TablePtr& c : tail_chunks) b += c->ByteSize();
    if (b == 0) return 0;
    return b + static_cast<int64_t>(keys.size()) * (key_width + 2) * 8;
  }
};

/// Collapses tail chunks into the materialized prefix (one concatenation
/// pass). After this, `rows` holds every retained row of the side.
Status MaterializeSide(SideState* side) {
  if (side->tail_chunks.empty()) return Status::OK();
  TablePtr base = side->rows != nullptr ? side->rows : side->tail_chunks[0];
  std::vector<Column> cols = base->columns();
  for (size_t i = side->rows != nullptr ? 0 : 1; i < side->tail_chunks.size();
       ++i) {
    const TablePtr& chunk = side->tail_chunks[i];
    for (size_t c = 0; c < cols.size(); ++c) {
      NEXUS_RETURN_NOT_OK(
          cols[c].AppendColumn(chunk->column(static_cast<int>(c))));
    }
  }
  NEXUS_ASSIGN_OR_RETURN(side->rows,
                         Table::Make(base->schema(), std::move(cols)));
  side->tail_chunks.clear();
  return Status::OK();
}

struct RtNode {
  DeltaKind kind = DeltaKind::kScan;
  const Plan* plan = nullptr;
  std::vector<std::unique_ptr<RtNode>> children;
  int key_width = 0;

  // kScan: consumed watermark against the catalog tail.
  bool scan_init = false;
  int64_t consumed_epoch = 0;
  int64_t consumed_rows = 0;
  uint64_t generation = 0;

  // kConst: the inline table is emitted once, at the initial build.
  bool const_emitted = false;

  // kJoin.
  SideState left, right;
};

std::unique_ptr<RtNode> BuildRt(const DeltaNode& d) {
  auto node = std::make_unique<RtNode>();
  node->kind = d.kind;
  node->plan = d.plan;
  for (const auto& c : d.children) node->children.push_back(BuildRt(*c));
  switch (d.kind) {
    case DeltaKind::kScan:
    case DeltaKind::kConst:
      node->key_width = 1;
      break;
    case DeltaKind::kFilter:
    case DeltaKind::kProject:
    case DeltaKind::kExtend:
    case DeltaKind::kRename:
    case DeltaKind::kAggregate:
      node->key_width = node->children[0]->key_width;
      break;
    case DeltaKind::kJoin:
      node->left.key_width = node->children[0]->key_width;
      node->right.key_width = node->children[1]->key_width;
      node->key_width = node->left.key_width + node->right.key_width;
      break;
    case DeltaKind::kUnion:
      node->key_width =
          1 + std::max(node->children[0]->key_width,
                       node->children[1]->key_width);
      break;
  }
  return node;
}

int64_t NodeStateBytes(const RtNode& node) {
  int64_t bytes = node.left.bytes() + node.right.bytes();
  for (const auto& c : node.children) bytes += NodeStateBytes(*c);
  return bytes;
}

void CollectSides(RtNode* node, std::vector<SideState*>* out) {
  if (node->kind == DeltaKind::kJoin) {
    out->push_back(&node->left);
    out->push_back(&node->right);
  }
  for (auto& c : node->children) CollectSides(c.get(), out);
}

Status ParkSide(SideState* side) {
  if (side->parked != nullptr || side->num_rows() == 0) {
    return Status::OK();
  }
  NEXUS_RETURN_NOT_OK(MaterializeSide(side));
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<spill::SpillFile> file,
                         spill::SpillManager::Global().Create("ivm-state"));
  NEXUS_RETURN_NOT_OK(file->Append(side->rows));
  side->parked_schema = side->rows->schema();
  side->parked_rows = side->rows->num_rows();
  spill::ReleaseTable(side->rows);
  side->rows.reset();
  side->keys.clear();
  side->keys.shrink_to_fit();
  side->parked = std::move(file);
  return Status::OK();
}

Status EnsureLoaded(SideState* side) {
  if (side->parked == nullptr) return Status::OK();
  NEXUS_ASSIGN_OR_RETURN(TablePtr t, side->parked->ReadAll(side->parked_schema));
  const int width = side->key_width;
  const int first_key_col = t->num_columns() - width;
  std::vector<Key> keys(static_cast<size_t>(t->num_rows()),
                        Key(static_cast<size_t>(width)));
  for (int k = 0; k < width; ++k) {
    const auto& v = t->column(first_key_col + k).ints();
    for (size_t r = 0; r < keys.size(); ++r) keys[r][static_cast<size_t>(k)] = v[r];
  }
  side->rows = std::move(t);
  side->keys = std::move(keys);
  side->parked.reset();  // unlinks the scratch file
  side->parked_schema.reset();
  side->parked_rows = 0;
  return Status::OK();
}

/// Merges an augmented, key-sorted delta into a side accumulator, keeping it
/// sorted. The steady-state path — all delta keys beyond the last retained
/// key — is a plain column append.
Status MergeSide(SideState* side, const TablePtr& aug,
                 const std::vector<Key>& keys) {
  if (side->num_rows() == 0) {
    if (side->rows != nullptr && keys.empty()) return Status::OK();
    side->rows = aug;
    side->tail_chunks.clear();
    side->keys = keys;
    return Status::OK();
  }
  if (keys.empty()) return Status::OK();
  if (side->keys.back() < keys.front()) {
    // The hot path: the delta strictly follows everything retained, so it
    // rides along as a chunk — no copy of the retained rows.
    side->tail_chunks.push_back(aug);
    side->keys.insert(side->keys.end(), keys.begin(), keys.end());
    return Status::OK();
  }
  // Mid-stream insert: concatenate, then gather in merged key order.
  NEXUS_RETURN_NOT_OK(MaterializeSide(side));
  const int64_t n1 = side->rows->num_rows();
  const int64_t n2 = aug->num_rows();
  std::vector<Column> cols = side->rows->columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    NEXUS_RETURN_NOT_OK(cols[c].AppendColumn(aug->column(static_cast<int>(c))));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr combined,
                         Table::Make(side->rows->schema(), std::move(cols)));
  std::vector<int64_t> order;
  std::vector<Key> merged_keys;
  order.reserve(static_cast<size_t>(n1 + n2));
  merged_keys.reserve(static_cast<size_t>(n1 + n2));
  int64_t i = 0, j = 0;
  while (i < n1 || j < n2) {
    bool take_left =
        j >= n2 || (i < n1 && side->keys[static_cast<size_t>(i)] <
                                  keys[static_cast<size_t>(j)]);
    if (take_left) {
      order.push_back(i);
      merged_keys.push_back(side->keys[static_cast<size_t>(i)]);
      ++i;
    } else {
      order.push_back(n1 + j);
      merged_keys.push_back(keys[static_cast<size_t>(j)]);
      ++j;
    }
  }
  side->rows = combined->TakeRows(order);
  side->keys = std::move(merged_keys);
  return Status::OK();
}

Result<SchemaPtr> JoinOutputSchema(const SchemaPtr& left, const SchemaPtr& right,
                                   const JoinOp& spec) {
  std::vector<Field> fields = left->fields();
  for (int c = 0; c < right->num_fields(); ++c) {
    const Field& f = right->field(c);
    if (std::find(spec.right_keys.begin(), spec.right_keys.end(), f.name) !=
        spec.right_keys.end()) {
      continue;
    }
    Field out = f;
    out.is_dimension = false;
    fields.push_back(std::move(out));
  }
  return Schema::Make(std::move(fields));
}

// ---------------------------------------------------------------------------
// Delta pull: one refresh's walk of the runtime tree. Each call returns the
// node's delta rows sorted by key and advances retained state.
// ---------------------------------------------------------------------------

Result<DeltaBatch> Pull(RtNode* node, const InMemoryCatalog& catalog);

Result<DeltaBatch> PullScan(RtNode* node, const InMemoryCatalog& catalog) {
  const auto& op = node->plan->As<ScanOp>();
  NEXUS_ASSIGN_OR_RETURN(TableTail tail, catalog.Tail(op.table));
  if (node->scan_init && tail.generation != node->generation) {
    return Refuse(StrCat("table '", op.table,
                         "' was replaced under the view (generation bump)"));
  }
  TablePtr delta;
  if (!node->scan_init) {
    // Initial build: the whole table is the delta, Put-time rows included
    // (DeltaSince(0) would only cover rows appended *after* epoch 0).
    node->scan_init = true;
    node->generation = tail.generation;
    node->consumed_epoch = 0;
    node->consumed_rows = 0;
    NEXUS_ASSIGN_OR_RETURN(Dataset d, catalog.Get(op.table));
    if (!d.is_table()) {
      return Status::Unsupported("views cover table collections only");
    }
    delta = d.table();
  } else {
    NEXUS_ASSIGN_OR_RETURN(delta,
                           catalog.DeltaSince(op.table, node->consumed_epoch));
  }
  // An append can land between Tail and DeltaSince; trim to the snapshot so
  // the consumed watermark stays consistent (the rest arrives next refresh).
  int64_t take = tail.row_count - node->consumed_rows;
  if (delta->num_rows() > take) delta = delta->Slice(0, take);
  DeltaBatch batch;
  batch.keys.reserve(static_cast<size_t>(delta->num_rows()));
  for (int64_t r = 0; r < delta->num_rows(); ++r) {
    batch.keys.push_back(Key{node->consumed_rows + r});
  }
  node->consumed_epoch = tail.epoch;
  node->consumed_rows += delta->num_rows();
  batch.rows = std::move(delta);
  return batch;
}

Result<DeltaBatch> PullConst(RtNode* node) {
  const TablePtr& t = node->plan->As<ValuesOp>().data.table();
  DeltaBatch batch;
  if (node->const_emitted) {
    batch.rows = Table::Empty(t->schema());
    return batch;
  }
  node->const_emitted = true;
  batch.rows = t;
  batch.keys.reserve(static_cast<size_t>(t->num_rows()));
  for (int64_t r = 0; r < t->num_rows(); ++r) batch.keys.push_back(Key{r});
  return batch;
}

Result<DeltaBatch> PullJoin(RtNode* node, const InMemoryCatalog& catalog) {
  NEXUS_ASSIGN_OR_RETURN(DeltaBatch dl, Pull(node->children[0].get(), catalog));
  NEXUS_ASSIGN_OR_RETURN(DeltaBatch dr, Pull(node->children[1].get(), catalog));
  const auto& spec = node->plan->As<JoinOp>();
  NEXUS_RETURN_NOT_OK(EnsureLoaded(&node->left));
  NEXUS_RETURN_NOT_OK(EnsureLoaded(&node->right));
  const int wl = node->left.key_width;
  const int wr = node->right.key_width;
  NEXUS_ASSIGN_OR_RETURN(TablePtr adl,
                         AugmentKeys(dl.rows, dl.keys, wl, kLeftKeyPrefix));
  NEXUS_ASSIGN_OR_RETURN(TablePtr adr,
                         AugmentKeys(dr.rows, dr.keys, wr, kRightKeyPrefix));
  NEXUS_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      JoinOutputSchema(dl.rows->schema(), dr.rows->schema(), spec));
  const int lreal = dl.rows->schema()->num_fields();
  const int rout_real = out_schema->num_fields() - lreal;

  // Collect new pairs from both delta terms; the augmented join output lays
  // columns out as [left real][left keys][right real non-key][right keys].
  std::vector<Column> all_cols;
  std::vector<Key> all_keys;
  auto add_pairs = [&](const TablePtr& jo) -> Status {
    const int64_t n = jo->num_rows();
    size_t base = all_keys.size();
    all_keys.resize(base + static_cast<size_t>(n),
                    Key(static_cast<size_t>(wl + wr)));
    for (int k = 0; k < wl; ++k) {
      const auto& v = jo->column(lreal + k).ints();
      for (int64_t r = 0; r < n; ++r) {
        all_keys[base + static_cast<size_t>(r)][static_cast<size_t>(k)] =
            v[static_cast<size_t>(r)];
      }
    }
    for (int k = 0; k < wr; ++k) {
      const auto& v = jo->column(lreal + wl + rout_real + k).ints();
      for (int64_t r = 0; r < n; ++r) {
        all_keys[base + static_cast<size_t>(r)][static_cast<size_t>(wl + k)] =
            v[static_cast<size_t>(r)];
      }
    }
    if (all_cols.empty()) {
      for (int c = 0; c < lreal; ++c) all_cols.push_back(jo->column(c));
      for (int c = 0; c < rout_real; ++c) {
        all_cols.push_back(jo->column(lreal + wl + c));
      }
    } else {
      for (int c = 0; c < lreal; ++c) {
        NEXUS_RETURN_NOT_OK(
            all_cols[static_cast<size_t>(c)].AppendColumn(jo->column(c)));
      }
      for (int c = 0; c < rout_real; ++c) {
        NEXUS_RETURN_NOT_OK(all_cols[static_cast<size_t>(lreal + c)].AppendColumn(
            jo->column(lreal + wl + c)));
      }
    }
    return Status::OK();
  };

  // Δ(L ⋈ R) = ΔL ⋈ R_old ∪ L_new ⋈ ΔR — the two terms partition the new
  // pairs (term 1's right rows predate ΔR, term 2's are exactly ΔR).
  if (dl.num_rows() > 0 && node->right.num_rows() > 0) {
    NEXUS_RETURN_NOT_OK(MaterializeSide(&node->right));
    NEXUS_ASSIGN_OR_RETURN(TablePtr jo,
                           relational::HashJoin(adl, node->right.rows, spec));
    NEXUS_RETURN_NOT_OK(add_pairs(jo));
  }
  NEXUS_RETURN_NOT_OK(MergeSide(&node->left, adl, dl.keys));
  if (dr.num_rows() > 0 && node->left.num_rows() > 0) {
    NEXUS_RETURN_NOT_OK(MaterializeSide(&node->left));
    NEXUS_ASSIGN_OR_RETURN(TablePtr jo,
                           relational::HashJoin(node->left.rows, adr, spec));
    NEXUS_RETURN_NOT_OK(add_pairs(jo));
  }
  NEXUS_RETURN_NOT_OK(MergeSide(&node->right, adr, dr.keys));

  DeltaBatch batch;
  if (all_keys.empty()) {
    batch.rows = Table::Empty(out_schema);
    return batch;
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr combined,
                         Table::Make(out_schema, std::move(all_cols)));
  // Pair keys are unique (one per (left row, right row)), so a plain sort
  // restores the engine's lexicographic (left, right) emission order.
  std::vector<int64_t> order(all_keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return all_keys[static_cast<size_t>(a)] < all_keys[static_cast<size_t>(b)];
  });
  batch.rows = combined->TakeRows(order);
  batch.keys.reserve(order.size());
  for (int64_t idx : order) {
    batch.keys.push_back(std::move(all_keys[static_cast<size_t>(idx)]));
  }
  return batch;
}

Result<DeltaBatch> PullUnion(RtNode* node, const InMemoryCatalog& catalog) {
  NEXUS_ASSIGN_OR_RETURN(DeltaBatch l, Pull(node->children[0].get(), catalog));
  NEXUS_ASSIGN_OR_RETURN(DeltaBatch r, Pull(node->children[1].get(), catalog));
  const size_t width = static_cast<size_t>(node->key_width);
  DeltaBatch batch;
  batch.keys.reserve(l.keys.size() + r.keys.size());
  auto tag = [&](int64_t branch, const Key& k) {
    Key out;
    out.reserve(width);
    out.push_back(branch);
    out.insert(out.end(), k.begin(), k.end());
    out.resize(width, kKeyPad);
    batch.keys.push_back(std::move(out));
  };
  for (const Key& k : l.keys) tag(0, k);
  for (const Key& k : r.keys) tag(1, k);
  if (r.num_rows() == 0) {
    batch.rows = l.rows;
  } else if (l.num_rows() == 0) {
    batch.rows = r.rows;
  } else {
    NEXUS_ASSIGN_OR_RETURN(batch.rows, relational::Union(l.rows, r.rows));
  }
  return batch;
}

Result<DeltaBatch> Pull(RtNode* node, const InMemoryCatalog& catalog) {
  switch (node->kind) {
    case DeltaKind::kScan:
      return PullScan(node, catalog);
    case DeltaKind::kConst:
      return PullConst(node);
    case DeltaKind::kFilter: {
      NEXUS_ASSIGN_OR_RETURN(DeltaBatch c, Pull(node->children[0].get(), catalog));
      const auto& op = node->plan->As<SelectOp>();
      NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                             EvalPredicate(*op.predicate, *c.rows));
      DeltaBatch batch;
      batch.rows = c.rows->TakeRows(sel);
      batch.keys.reserve(sel.size());
      for (int64_t s : sel) {
        batch.keys.push_back(std::move(c.keys[static_cast<size_t>(s)]));
      }
      return batch;
    }
    case DeltaKind::kProject: {
      NEXUS_ASSIGN_OR_RETURN(DeltaBatch c, Pull(node->children[0].get(), catalog));
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr rows,
          relational::Project(c.rows, node->plan->As<ProjectOp>().columns));
      return DeltaBatch{std::move(rows), std::move(c.keys)};
    }
    case DeltaKind::kExtend: {
      NEXUS_ASSIGN_OR_RETURN(DeltaBatch c, Pull(node->children[0].get(), catalog));
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr rows,
          relational::Extend(c.rows, node->plan->As<ExtendOp>().defs));
      return DeltaBatch{std::move(rows), std::move(c.keys)};
    }
    case DeltaKind::kRename: {
      NEXUS_ASSIGN_OR_RETURN(DeltaBatch c, Pull(node->children[0].get(), catalog));
      NEXUS_ASSIGN_OR_RETURN(
          TablePtr rows,
          relational::Rename(c.rows, node->plan->As<RenameOp>().mapping));
      return DeltaBatch{std::move(rows), std::move(c.keys)};
    }
    case DeltaKind::kJoin:
      return PullJoin(node, catalog);
    case DeltaKind::kUnion:
      return PullUnion(node, catalog);
    case DeltaKind::kAggregate:
      break;
  }
  return Status::Internal("aggregate must be pulled through its view root");
}

// ---------------------------------------------------------------------------
// Root Reduce⊕ state: per-group accumulators with the exact semantics of
// relational::HashAggregate's TypedAggState, plus the scratch-order bookkeeping
// (first_key for group output order, max_key for the order-sensitivity guard).
// ---------------------------------------------------------------------------

// Mirror of the engine's typed accumulator (relational/engine.cc). The float
// members make Sum/Min/Max over float64 order-sensitive — fp addition is
// non-associative, std::min/std::max keep the accumulator on NaN and ±0.0
// ties — which is exactly why out-of-order delta rows refuse below.
struct TypedAggState {
  int64_t count = 0;
  int64_t isum = 0;
  double fsum = 0.0;
  bool has_extreme = false;
  double fmin = 0.0, fmax = 0.0;
  int64_t imin = 0, imax = 0;
  std::string smin, smax;

  void UpdateNumeric(double v, int64_t iv, bool is_int) {
    ++count;
    if (is_int) isum += iv;
    fsum += v;
    if (!has_extreme) {
      fmin = fmax = v;
      imin = imax = iv;
      has_extreme = true;
    } else {
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
      imin = std::min(imin, iv);
      imax = std::max(imax, iv);
    }
  }
  void UpdateString(const std::string& s) {
    ++count;
    if (!has_extreme) {
      smin = smax = s;
      has_extreme = true;
    } else {
      if (s < smin) smin = s;
      if (s > smax) smax = s;
    }
  }
};

Result<Value> FinishTyped(const TypedAggState& st, AggFunc func, DataType in) {
  switch (func) {
    case AggFunc::kCount:
      return Value::Int64(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      return in == DataType::kInt64 ? Value::Int64(st.isum)
                                    : Value::Float64(st.fsum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Float64(st.fsum / static_cast<double>(st.count));
    case AggFunc::kMin:
      if (!st.has_extreme) return Value::Null();
      if (in == DataType::kString) return Value::String(st.smin);
      return in == DataType::kInt64 ? Value::Int64(st.imin)
                                    : Value::Float64(st.fmin);
    case AggFunc::kMax:
      if (!st.has_extreme) return Value::Null();
      if (in == DataType::kString) return Value::String(st.smax);
      return in == DataType::kInt64 ? Value::Int64(st.imax)
                                    : Value::Float64(st.fmax);
  }
  return Status::Internal("unhandled aggregate");
}

struct Group {
  std::vector<Value> rep;  // group-by values of the group's first row
  Key first_key;           // output order = ascending first_key
  Key max_key;             // guard: order-sensitive folds refuse below this
  std::vector<TypedAggState> states;
};

struct AggState {
  bool init = false;
  std::vector<int> group_cols;
  std::vector<DataType> agg_types;
  bool order_sensitive = false;
  SchemaPtr child_schema;
  SchemaPtr out_schema;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<Group> groups;

  int64_t bytes() const {
    int64_t per_group = static_cast<int64_t>(
        agg_types.size() * sizeof(TypedAggState) + group_cols.size() * 32 + 96);
    return static_cast<int64_t>(groups.size()) * per_group;
  }

  void Reset() {
    init = false;
    group_cols.clear();
    agg_types.clear();
    order_sensitive = false;
    child_schema.reset();
    out_schema.reset();
    buckets.clear();
    groups.clear();
  }
};

// Mirror of the engine's GroupKeysEqual against a stored representative row.
bool RepEquals(const std::vector<Value>& rep, const Table& t, int64_t r,
               const std::vector<int>& cols) {
  for (size_t i = 0; i < cols.size(); ++i) {
    const Column& c = t.column(cols[i]);
    bool row_null = c.IsNull(r);
    if (rep[i].is_null() != row_null) return false;
    if (row_null) continue;
    if (rep[i] != c.GetValue(r)) return false;
  }
  return true;
}

Status InitAgg(AggState* agg, const AggregateOp& spec,
               const SchemaPtr& child_schema) {
  agg->child_schema = child_schema;
  for (const std::string& g : spec.group_by) {
    NEXUS_ASSIGN_OR_RETURN(int i, child_schema->FindFieldOrError(g));
    agg->group_cols.push_back(i);
  }
  std::vector<Field> fields;
  for (int c : agg->group_cols) fields.push_back(child_schema->field(c));
  for (const AggSpec& a : spec.aggs) {
    DataType in = DataType::kInt64;
    if (a.input != nullptr) {
      NEXUS_ASSIGN_OR_RETURN(in, InferExprType(*a.input, *child_schema));
    } else if (a.func != AggFunc::kCount) {
      return Status::PlanError("only count may omit its input expression");
    }
    agg->agg_types.push_back(in);
    if (in == DataType::kFloat64 && a.func != AggFunc::kCount) {
      agg->order_sensitive = true;
    }
    NEXUS_ASSIGN_OR_RETURN(DataType out, AggResultType(a.func, in));
    fields.push_back(Field::Attr(a.output_name, out));
  }
  NEXUS_ASSIGN_OR_RETURN(agg->out_schema, Schema::Make(std::move(fields)));
  agg->init = true;
  return Status::OK();
}

Status FoldAgg(AggState* agg, const AggregateOp& spec, const DeltaBatch& batch) {
  if (!agg->init) {
    NEXUS_RETURN_NOT_OK(InitAgg(agg, spec, batch.rows->schema()));
  }
  const Table& input = *batch.rows;
  const int64_t n = input.num_rows();
  if (n == 0) return Status::OK();
  std::vector<Column> agg_inputs;
  for (const AggSpec& a : spec.aggs) {
    if (a.input != nullptr) {
      NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*a.input, input));
      agg_inputs.push_back(std::move(c));
    } else {
      agg_inputs.emplace_back(DataType::kInt64);
    }
  }
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes,
                         relational::HashRows(input, agg->group_cols));
  for (int64_t r = 0; r < n; ++r) {
    const Key& key = batch.keys[static_cast<size_t>(r)];
    std::vector<size_t>& bucket = agg->buckets[hashes[static_cast<size_t>(r)]];
    size_t gi = SIZE_MAX;
    for (size_t g : bucket) {
      if (RepEquals(agg->groups[g].rep, input, r, agg->group_cols)) {
        gi = g;
        break;
      }
    }
    if (gi == SIZE_MAX) {
      gi = agg->groups.size();
      bucket.push_back(gi);
      Group ng;
      ng.rep.reserve(agg->group_cols.size());
      for (int c : agg->group_cols) ng.rep.push_back(input.column(c).GetValue(r));
      ng.first_key = key;
      ng.max_key = key;
      ng.states.resize(spec.aggs.size());
      agg->groups.push_back(std::move(ng));
    } else {
      Group& gr = agg->groups[gi];
      if (agg->order_sensitive && key < gr.max_key) {
        return Refuse(
            "order-sensitive float ⊕-fold received an out-of-order delta row");
      }
      if (key < gr.first_key) {
        // This row is now the group's first in full-recompute order: it
        // becomes the representative (bit-exact for -0.0 / NaN payloads).
        gr.first_key = key;
        gr.rep.clear();
        for (int c : agg->group_cols) gr.rep.push_back(input.column(c).GetValue(r));
      }
      if (gr.max_key < key) gr.max_key = key;
    }
    std::vector<TypedAggState>& gs = agg->groups[gi].states;
    for (size_t a = 0; a < spec.aggs.size(); ++a) {
      if (spec.aggs[a].input == nullptr) {
        ++gs[a].count;
        continue;
      }
      const Column& c = agg_inputs[a];
      if (c.IsNull(r)) continue;
      switch (c.type()) {
        case DataType::kInt64:
          gs[a].UpdateNumeric(
              static_cast<double>(c.ints()[static_cast<size_t>(r)]),
              c.ints()[static_cast<size_t>(r)], true);
          break;
        case DataType::kFloat64:
          gs[a].UpdateNumeric(c.doubles()[static_cast<size_t>(r)], 0, false);
          break;
        case DataType::kString:
          gs[a].UpdateString(c.strings()[static_cast<size_t>(r)]);
          break;
        case DataType::kBool:
          return Status::TypeError("cannot aggregate bool input");
      }
    }
  }
  return Status::OK();
}

Result<TablePtr> BuildAggOutput(const AggState& agg, const AggregateOp& spec) {
  std::vector<size_t> order(agg.groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return agg.groups[a].first_key < agg.groups[b].first_key;
  });
  // SQL semantics: a global aggregate over empty input yields one row.
  const bool synth_empty = agg.group_cols.empty() && agg.groups.empty();
  std::vector<Column> cols;
  for (size_t i = 0; i < agg.group_cols.size(); ++i) {
    Column col(agg.child_schema->field(agg.group_cols[i]).type);
    col.Reserve(static_cast<int64_t>(order.size()));
    for (size_t g : order) {
      NEXUS_RETURN_NOT_OK(col.Append(agg.groups[g].rep[i]));
    }
    cols.push_back(std::move(col));
  }
  const TypedAggState empty_state;
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    Column col(
        agg.out_schema->field(static_cast<int>(agg.group_cols.size() + a)).type);
    col.Reserve(static_cast<int64_t>(order.size()) + (synth_empty ? 1 : 0));
    for (size_t g : order) {
      NEXUS_ASSIGN_OR_RETURN(
          Value v, FinishTyped(agg.groups[g].states[a], spec.aggs[a].func,
                               agg.agg_types[a]));
      NEXUS_RETURN_NOT_OK(col.Append(v));
    }
    if (synth_empty) {
      NEXUS_ASSIGN_OR_RETURN(
          Value v, FinishTyped(empty_state, spec.aggs[a].func, agg.agg_types[a]));
      NEXUS_RETURN_NOT_OK(col.Append(v));
    }
    cols.push_back(std::move(col));
  }
  return Table::Make(agg.out_schema, std::move(cols));
}

}  // namespace

// ---------------------------------------------------------------------------
// Full recompute — the reference path.
// ---------------------------------------------------------------------------

Result<TablePtr> ExecuteViewPlan(const Plan& plan,
                                 const InMemoryCatalog& catalog) {
  auto child = [&](int i) { return ExecuteViewPlan(*plan.child(i), catalog); };
  switch (plan.kind()) {
    case OpKind::kScan: {
      NEXUS_ASSIGN_OR_RETURN(Dataset d, catalog.Get(plan.As<ScanOp>().table));
      if (!d.is_table()) {
        return Status::Unsupported("views cover table collections only");
      }
      return d.table();
    }
    case OpKind::kValues: {
      const Dataset& d = plan.As<ValuesOp>().data;
      if (!d.is_table()) {
        return Status::Unsupported("views cover table collections only");
      }
      return d.table();
    }
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::Filter(in, *plan.As<SelectOp>().predicate);
    }
    case OpKind::kProject: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::Project(in, plan.As<ProjectOp>().columns);
    }
    case OpKind::kExtend: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::Extend(in, plan.As<ExtendOp>().defs);
    }
    case OpKind::kRename: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::Rename(in, plan.As<RenameOp>().mapping);
    }
    case OpKind::kJoin: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr l, child(0));
      NEXUS_ASSIGN_OR_RETURN(TablePtr r, child(1));
      return relational::HashJoin(l, r, plan.As<JoinOp>());
    }
    case OpKind::kAggregate: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::HashAggregate(in, plan.As<AggregateOp>());
    }
    case OpKind::kSort: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::Sort(in, plan.As<SortOp>().keys);
    }
    case OpKind::kLimit: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      const auto& op = plan.As<LimitOp>();
      return relational::Limit(in, op.limit, op.offset);
    }
    case OpKind::kDistinct: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr in, child(0));
      return relational::Distinct(in);
    }
    case OpKind::kUnion: {
      NEXUS_ASSIGN_OR_RETURN(TablePtr l, child(0));
      NEXUS_ASSIGN_OR_RETURN(TablePtr r, child(1));
      return relational::Union(l, r);
    }
    default:
      return Status::Unsupported(
          StrCat(OpKindName(plan.kind()), " is not supported in views"));
  }
}

// ---------------------------------------------------------------------------
// ViewRegistry.
// ---------------------------------------------------------------------------

struct ViewRegistry::ViewImpl {
  PlanPtr plan;
  DeltaForm form;
  std::unique_ptr<RtNode> root;  // null when statically refused
  bool agg_root = false;
  AggState agg;
  TablePtr out_rows;  // non-aggregate roots: retained output in key order
  std::vector<Key> out_keys;
  TablePtr result;
  int64_t charged_bytes = 0;

  int64_t StateBytes() const {
    int64_t bytes = 0;
    if (root != nullptr) bytes += NodeStateBytes(*root);
    bytes += agg.bytes();
    if (out_rows != nullptr) {
      bytes += out_rows->ByteSize() +
               static_cast<int64_t>(out_keys.size()) *
                   (root == nullptr ? 2 : root->key_width + 2) * 8;
    }
    return bytes;
  }

  void ResetState() {
    if (form.supported()) root = BuildRt(*form.root);
    agg.Reset();
    out_rows.reset();
    out_keys.clear();
    result.reset();
  }

  Status MergeOut(DeltaBatch batch) {
    if (out_rows == nullptr || out_rows->num_rows() == 0) {
      if (out_rows != nullptr && batch.num_rows() == 0) return Status::OK();
      out_rows = std::move(batch.rows);
      out_keys = std::move(batch.keys);
      return Status::OK();
    }
    if (batch.num_rows() == 0) return Status::OK();
    if (out_keys.back() < batch.keys.front()) {
      std::vector<Column> cols = out_rows->columns();
      for (size_t c = 0; c < cols.size(); ++c) {
        NEXUS_RETURN_NOT_OK(
            cols[c].AppendColumn(batch.rows->column(static_cast<int>(c))));
      }
      NEXUS_ASSIGN_OR_RETURN(out_rows,
                             Table::Make(out_rows->schema(), std::move(cols)));
      out_keys.insert(out_keys.end(), batch.keys.begin(), batch.keys.end());
      return Status::OK();
    }
    const int64_t n1 = out_rows->num_rows();
    const int64_t n2 = batch.rows->num_rows();
    std::vector<Column> cols = out_rows->columns();
    for (size_t c = 0; c < cols.size(); ++c) {
      NEXUS_RETURN_NOT_OK(
          cols[c].AppendColumn(batch.rows->column(static_cast<int>(c))));
    }
    NEXUS_ASSIGN_OR_RETURN(TablePtr combined,
                           Table::Make(out_rows->schema(), std::move(cols)));
    std::vector<int64_t> order;
    std::vector<Key> merged;
    order.reserve(static_cast<size_t>(n1 + n2));
    merged.reserve(static_cast<size_t>(n1 + n2));
    int64_t i = 0, j = 0;
    while (i < n1 || j < n2) {
      bool take_left = j >= n2 || (i < n1 && out_keys[static_cast<size_t>(i)] <
                                                 batch.keys[static_cast<size_t>(j)]);
      if (take_left) {
        order.push_back(i);
        merged.push_back(std::move(out_keys[static_cast<size_t>(i)]));
        ++i;
      } else {
        order.push_back(n1 + j);
        merged.push_back(std::move(batch.keys[static_cast<size_t>(j)]));
        ++j;
      }
    }
    out_rows = combined->TakeRows(order);
    out_keys = std::move(merged);
    return Status::OK();
  }

  /// One incremental pass: pull deltas, fold the root, refresh `result`.
  Status ProcessOnce(const InMemoryCatalog& catalog, RefreshInfo* info) {
    if (agg_root) {
      NEXUS_ASSIGN_OR_RETURN(DeltaBatch batch,
                             Pull(root->children[0].get(), catalog));
      info->delta_rows += batch.num_rows();
      NEXUS_RETURN_NOT_OK(
          FoldAgg(&agg, root->plan->As<AggregateOp>(), batch));
      NEXUS_ASSIGN_OR_RETURN(result,
                             BuildAggOutput(agg, root->plan->As<AggregateOp>()));
      return Status::OK();
    }
    NEXUS_ASSIGN_OR_RETURN(DeltaBatch batch, Pull(root.get(), catalog));
    info->delta_rows += batch.num_rows();
    TablePtr empty_schema_holder = batch.rows;
    NEXUS_RETURN_NOT_OK(MergeOut(std::move(batch)));
    result = out_rows != nullptr ? out_rows
                                 : Table::Empty(empty_schema_holder->schema());
    return Status::OK();
  }

  /// Discards all retained state and replays the whole tables through the
  /// delta pipeline — the runtime-refusal fallback and the initial build.
  Status FullRebuild(const InMemoryCatalog& catalog, RefreshInfo* info) {
    ResetState();
    return ProcessOnce(catalog, info);
  }
};

ViewRegistry::ViewRegistry(InMemoryCatalog* catalog) : catalog_(catalog) {}

ViewRegistry::~ViewRegistry() {
  for (auto& [name, v] : views_) {
    if (v->charged_bytes > 0) ReleaseAllocation(v->charged_bytes);
  }
}

Status ViewRegistry::Register(const std::string& name, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.count(name) != 0) {
    return Status::AlreadyExists(StrCat("view '", name, "' already registered"));
  }
  auto v = std::make_unique<ViewImpl>();
  v->plan = std::move(plan);
  v->form = RewriteToDelta(v->plan);
  if (v->form.supported()) {
    v->agg_root = v->form.root->kind == DeltaKind::kAggregate;
    RefreshInfo info;
    NEXUS_RETURN_NOT_OK(v->FullRebuild(*catalog_, &info));
  } else {
    NEXUS_ASSIGN_OR_RETURN(v->result, ExecuteViewPlan(*v->plan, *catalog_));
  }
  int64_t bytes = v->StateBytes();
  if (bytes > 0) ChargeAllocation(bytes);
  v->charged_bytes = bytes;
  views_[name] = std::move(v);
  return Status::OK();
}

Status ViewRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("no view named '", name, "'"));
  }
  if (it->second->charged_bytes > 0) {
    ReleaseAllocation(it->second->charged_bytes);
  }
  views_.erase(it);
  return Status::OK();
}

Result<TablePtr> ViewRegistry::Refresh(const std::string& name,
                                       RefreshInfo* info) {
  std::lock_guard<std::mutex> lock(mu_);
  return RefreshLocked(name, info);
}

Result<TablePtr> ViewRegistry::RefreshLocked(const std::string& name,
                                             RefreshInfo* info) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("no view named '", name, "'"));
  }
  ViewImpl* v = it->second.get();
  RefreshInfo local;
  if (info == nullptr) info = &local;
  *info = RefreshInfo{};
  RefreshesCounter()->Increment();
  if (!v->form.supported()) {
    FallbacksCounter()->Increment();
    info->refusal = v->form.refusal;
    NEXUS_ASSIGN_OR_RETURN(v->result, ExecuteViewPlan(*v->plan, *catalog_));
  } else {
    Status st = v->ProcessOnce(*catalog_, info);
    if (IsRefusal(st)) {
      FallbacksCounter()->Increment();
      info->fell_back = true;
      info->refusal = RefusalReason(st);
      info->delta_rows = 0;
      NEXUS_RETURN_NOT_OK(v->FullRebuild(*catalog_, info));
    } else {
      NEXUS_RETURN_NOT_OK(st);
      info->incremental = true;
    }
    DeltaRowsCounter()->Add(info->delta_rows);
  }
  // Re-account retained state: release the previous charge, charge the new
  // footprint, and let the spill policy park join sides when over budget.
  int64_t bytes = v->StateBytes();
  if (bytes > 0) ChargeAllocation(bytes);
  if (v->charged_bytes > 0) ReleaseAllocation(v->charged_bytes);
  v->charged_bytes = bytes;
  int64_t total = 0;
  for (const auto& [n, view] : views_) total += view->StateBytes();
  StateBytesGauge()->Set(static_cast<double>(total));
  if (spill::ShouldSpill(total)) {
    NEXUS_RETURN_NOT_OK(ShedState(spill::SpillBudgetBytes()));
  }
  info->state_bytes = v->StateBytes();
  return v->result;
}

Result<TablePtr> ViewRegistry::Current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("no view named '", name, "'"));
  }
  return it->second->result;
}

Result<std::string> ViewRegistry::Describe(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("no view named '", name, "'"));
  }
  return DescribeDeltaForm(it->second->form);
}

int64_t ViewRegistry::state_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, v] : views_) total += v->StateBytes();
  return total;
}

Status ViewRegistry::ShedState(int64_t budget_bytes) {
  // Caller may or may not hold mu_ (Refresh calls this internally); the
  // public entry point is only safe because std::mutex is not recursive —
  // so collect under a try-lock-free design: this method requires external
  // serialization with Refresh, which the registry's single-writer contract
  // provides (Refresh itself is the only internal caller, already locked).
  std::vector<SideState*> sides;
  for (const auto& [name, v] : views_) {
    if (v->root != nullptr) CollectSides(v->root.get(), &sides);
  }
  std::sort(sides.begin(), sides.end(), [](SideState* a, SideState* b) {
    return a->bytes() > b->bytes();
  });
  int64_t resident = 0;
  for (SideState* s : sides) resident += s->bytes();
  for (SideState* s : sides) {
    if (budget_bytes > 0 && resident <= budget_bytes) break;
    int64_t freed = s->bytes();
    if (freed == 0) continue;
    NEXUS_RETURN_NOT_OK(ParkSide(s));
    resident -= freed;
  }
  return Status::OK();
}

}  // namespace incremental
}  // namespace nexus
