#include "exec/incremental/policy.h"

#include <atomic>
#include <cstdlib>
#include <string>

namespace nexus {
namespace incremental {

namespace {

std::atomic<int> g_override{-1};

bool EnvEnabled() {
  static const bool value = [] {
    const char* env = std::getenv("NEXUS_INCREMENTAL");
    if (env == nullptr) return false;
    std::string v(env);
    return v == "1" || v == "on" || v == "true";
  }();
  return value;
}

}  // namespace

bool IncrementalEnabled() {
  int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return EnvEnabled();
}

void SetIncrementalOverride(bool on) {
  g_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void ClearIncrementalOverride() {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace incremental
}  // namespace nexus
