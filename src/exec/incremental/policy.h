// Incremental-execution policy: the NEXUS_INCREMENTAL switch.
//
// Default off: every refresh and every Iterate round recomputes from
// scratch, byte-for-byte as before this subsystem existed. When on, the
// ViewRegistry maintains registered views from catalog deltas and the
// coordinator ships loop bindings as prefix deltas — both under the
// byte-identity-or-refuse contract (DESIGN.md, "Streaming appends and
// incremental view maintenance").
#ifndef NEXUS_EXEC_INCREMENTAL_POLICY_H_
#define NEXUS_EXEC_INCREMENTAL_POLICY_H_

namespace nexus {
namespace incremental {

/// True when incremental maintenance is enabled: the programmatic override
/// if set, else the NEXUS_INCREMENTAL environment variable ("1"/"on"/"true"
/// enables; default off).
bool IncrementalEnabled();
void SetIncrementalOverride(bool on);
void ClearIncrementalOverride();

}  // namespace incremental
}  // namespace nexus

#endif  // NEXUS_EXEC_INCREMENTAL_POLICY_H_
