// Incremental view maintenance: the hot refresh path recomputes from the
// catalog's append tail instead of from scratch.
//
// A registered view is a plan over catalog tables. Refresh() pulls each
// scanned table's delta (InMemoryCatalog::DeltaSince), pushes it through the
// view's delta form (optimizer/incremental.h), and folds the result into
// retained operator state: join nodes keep both build sides and probe only
// the delta (Δ(R⋈S) = ΔR⋈S_old ∪ R_new⋈ΔS), a root Reduce⊕ folds the delta
// into per-group accumulators with the exact TypedAggState semantics of
// relational::HashAggregate.
//
// Byte-identity-or-refuse: every refresh returns exactly the bytes a full
// recompute would, at any thread count, budget, and append schedule. The
// mechanism is a scratch-order key per delta row — the row's position in the
// full-recompute output of its operator, as a lexicographic int64 vector
// (scan = [row], union = [branch]++child, join = left++right) — so deltas
// that land mid-stream are merged back into full-recompute order. Plans the
// rewrite cannot maintain bit-exactly are refused statically (RewriteToDelta)
// and served by full recompute; conditions only visible at refresh time — a
// table replaced under the view (generation bump), an order-sensitive float
// ⊕-fold receiving an out-of-order delta row — refuse at runtime and fall
// back to a full rebuild through the same delta pipeline.
//
// Retained state is charged to the calling thread's MemoryMeter and, when
// the spill policy asks (exec/spill), join build sides are parked in
// SpillFiles and reloaded on the next refresh.
#ifndef NEXUS_EXEC_INCREMENTAL_VIEW_H_
#define NEXUS_EXEC_INCREMENTAL_VIEW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/catalog.h"
#include "core/plan.h"
#include "types/table.h"

namespace nexus {
namespace incremental {

/// What one Refresh() did, for telemetry and EXPLAIN ANALYZE.
struct RefreshInfo {
  bool incremental = false;   ///< delta path ran (false: full recompute/rebuild)
  bool fell_back = false;     ///< a runtime refusal forced a full rebuild
  std::string refusal;        ///< why not incremental; empty when it was
  int64_t delta_rows = 0;     ///< delta rows folded at the root
  int64_t state_bytes = 0;    ///< retained operator state after this refresh
};

/// Full recompute of a view plan against `catalog` using the relational
/// engine — the reference the incremental path must match byte-for-byte,
/// and the execution path for statically refused plans.
Result<TablePtr> ExecuteViewPlan(const Plan& plan,
                                 const InMemoryCatalog& catalog);

/// Registered views over one catalog. Refresh() is serialized per registry;
/// the catalog may take appends concurrently from other threads.
class ViewRegistry {
 public:
  explicit ViewRegistry(InMemoryCatalog* catalog);
  ~ViewRegistry();
  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  /// Registers `name` and runs the initial build (a full rebuild through the
  /// delta pipeline, or a full recompute for statically refused plans).
  Status Register(const std::string& name, PlanPtr plan);
  Status Unregister(const std::string& name);

  /// Brings the view up to date with the catalog and returns its result.
  Result<TablePtr> Refresh(const std::string& name, RefreshInfo* info = nullptr);

  /// The last refreshed result (no catalog access).
  Result<TablePtr> Current(const std::string& name) const;

  /// The view's delta form, one node per line — or its static refusal.
  Result<std::string> Describe(const std::string& name) const;

  /// Retained operator state across all views, in bytes (parked state not
  /// counted — it has been released to disk).
  int64_t state_bytes() const;

  /// Parks join build sides on disk (largest first) until retained state is
  /// under `budget_bytes`; they reload on the next refresh that needs them.
  /// Refresh() calls this automatically when spill::ShouldSpill says so.
  Status ShedState(int64_t budget_bytes);

 private:
  struct ViewImpl;

  Result<TablePtr> RefreshLocked(const std::string& name, RefreshInfo* info);

  InMemoryCatalog* catalog_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ViewImpl>> views_;
};

}  // namespace incremental
}  // namespace nexus

#endif  // NEXUS_EXEC_INCREMENTAL_VIEW_H_
