#include "exec/spill/chunk_pager.h"

#include <utility>

#include "common/str_util.h"
#include "telemetry/metrics.h"
#include "types/schema.h"

namespace nexus {
namespace spill {

namespace {

struct PagerCounters {
  telemetry::Counter* paged_out;
  telemetry::Counter* paged_in;
};

PagerCounters& Counters() {
  static PagerCounters c = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    return PagerCounters{reg.counter("spill.chunks_paged_out"),
                         reg.counter("spill.chunks_paged_in")};
  }();
  return c;
}

}  // namespace

SpillChunkPager::SpillChunkPager(SpillManager* manager, std::string tag)
    : manager_(manager), tag_(std::move(tag)) {}

Status SpillChunkPager::PageOut(int64_t key, ArrayChunk chunk) {
  // Payload table: attribute columns (names synthesized — the array owns
  // the real schema) plus the occupancy mask as int64 0/1.
  std::vector<Field> fields;
  std::vector<Column> cols;
  fields.reserve(chunk.attrs.size() + 1);
  cols.reserve(chunk.attrs.size() + 1);
  for (size_t a = 0; a < chunk.attrs.size(); ++a) {
    fields.push_back(Field::Attr(StrCat("a", a), chunk.attrs[a].type()));
    cols.push_back(std::move(chunk.attrs[a]));
  }
  fields.push_back(Field::Attr("__occ", DataType::kInt64));
  cols.push_back(Column::FromInt64(
      std::vector<int64_t>(chunk.occupied.begin(), chunk.occupied.end())));
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  NEXUS_ASSIGN_OR_RETURN(TablePtr payload, Table::Make(schema, std::move(cols)));

  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> file,
                         manager_->Create(StrCat(tag_, "-chunk", key)));
  NEXUS_RETURN_NOT_OK(file->Append(payload));
  ReleaseTable(payload);  // transient: it lives on disk now
  Counters().paged_out->Increment();

  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[key];
  e.file = std::move(file);
  e.grid = std::move(chunk.grid);
  e.lo = std::move(chunk.lo);
  e.extent = std::move(chunk.extent);
  e.schema = std::move(schema);
  ++paged_out_;
  return Status::OK();
}

Result<ArrayChunk> SpillChunkPager::PageIn(int64_t key) {
  Entry* e = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return Status::NotFound(StrCat("no chunk parked under key ", key));
    }
    e = &it->second;  // node-stable; fault-ins of one key are serialized
    ++paged_in_;
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr payload, e->file->ReadAll(e->schema));
  ArrayChunk chunk;
  chunk.grid = e->grid;
  chunk.lo = e->lo;
  chunk.extent = e->extent;
  int nattrs = payload->num_columns() - 1;
  chunk.attrs.reserve(static_cast<size_t>(nattrs));
  for (int a = 0; a < nattrs; ++a) chunk.attrs.push_back(payload->column(a));
  const std::vector<int64_t>& occ = payload->column(nattrs).ints();
  chunk.occupied.assign(occ.begin(), occ.end());
  ReleaseTable(payload);  // the caller re-charges the rebuilt chunk
  Counters().paged_in->Increment();
  return chunk;
}

void SpillChunkPager::Drop(int64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(key);  // RAII unlinks the scratch file
}

int64_t SpillChunkPager::paged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes = 0;
  for (const auto& [key, e] : entries_) bytes += e.file->bytes_written();
  return bytes;
}

Result<int64_t> ShedArray(const std::shared_ptr<NDArray>& array,
                          const std::string& tag) {
  if (array == nullptr) return 0;
  int64_t budget = SpillBudgetBytes();
  if (!ShouldSpill(array->ResidentBytes()) || budget <= 0) return 0;
  if (array->pager() == nullptr) {
    array->SetPager(
        std::make_shared<SpillChunkPager>(&SpillManager::Global(), tag));
  }
  return array->EvictToBudget(budget);
}

}  // namespace spill
}  // namespace nexus
