// Out-of-core execution: Grace-style partition-spill-merge on NXB1.
//
// The scalability desideratum — "as fast as the hardware allows" across
// data sizes — ends today exactly at the memory budget: a hash join or
// aggregation whose working set crosses its tenant's budget is killed by
// the MemoryGovernor. This subsystem turns that cliff into a slope. One
// primitive serves every consumer (LaraDB's minimalist-kernel argument):
//
//   * SpillManager owns the scratch directory and hands out RAII
//     SpillFiles — length-prefixed NXB1 frames (the PR 4 wire serializer
//     doing double duty as the spill format), unlinked on destruction, so
//     completion, cancellation, failover, and shutdown all reap scratch
//     through ordinary stack unwinding.
//   * PartitionedSpiller is the Grace hash partitioner: co-keyed inputs
//     split into pow-2 partitions by their key hashes, written in
//     ascending-row frames, re-partitioned recursively (salted hash) when
//     a skewed partition still exceeds the budget, and handed to a leaf
//     callback one partition at a time.
//   * The policy layer decides *when*: spilling is off unless NEXUS_SPILL
//     (or a programmatic override) turns it on, and triggers when an
//     operator's estimated working set crosses the query's budget — the
//     governed meter's SpillBudget(), the NEXUS_SPILL_BUDGET environment
//     override for standalone library use — or when the governor flips the
//     meter's ask-to-spill flag instead of killing.
//
// Determinism contract: spilling may never change results. Consumers
// (relational::HashJoin / HashAggregate, algebra::Join / Normalize) carry
// original row indices and key hashes through the partitions and restore
// the exact in-memory order on merge, so output is byte-identical for any
// thread count, any budget, and any recursion depth — asserted by property
// test P9 and the E18 bench.
#ifndef NEXUS_EXEC_SPILL_SPILL_H_
#define NEXUS_EXEC_SPILL_SPILL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/result.h"
#include "common/status.h"
#include "types/table.h"

namespace nexus {
namespace spill {

// ---------------------------------------------------------------------------
// Policy.
// ---------------------------------------------------------------------------

/// True when out-of-core execution is enabled for this process. Reads
/// NEXUS_SPILL once ("1" | "on" | "true" enable); a programmatic override
/// (tests, benches) wins over the environment. Default off: spilling is
/// byte-identical but changes governor dynamics (ask-to-spill instead of
/// kill), so it is opt-in like NEXUS_WIRE=text.
bool SpillEnabled();
void SetSpillOverride(bool enabled);
void ClearSpillOverride();

/// The calling query's in-memory working-set budget in bytes; 0 = none.
/// Resolution order: programmatic override, then the installed meter's
/// SpillBudget() (governed queries), then NEXUS_SPILL_BUDGET (standalone
/// library use — tests and benches without the service stack).
int64_t SpillBudgetBytes();
void SetSpillBudgetOverride(int64_t bytes);
void ClearSpillBudgetOverride();

/// The one question operators ask: should a working set of an estimated
/// `estimated_bytes` be partitioned to disk? True when spilling is enabled
/// and either the estimate crosses the budget or the governor has asked
/// this query to shed memory (MemoryMeter::SpillRequested).
bool ShouldSpill(int64_t estimated_bytes);

/// Releases a dropped table's metered charge. The spill path is net-
/// accounted: every collection it materializes (partition loads, frame
/// tables, merge buffers) is released when dropped, so a cooperating query
/// sheds charge instead of accumulating it (see common/memory.h).
void ReleaseTable(const TablePtr& table);

// ---------------------------------------------------------------------------
// Scratch files.
// ---------------------------------------------------------------------------

class SpillManager;

/// One scratch file of length-prefixed NXB1 table frames. Created only via
/// SpillManager::Create; the destructor closes and unlinks the file and
/// deregisters it, so RAII covers every exit path (completion, cancel,
/// deadline, failover, shutdown).
class SpillFile {
 public:
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one frame: [u64 length][NXB1 dataset bytes]. Rows keep their
  /// append order on read-back.
  Status Append(const TablePtr& table);

  /// Streams every frame back in append order.
  Status ForEachFrame(const std::function<Status(TablePtr)>& fn) const;

  /// Reads the whole file back as one table (frames concatenated).
  /// `schema` supplies the shape when the file holds no frames.
  Result<TablePtr> ReadAll(const SchemaPtr& schema) const;

  int64_t bytes_written() const { return bytes_written_; }
  int64_t frames() const { return frames_; }
  int64_t rows() const { return rows_; }
  const std::string& path() const { return path_; }

 private:
  friend class SpillManager;
  SpillFile(SpillManager* manager, std::string path, std::FILE* file);

  SpillManager* manager_;
  std::string path_;
  std::FILE* file_;
  int64_t bytes_written_ = 0;
  int64_t frames_ = 0;
  int64_t rows_ = 0;
};

/// Process-global scratch-file registry and directory owner. Thread-safe.
class SpillManager {
 public:
  static SpillManager& Global();

  /// Creates a fresh scratch file; `tag` labels it for debugging. The file
  /// lives in the scratch directory (NEXUS_SPILL_DIR, default a pid-scoped
  /// directory under the system temp root) and is unlinked when the
  /// returned handle dies.
  Result<std::unique_ptr<SpillFile>> Create(const std::string& tag);

  /// Files currently open (should be 0 whenever no query is mid-spill —
  /// the leak-regression invariant asserted by fault_test).
  int64_t live_files() const;
  /// Bytes currently held by live scratch files.
  int64_t live_bytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  /// Cumulative files / bytes ever spilled by this process.
  int64_t files_created() const { return files_created_.load(std::memory_order_relaxed); }
  int64_t bytes_spilled() const { return bytes_spilled_.load(std::memory_order_relaxed); }

  /// Belt-and-braces orphan reaper: deletes every file this process wrote
  /// into the scratch directory (by name prefix) and removes the directory
  /// when it is left empty. Live handles stay valid (open descriptors);
  /// called from service shutdown and CI teardown. Returns files removed.
  int64_t Sweep();

  /// The scratch directory path (created lazily on first use).
  std::string scratch_dir();

 private:
  friend class SpillFile;
  SpillManager() = default;
  void Deregister(SpillFile* file);
  void NoteBytes(int64_t bytes) {
    bytes_spilled_.fetch_add(bytes, std::memory_order_relaxed);
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::set<SpillFile*> live_;          // guarded by mu_
  std::string dir_;                    // guarded by mu_; "" until created
  uint64_t next_file_ = 1;             // guarded by mu_
  std::atomic<int64_t> files_created_{0};
  std::atomic<int64_t> bytes_spilled_{0};
  std::atomic<int64_t> live_bytes_{0};
};

// ---------------------------------------------------------------------------
// The Grace primitive.
// ---------------------------------------------------------------------------

/// Hidden columns the spiller appends to every partitioned row. Consumers
/// use them to restore the exact in-memory order (and to re-partition on
/// recursion without rehashing key columns).
inline constexpr const char* kSpillRowCol = "__spill_row";    // original row index
inline constexpr const char* kSpillHashCol = "__spill_hash";  // key hash (bit-cast)

/// One co-partitioned input: a table plus its per-row key hashes (as
/// computed by relational::HashRows — the same hashes the in-memory
/// operators use, so partition membership agrees with bucket membership).
struct SpillInput {
  TablePtr table;
  const std::vector<uint64_t>* hashes = nullptr;  // size == table rows
};

/// Grace-style hash partitioner over k co-keyed inputs. Rows are written to
/// pow-2 many partition files in ascending row order; partitions are then
/// processed one at a time, recursively re-partitioned (salted hash) when
/// they still exceed the budget, and handed to the leaf callback.
class PartitionedSpiller {
 public:
  struct Options {
    int64_t budget_bytes = 0;   ///< in-memory working-set target (> 0)
    int max_depth = 4;          ///< recursion cap; at the cap the leaf runs over budget
    int64_t frame_rows = 16 * 1024;  ///< rows per NXB1 frame
    int max_partitions = 64;    ///< fan-out cap per level
    std::string tag;            ///< scratch-file label, e.g. "join" / "agg"
    /// When true, each input table's metered charge is released as soon as
    /// level 0 is on disk — for working tables the consumer built solely to
    /// spill (it must drop its own reference after Run).
    bool release_inputs = false;
  };

  /// Stats of one Run, surfaced in spans / EXPLAIN ANALYZE.
  struct Stats {
    int64_t partitions = 0;   ///< leaf partitions processed
    int64_t bytes_spilled = 0;
    int64_t recursions = 0;   ///< partitions that needed another split
    int max_depth = 0;        ///< deepest level reached (0 = no recursion)
  };

  /// The leaf: receives the co-partitioned in-memory tables (one per
  /// input, augmented with kSpillRowCol / kSpillHashCol as the two last
  /// columns). Tables arrive rows-ascending by original index; the leaf
  /// must not assume anything about partition visit order.
  using LeafFn = std::function<Status(const std::vector<TablePtr>& parts)>;

  PartitionedSpiller(SpillManager* manager, Options options);

  /// Partitions `inputs` and invokes `leaf` once per final partition.
  /// Cancellation, errors, and exceptions unwind through RAII — scratch
  /// files never outlive the call.
  Status Run(const std::vector<SpillInput>& inputs, const LeafFn& leaf);

  const Stats& stats() const { return stats_; }

 private:
  using FileGrid = std::vector<std::vector<std::unique_ptr<SpillFile>>>;

  /// Writes one partitioning level: splits `tables` (co-indexed with
  /// `hashes`) into files[input][partition]. When `augmented` is false the
  /// hidden row/hash columns are appended on the way out (level 0).
  Status PartitionLevel(const std::vector<TablePtr>& tables,
                        const std::vector<const std::vector<uint64_t>*>& hashes,
                        bool augmented, int depth, FileGrid* files,
                        std::vector<SchemaPtr>* schemas);
  /// Loads each partition in turn, recursing on still-over-budget
  /// splittable partitions, handing the rest to the leaf.
  Status ProcessFiles(FileGrid files, const std::vector<SchemaPtr>& schemas,
                      int depth, const LeafFn& leaf);
  int ChoosePartitionCount(int64_t total_bytes) const;

  SpillManager* manager_;
  Options options_;
  Stats stats_;
};

}  // namespace spill
}  // namespace nexus

#endif  // NEXUS_EXEC_SPILL_SPILL_H_
