#include "exec/spill/spill.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "core/serialize.h"
#include "telemetry/metrics.h"
#include "types/dataset.h"

namespace nexus {
namespace spill {

namespace {

namespace fs = std::filesystem;

std::atomic<int> g_spill_override{-1};
std::atomic<int64_t> g_budget_override{-1};

bool SpillEnvEnabled() {
  static const bool value = [] {
    const char* env = std::getenv("NEXUS_SPILL");
    if (env == nullptr) return false;
    std::string v(env);
    return v == "1" || v == "on" || v == "true";
  }();
  return value;
}

int64_t SpillEnvBudget() {
  static const int64_t value = [] {
    const char* env = std::getenv("NEXUS_SPILL_BUDGET");
    if (env == nullptr) return static_cast<int64_t>(0);
    return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
  }();
  return value;
}

/// "nxs-<pid>-" — Sweep() only ever deletes files carrying this process's
/// own prefix, so a shared NEXUS_SPILL_DIR is safe across processes.
std::string FilePrefix() { return StrCat("nxs-", static_cast<int64_t>(::getpid()), "-"); }

/// Cooperative-cancellation probe at partition/block boundaries.
Status CheckCancel() {
  const TaskContext* ctx = CurrentTaskContext();
  if (ctx != nullptr && ctx->cancel != nullptr && ctx->cancel->cancelled()) {
    return ctx->cancel->status();
  }
  return Status::OK();
}

/// The hash a row is partitioned by at `depth`. Level 0 uses the operator's
/// key hash directly (equal keys must co-locate with their hash buckets);
/// deeper levels re-mix with a depth salt so a skewed partition that shares
/// low bits still splits.
uint64_t PartHash(uint64_t h, int depth) {
  if (depth == 0) return h;
  return HashInt64(h + 0x53504C4Cull * static_cast<uint64_t>(depth));
}

struct SpillCounters {
  telemetry::Counter* ops;
  telemetry::Counter* partitions;
  telemetry::Counter* bytes_written;
  telemetry::Counter* bytes_read;
  telemetry::Counter* recursions;
};

SpillCounters& Counters() {
  static SpillCounters c = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    return SpillCounters{reg.counter("spill.ops"), reg.counter("spill.partitions"),
                         reg.counter("spill.bytes_written"),
                         reg.counter("spill.bytes_read"),
                         reg.counter("spill.recursions")};
  }();
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Policy.
// ---------------------------------------------------------------------------

bool SpillEnabled() {
  int o = g_spill_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return SpillEnvEnabled();
}

void SetSpillOverride(bool enabled) {
  g_spill_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ClearSpillOverride() { g_spill_override.store(-1, std::memory_order_relaxed); }

int64_t SpillBudgetBytes() {
  int64_t o = g_budget_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  if (MemoryMeter* meter = CurrentMemoryMeter()) {
    int64_t b = meter->SpillBudget();
    if (b > 0) return b;
  }
  return SpillEnvBudget();
}

void SetSpillBudgetOverride(int64_t bytes) {
  g_budget_override.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
}

void ClearSpillBudgetOverride() {
  g_budget_override.store(-1, std::memory_order_relaxed);
}

bool ShouldSpill(int64_t estimated_bytes) {
  if (!SpillEnabled()) return false;
  if (MemoryMeter* meter = CurrentMemoryMeter()) {
    if (meter->SpillRequested()) return true;
  }
  int64_t budget = SpillBudgetBytes();
  return budget > 0 && estimated_bytes > budget;
}

void ReleaseTable(const TablePtr& table) {
  if (table != nullptr && CurrentMemoryMeter() != nullptr) {
    ReleaseAllocation(table->ByteSize());
  }
}

// ---------------------------------------------------------------------------
// SpillFile.
// ---------------------------------------------------------------------------

SpillFile::SpillFile(SpillManager* manager, std::string path, std::FILE* file)
    : manager_(manager), path_(std::move(path)), file_(file) {}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
  if (manager_ != nullptr) manager_->Deregister(this);
}

Status SpillFile::Append(const TablePtr& table) {
  if (table == nullptr) return Status::InvalidArgument("spill: null frame");
  std::string bytes = SerializeDatasetWire(Dataset(table), WireFormat::kBinary);
  uint8_t hdr[8];
  uint64_t len = bytes.size();
  for (int i = 0; i < 8; ++i) hdr[i] = static_cast<uint8_t>((len >> (8 * i)) & 0xFF);
  if (std::fwrite(hdr, 1, 8, file_) != 8 ||
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError(StrCat("spill: short write to ", path_));
  }
  int64_t delta = static_cast<int64_t>(8 + len);
  bytes_written_ += delta;
  frames_ += 1;
  rows_ += table->num_rows();
  manager_->NoteBytes(delta);
  return Status::OK();
}

Status SpillFile::ForEachFrame(const std::function<Status(TablePtr)>& fn) const {
  std::fflush(file_);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(StrCat("spill: seek failed on ", path_));
  }
  std::string buf;
  for (int64_t f = 0; f < frames_; ++f) {
    uint8_t hdr[8];
    if (std::fread(hdr, 1, 8, file_) != 8) {
      return Status::IOError(StrCat("spill: truncated frame header in ", path_));
    }
    uint64_t len = 0;
    for (int i = 0; i < 8; ++i) len |= static_cast<uint64_t>(hdr[i]) << (8 * i);
    buf.resize(len);
    if (len > 0 && std::fread(buf.data(), 1, len, file_) != len) {
      return Status::IOError(StrCat("spill: truncated frame body in ", path_));
    }
    NEXUS_ASSIGN_OR_RETURN(Dataset ds, ParseDatasetWire(buf));
    NEXUS_ASSIGN_OR_RETURN(TablePtr table, ds.AsTable());
    NEXUS_RETURN_NOT_OK(fn(std::move(table)));
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

Result<TablePtr> SpillFile::ReadAll(const SchemaPtr& schema) const {
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(schema->num_fields()));
  for (const Field& field : schema->fields()) cols.emplace_back(field.type);
  NEXUS_RETURN_NOT_OK(ForEachFrame([&](TablePtr frame) -> Status {
    if (frame->num_columns() != static_cast<int>(cols.size())) {
      return Status::Internal(StrCat("spill: frame schema mismatch in ", path_));
    }
    for (int i = 0; i < frame->num_columns(); ++i) {
      NEXUS_RETURN_NOT_OK(cols[static_cast<size_t>(i)].AppendColumn(frame->column(i)));
    }
    // The parsed frame was charged on materialization; it dies here.
    ReleaseTable(frame);
    return Status::OK();
  }));
  return Table::Make(schema, std::move(cols));
}

// ---------------------------------------------------------------------------
// SpillManager.
// ---------------------------------------------------------------------------

SpillManager& SpillManager::Global() {
  // Deliberately leaked: scratch files may outlive static destruction order;
  // their RAII handles (and Sweep) own on-disk cleanup.
  static SpillManager* g = new SpillManager();
  return *g;
}

std::string SpillManager::scratch_dir() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    fs::path dir;
    const char* env = std::getenv("NEXUS_SPILL_DIR");
    if (env != nullptr && env[0] != '\0') {
      dir = fs::path(env);
    } else {
      std::error_code ec;
      fs::path tmp = fs::temp_directory_path(ec);
      if (ec) tmp = ".";
      dir = tmp / StrCat("nexus-spill-", static_cast<int64_t>(::getpid()));
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    dir_ = dir.string();
  }
  return dir_;
}

Result<std::unique_ptr<SpillFile>> SpillManager::Create(const std::string& tag) {
  std::string dir = scratch_dir();
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_file_++;
  }
  std::string clean;
  for (char c : tag) {
    if (clean.size() >= 32) break;
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_';
    clean.push_back(ok ? c : '_');
  }
  std::string path = StrCat(dir, "/", FilePrefix(), static_cast<int64_t>(seq));
  if (!clean.empty()) path = StrCat(path, "-", clean);
  path += ".spill";
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError(StrCat("spill: cannot create scratch file ", path));
  }
  std::unique_ptr<SpillFile> file(new SpillFile(this, std::move(path), f));
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.insert(file.get());
  }
  files_created_.fetch_add(1, std::memory_order_relaxed);
  return file;
}

void SpillManager::Deregister(SpillFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(file);
  live_bytes_.fetch_add(-file->bytes_written_, std::memory_order_relaxed);
}

int64_t SpillManager::live_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(live_.size());
}

int64_t SpillManager::Sweep() {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dir_.empty()) return 0;  // never spilled: nothing to reap
    dir = dir_;
  }
  const std::string prefix = FilePrefix();
  int64_t removed = 0;
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  while (!ec && it != end) {
    const fs::path p = it->path();
    std::string name = p.filename().string();
    if (name.rfind(prefix, 0) == 0) {
      std::error_code rec;
      if (fs::remove(p, rec)) ++removed;
    }
    it.increment(ec);
  }
  std::error_code rec;
  fs::remove(dir, rec);  // succeeds only when the directory is now empty
  return removed;
}

// ---------------------------------------------------------------------------
// PartitionedSpiller.
// ---------------------------------------------------------------------------

PartitionedSpiller::PartitionedSpiller(SpillManager* manager, Options options)
    : manager_(manager), options_(std::move(options)) {
  if (options_.budget_bytes <= 0) options_.budget_bytes = 1 << 20;
  if (options_.frame_rows <= 0) options_.frame_rows = 16 * 1024;
  if (options_.max_partitions < 2) options_.max_partitions = 2;
  if (options_.max_depth < 1) options_.max_depth = 1;
}

int PartitionedSpiller::ChoosePartitionCount(int64_t total_bytes) const {
  // Target partitions of ~half the budget so the leaf's own working set
  // (hash table, pair vectors) fits beside the loaded partition.
  int64_t half = std::max<int64_t>(1, options_.budget_bytes / 2);
  int64_t want = total_bytes / half + 1;
  int p = 2;
  while (p < want && p < options_.max_partitions) p <<= 1;
  return p;
}

Status PartitionedSpiller::Run(const std::vector<SpillInput>& inputs,
                               const LeafFn& leaf) {
  if (inputs.empty()) return Status::InvalidArgument("spill: no inputs");
  std::vector<TablePtr> tables;
  std::vector<const std::vector<uint64_t>*> hashes;
  for (const SpillInput& in : inputs) {
    if (in.table == nullptr || in.hashes == nullptr) {
      return Status::InvalidArgument("spill: null input table or hash vector");
    }
    if (static_cast<int64_t>(in.hashes->size()) != in.table->num_rows()) {
      return Status::InvalidArgument(
          StrCat("spill: ", in.hashes->size(), " hashes for ",
                 in.table->num_rows(), " rows"));
    }
    tables.push_back(in.table);
    hashes.push_back(in.hashes);
  }
  Counters().ops->Increment();
  FileGrid files;
  std::vector<SchemaPtr> schemas(tables.size());
  NEXUS_RETURN_NOT_OK(
      PartitionLevel(tables, hashes, /*augmented=*/false, 0, &files, &schemas));
  if (options_.release_inputs) {
    for (const TablePtr& t : tables) ReleaseTable(t);
  }
  return ProcessFiles(std::move(files), schemas, 0, leaf);
}

Status PartitionedSpiller::PartitionLevel(
    const std::vector<TablePtr>& tables,
    const std::vector<const std::vector<uint64_t>*>& hashes, bool augmented,
    int depth, FileGrid* files, std::vector<SchemaPtr>* schemas) {
  const size_t k = tables.size();
  int64_t total_bytes = 0;
  for (const TablePtr& t : tables) total_bytes += t->ByteSize();
  const int P = ChoosePartitionCount(total_bytes);

  files->clear();
  files->resize(k);
  for (size_t i = 0; i < k; ++i) (*files)[i].resize(static_cast<size_t>(P));

  int64_t written_before = 0;
  for (size_t in = 0; in < k; ++in) {
    // Resolve the augmented schema: original fields plus the hidden
    // row-index and key-hash columns (already present past level 0).
    SchemaPtr aug_schema;
    if (augmented) {
      aug_schema = tables[in]->schema();
    } else {
      std::vector<Field> fields = tables[in]->schema()->fields();
      fields.push_back(Field::Attr(kSpillRowCol, DataType::kInt64));
      fields.push_back(Field::Attr(kSpillHashCol, DataType::kInt64));
      NEXUS_ASSIGN_OR_RETURN(aug_schema, Schema::Make(std::move(fields)));
    }
    (*schemas)[in] = aug_schema;

    const std::vector<uint64_t>& hv = *hashes[in];
    const int64_t n = tables[in]->num_rows();
    std::vector<std::vector<int64_t>> part_rows(static_cast<size_t>(P));
    for (int64_t start = 0; start < n; start += options_.frame_rows) {
      NEXUS_RETURN_NOT_OK(CheckCancel());
      const int64_t end = std::min(n, start + options_.frame_rows);
      for (auto& rows : part_rows) rows.clear();
      for (int64_t i = start; i < end; ++i) {
        uint64_t p = PartHash(hv[static_cast<size_t>(i)], depth) &
                     static_cast<uint64_t>(P - 1);
        part_rows[static_cast<size_t>(p)].push_back(i);
      }
      for (int p = 0; p < P; ++p) {
        const std::vector<int64_t>& rows = part_rows[static_cast<size_t>(p)];
        if (rows.empty()) continue;
        std::unique_ptr<SpillFile>& file = (*files)[in][static_cast<size_t>(p)];
        if (file == nullptr) {
          NEXUS_ASSIGN_OR_RETURN(
              file, manager_->Create(StrCat(options_.tag, "-d",
                                            static_cast<int64_t>(depth), "-i",
                                            static_cast<int64_t>(in), "-p",
                                            static_cast<int64_t>(p))));
        }
        TablePtr sub = tables[in]->TakeRows(rows);
        if (augmented) {
          NEXUS_RETURN_NOT_OK(file->Append(sub));
          continue;
        }
        std::vector<Column> cols = sub->columns();
        std::vector<int64_t> hash_bits;
        hash_bits.reserve(rows.size());
        for (int64_t i : rows) {
          hash_bits.push_back(static_cast<int64_t>(hv[static_cast<size_t>(i)]));
        }
        cols.push_back(Column::FromInt64(rows));
        cols.push_back(Column::FromInt64(std::move(hash_bits)));
        NEXUS_ASSIGN_OR_RETURN(TablePtr frame,
                               Table::Make(aug_schema, std::move(cols)));
        Status st = file->Append(frame);
        ReleaseTable(frame);  // on disk now; drop the transient charge
        NEXUS_RETURN_NOT_OK(st);
      }
    }
  }
  for (size_t in = 0; in < k; ++in) {
    for (const auto& file : (*files)[in]) {
      if (file != nullptr) written_before += file->bytes_written();
    }
  }
  stats_.bytes_spilled += written_before;
  Counters().bytes_written->Add(written_before);
  return Status::OK();
}

Status PartitionedSpiller::ProcessFiles(FileGrid files,
                                        const std::vector<SchemaPtr>& schemas,
                                        int depth, const LeafFn& leaf) {
  const size_t k = files.size();
  const size_t P = k == 0 ? 0 : files[0].size();
  for (size_t p = 0; p < P; ++p) {
    bool any = false;
    for (size_t in = 0; in < k; ++in) any = any || files[in][p] != nullptr;
    if (!any) continue;
    NEXUS_RETURN_NOT_OK(CheckCancel());

    int64_t disk_bytes = 0;
    std::vector<TablePtr> parts(k);
    std::vector<bool> charged(k, false);
    for (size_t in = 0; in < k; ++in) {
      if (files[in][p] != nullptr) {
        disk_bytes += files[in][p]->bytes_written();
        NEXUS_ASSIGN_OR_RETURN(parts[in], files[in][p]->ReadAll(schemas[in]));
        charged[in] = true;
        files[in][p].reset();  // unlink the partition's scratch immediately
      } else {
        parts[in] = Table::Empty(schemas[in]);
      }
    }
    Counters().bytes_read->Add(disk_bytes);

    int64_t loaded = 0;
    int64_t loaded_rows = 0;
    for (const TablePtr& t : parts) {
      loaded += t->ByteSize();
      loaded_rows += t->num_rows();
    }
    // A partition is splittable when its rows span more than one key hash;
    // all-equal keys land in one partition at every salt, so recursing would
    // never converge — process such a partition in memory at any size.
    bool splittable = false;
    {
      bool have_first = false;
      int64_t first = 0;
      for (const TablePtr& t : parts) {
        const std::vector<int64_t>& hs =
            t->column(t->num_columns() - 1).ints();
        for (int64_t h : hs) {
          if (!have_first) {
            first = h;
            have_first = true;
          } else if (h != first) {
            splittable = true;
            break;
          }
        }
        if (splittable) break;
      }
    }

    if (depth < options_.max_depth && loaded > options_.budget_bytes &&
        loaded_rows > 1 && splittable) {
      stats_.recursions += 1;
      Counters().recursions->Increment();
      // Re-derive each row's key hash from the hidden column, re-partition
      // with the next depth's salt, and drop this partition before
      // descending so resident bytes never stack across levels.
      std::vector<std::vector<uint64_t>> hv(k);
      std::vector<const std::vector<uint64_t>*> hash_ptrs(k);
      for (size_t in = 0; in < k; ++in) {
        const std::vector<int64_t>& hs =
            parts[in]->column(parts[in]->num_columns() - 1).ints();
        hv[in].reserve(hs.size());
        for (int64_t h : hs) hv[in].push_back(static_cast<uint64_t>(h));
        hash_ptrs[in] = &hv[in];
      }
      FileGrid sub;
      std::vector<SchemaPtr> sub_schemas(k);
      Status st = PartitionLevel(parts, hash_ptrs, /*augmented=*/true,
                                 depth + 1, &sub, &sub_schemas);
      for (size_t in = 0; in < k; ++in) {
        if (charged[in]) ReleaseTable(parts[in]);
      }
      parts.clear();
      hv.clear();
      NEXUS_RETURN_NOT_OK(st);
      NEXUS_RETURN_NOT_OK(ProcessFiles(std::move(sub), sub_schemas, depth + 1, leaf));
      continue;
    }

    stats_.partitions += 1;
    stats_.max_depth = std::max(stats_.max_depth, depth);
    Counters().partitions->Increment();
    Status st = leaf(parts);
    for (size_t in = 0; in < k; ++in) {
      if (charged[in]) ReleaseTable(parts[in]);
    }
    NEXUS_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace spill
}  // namespace nexus
