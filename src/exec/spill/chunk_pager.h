// SpillChunkPager: the NXB1-backed ChunkPager. Evicted NDArray chunks are
// serialized through the same wire format and scratch-file machinery the
// relational/algebra spill paths use — one RAII SpillFile per parked chunk,
// unlinked on fault-in, drop, or pager destruction. This is what lets the
// array engine's big-op results (regrid, window, element-wise merges) obey
// the same memory budget as hash joins: chunks beyond the budget park on
// disk and fault back in transparently on access.
#ifndef NEXUS_EXEC_SPILL_CHUNK_PAGER_H_
#define NEXUS_EXEC_SPILL_CHUNK_PAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/spill/spill.h"
#include "types/ndarray.h"

namespace nexus {
namespace spill {

class SpillChunkPager : public ChunkPager {
 public:
  /// `tag` labels the scratch files (e.g. the producing operator).
  explicit SpillChunkPager(SpillManager* manager, std::string tag);
  ~SpillChunkPager() override = default;

  Status PageOut(int64_t key, ArrayChunk chunk) override;
  Result<ArrayChunk> PageIn(int64_t key) override;
  void Drop(int64_t key) override;
  int64_t paged_bytes() const override;

  int64_t chunks_paged_out() const { return paged_out_; }
  int64_t chunks_paged_in() const { return paged_in_; }

 private:
  /// One parked chunk: geometry stays in memory (it is tiny and needed to
  /// rebuild the chunk), the payload lives in the scratch file as a table
  /// of attribute columns plus the occupancy mask.
  struct Entry {
    std::unique_ptr<SpillFile> file;
    std::vector<int64_t> grid;
    std::vector<int64_t> lo;
    std::vector<int64_t> extent;
    SchemaPtr schema;  // attrs (synthesized names) + "__occ"
  };

  SpillManager* manager_;
  std::string tag_;
  mutable std::mutex mu_;
  std::map<int64_t, Entry> entries_;  // guarded by mu_
  int64_t paged_out_ = 0;             // guarded by mu_
  int64_t paged_in_ = 0;              // guarded by mu_
};

/// Attaches a SpillChunkPager to `array` and evicts chunks until its
/// resident payload fits the calling query's spill budget. No-op (returns
/// 0) when spilling is off, the budget is unset, or the array already
/// fits. The array engine calls this on freshly built big-op results.
Result<int64_t> ShedArray(const std::shared_ptr<NDArray>& array,
                          const std::string& tag);

}  // namespace spill
}  // namespace nexus

#endif  // NEXUS_EXEC_SPILL_CHUNK_PAGER_H_
