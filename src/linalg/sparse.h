// Sparse linear algebra: CSR matrices with SpMV and SpGEMM. Used by the
// linalg provider when an input array's occupancy is sparse, and by the
// graph engine's PageRank formulation as a rank-vector times adjacency
// product.
#ifndef NEXUS_LINALG_SPARSE_H_
#define NEXUS_LINALG_SPARSE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/dense.h"

namespace nexus {
namespace linalg {

/// One nonzero in coordinate form.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0.0;
};

/// Compressed sparse row matrix of float64.
class SparseMatrixCSR {
 public:
  /// Builds from coordinate triplets; duplicates are summed.
  static Result<SparseMatrixCSR> FromTriplets(int64_t rows, int64_t cols,
                                              std::vector<Triplet> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Row r's entries occupy [row_ptr()[r], row_ptr()[r+1]).
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A * x.
  Result<std::vector<double>> SpMV(const std::vector<double>& x) const;

  /// C = A * B (Gustavson's row-by-row SpGEMM).
  Result<SparseMatrixCSR> SpGEMM(const SparseMatrixCSR& b) const;

  /// Densifies (for small matrices / testing).
  DenseMatrix ToDense() const;

  /// All nonzeros in row-major order.
  std::vector<Triplet> ToTriplets() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace linalg
}  // namespace nexus

#endif  // NEXUS_LINALG_SPARSE_H_
