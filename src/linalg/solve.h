// Dense linear solvers: LU decomposition with partial pivoting, linear
// system solve, determinant, and inverse — rounding out the ScaLAPACK-class
// substrate beyond multiplication.
#ifndef NEXUS_LINALG_SOLVE_H_
#define NEXUS_LINALG_SOLVE_H_

#include <vector>

#include "linalg/dense.h"

namespace nexus {
namespace linalg {

/// PA = LU factorization of a square matrix (partial pivoting).
struct LuDecomposition {
  /// Combined LU storage: strictly-lower part holds L (unit diagonal
  /// implied), upper triangle holds U.
  DenseMatrix lu;
  /// Row permutation: pivot[i] is the original row moved to position i.
  std::vector<int64_t> pivot;
  /// Parity of the permutation (+1 / -1), for the determinant.
  int sign = 1;

  int64_t n() const { return lu.rows(); }

  /// Solves A x = b using the factorization.
  Result<std::vector<double>> Solve(const std::vector<double>& b) const;

  /// det(A) = sign * prod(diag(U)).
  double Determinant() const;
};

/// Factorizes a square matrix; errors when singular (within `rel_tol` of a
/// zero pivot relative to the matrix's max magnitude).
Result<LuDecomposition> LuFactor(const DenseMatrix& a, double rel_tol = 1e-12);

/// One-shot solve of A x = b.
Result<std::vector<double>> SolveLinearSystem(const DenseMatrix& a,
                                              const std::vector<double>& b);

/// A⁻¹ via LU (n solves).
Result<DenseMatrix> Invert(const DenseMatrix& a);

}  // namespace linalg
}  // namespace nexus

#endif  // NEXUS_LINALG_SOLVE_H_
