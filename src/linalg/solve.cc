#include "linalg/solve.h"

#include <cmath>

#include "common/str_util.h"

namespace nexus {
namespace linalg {

Result<LuDecomposition> LuFactor(const DenseMatrix& a, double rel_tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU factorization requires a square matrix");
  }
  int64_t n = a.rows();
  LuDecomposition out;
  out.lu = a;
  out.pivot.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.pivot[static_cast<size_t>(i)] = i;
  double max_mag = 0.0;
  for (double v : a.data()) max_mag = std::max(max_mag, std::fabs(v));
  const double tol = rel_tol * std::max(max_mag, 1.0);

  for (int64_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    int64_t best = k;
    double best_mag = std::fabs(out.lu.At(k, k));
    for (int64_t r = k + 1; r < n; ++r) {
      double m = std::fabs(out.lu.At(r, k));
      if (m > best_mag) {
        best_mag = m;
        best = r;
      }
    }
    if (best_mag <= tol) {
      return Status::InvalidArgument(
          StrCat("matrix is singular (pivot ", k, ")"));
    }
    if (best != k) {
      for (int64_t c = 0; c < n; ++c) {
        double tmp = out.lu.At(k, c);
        out.lu.Set(k, c, out.lu.At(best, c));
        out.lu.Set(best, c, tmp);
      }
      std::swap(out.pivot[static_cast<size_t>(k)],
                out.pivot[static_cast<size_t>(best)]);
      out.sign = -out.sign;
    }
    double pivot = out.lu.At(k, k);
    for (int64_t r = k + 1; r < n; ++r) {
      double factor = out.lu.At(r, k) / pivot;
      out.lu.Set(r, k, factor);
      if (factor == 0.0) continue;
      for (int64_t c = k + 1; c < n; ++c) {
        out.lu.Set(r, c, out.lu.At(r, c) - factor * out.lu.At(k, c));
      }
    }
  }
  return out;
}

Result<std::vector<double>> LuDecomposition::Solve(
    const std::vector<double>& b) const {
  int64_t size = n();
  if (static_cast<int64_t>(b.size()) != size) {
    return Status::InvalidArgument("solve: rhs length mismatch");
  }
  // Apply the permutation, then forward- and back-substitute.
  std::vector<double> x(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) {
    x[static_cast<size_t>(i)] = b[static_cast<size_t>(pivot[static_cast<size_t>(i)])];
  }
  for (int64_t i = 0; i < size; ++i) {
    double s = x[static_cast<size_t>(i)];
    for (int64_t j = 0; j < i; ++j) s -= lu.At(i, j) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = s;  // L has unit diagonal
  }
  for (int64_t i = size - 1; i >= 0; --i) {
    double s = x[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < size; ++j) {
      s -= lu.At(i, j) * x[static_cast<size_t>(j)];
    }
    x[static_cast<size_t>(i)] = s / lu.At(i, i);
  }
  return x;
}

double LuDecomposition::Determinant() const {
  double det = sign;
  for (int64_t i = 0; i < n(); ++i) det *= lu.At(i, i);
  return det;
}

Result<std::vector<double>> SolveLinearSystem(const DenseMatrix& a,
                                              const std::vector<double>& b) {
  NEXUS_ASSIGN_OR_RETURN(LuDecomposition lu, LuFactor(a));
  return lu.Solve(b);
}

Result<DenseMatrix> Invert(const DenseMatrix& a) {
  NEXUS_ASSIGN_OR_RETURN(LuDecomposition lu, LuFactor(a));
  int64_t n = a.rows();
  DenseMatrix inv(n, n);
  std::vector<double> e(static_cast<size_t>(n), 0.0);
  for (int64_t c = 0; c < n; ++c) {
    e[static_cast<size_t>(c)] = 1.0;
    NEXUS_ASSIGN_OR_RETURN(std::vector<double> col, lu.Solve(e));
    e[static_cast<size_t>(c)] = 0.0;
    for (int64_t r = 0; r < n; ++r) inv.Set(r, c, col[static_cast<size_t>(r)]);
  }
  return inv;
}

}  // namespace linalg
}  // namespace nexus
