// Dense linear algebra — the framework's stand-in for a numeric package
// (the paper's ScaLAPACK-class provider).
//
// Row-major double matrices with naive and cache-blocked kernels. The
// blocked/naive pair exists on purpose: E8 ablates the blocking, and E3
// contrasts a native GEMM against the relational expansion of matmul.
#ifndef NEXUS_LINALG_DENSE_H_
#define NEXUS_LINALG_DENSE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "types/ndarray.h"

namespace nexus {
namespace linalg {

/// Row-major dense matrix of float64.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double At(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  void Set(int64_t r, int64_t c, double v) {
    data_[static_cast<size_t>(r * cols_ + c)] = v;
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  bool SameShape(const DenseMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  /// Max absolute elementwise difference (for test tolerances).
  double MaxAbsDiff(const DenseMatrix& o) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B, triple loop in ikj order (no blocking). Baseline for E8.
Result<DenseMatrix> MatMulNaive(const DenseMatrix& a, const DenseMatrix& b);

/// C = A * B with cache blocking; `block` is the tile edge (0 = default 64).
Result<DenseMatrix> MatMulBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                  int64_t block = 0);

/// B = Aᵀ.
DenseMatrix Transpose(const DenseMatrix& a);

/// C = alpha*A + beta*B (shapes must match).
Result<DenseMatrix> Add(const DenseMatrix& a, const DenseMatrix& b,
                        double alpha = 1.0, double beta = 1.0);

/// Hadamard (elementwise) product.
Result<DenseMatrix> ElemMul(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x.
Result<std::vector<double>> MatVec(const DenseMatrix& a,
                                   const std::vector<double>& x);

/// Converts a 2-d NDArray with one numeric attribute into a dense matrix,
/// mapping coordinates relative to each dimension's start; absent cells
/// become 0. Returns the dimension starts so the inverse keeps coordinates.
Result<DenseMatrix> FromNDArray(const NDArray& in, int64_t* row_start,
                                int64_t* col_start);

/// Inverse of FromNDArray: emits every entry (including zeros) as cells of
/// a fresh array with dims named `row_name`/`col_name` and one float64
/// attribute `attr`. `drop_zeros` emits only nonzero entries (sparse use).
Result<NDArrayPtr> ToNDArray(const DenseMatrix& m, const std::string& row_name,
                             const std::string& col_name, const std::string& attr,
                             int64_t row_start, int64_t col_start,
                             int64_t chunk_size, bool drop_zeros);

}  // namespace linalg
}  // namespace nexus

#endif  // NEXUS_LINALG_DENSE_H_
