#include "linalg/dense.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/str_util.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace linalg {

double DenseMatrix::MaxAbsDiff(const DenseMatrix& o) const {
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - o.data_[i]));
  }
  return m;
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

namespace {
Status CheckMulShapes(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        StrCat("matmul shape mismatch: ", a.rows(), "x", a.cols(), " * ",
               b.rows(), "x", b.cols()));
  }
  return Status::OK();
}
}  // namespace

Result<DenseMatrix> MatMulNaive(const DenseMatrix& a, const DenseMatrix& b) {
  NEXUS_RETURN_NOT_OK(CheckMulShapes(a, b));
  DenseMatrix c(a.rows(), b.cols());
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = c.data().data();
  int64_t n = a.rows(), k = a.cols(), m = b.cols();
  // Each output row is owned by exactly one morsel and accumulated in the
  // same kk order as the sequential loop, so the result is bit-identical.
  ParallelFor(n, 16, [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) {
        double av = ad[i * k + kk];
        if (av == 0.0) continue;
        const double* brow = bd + kk * m;
        double* crow = cd + i * m;
        for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Result<DenseMatrix> MatMulBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                  int64_t block) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "la.MatMulBlk");
  span.AddCounter("rows", a.rows());
  span.AddCounter("cols", b.cols());
  NEXUS_RETURN_NOT_OK(CheckMulShapes(a, b));
  if (block <= 0) block = 64;
  DenseMatrix c(a.rows(), b.cols());
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = c.data().data();
  int64_t n = a.rows(), k = a.cols(), m = b.cols();
  // Morsel = one i0 row-block. Row blocks partition the output rows, and
  // within a block every row keeps the sequential k0/j0 tile order, so the
  // floating-point accumulation order per output element is unchanged.
  ParallelFor(n, block, [&](int64_t i0, int64_t i1) {
    for (int64_t k0 = 0; k0 < k; k0 += block) {
      int64_t k1 = std::min(k, k0 + block);
      for (int64_t j0 = 0; j0 < m; j0 += block) {
        int64_t j1 = std::min(m, j0 + block);
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t kk = k0; kk < k1; ++kk) {
            double av = ad[i * k + kk];
            const double* brow = bd + kk * m;
            double* crow = cd + i * m;
            for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
  return c;
}

DenseMatrix Transpose(const DenseMatrix& a) {
  DenseMatrix t(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) t.Set(c, r, a.At(r, c));
  }
  return t;
}

Result<DenseMatrix> Add(const DenseMatrix& a, const DenseMatrix& b,
                        double alpha, double beta) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("matrix add shape mismatch");
  }
  DenseMatrix c(a.rows(), a.cols());
  ParallelFor(static_cast<int64_t>(a.data().size()), kMorselRows,
              [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      c.data()[static_cast<size_t>(i)] = alpha * a.data()[static_cast<size_t>(i)] +
                                         beta * b.data()[static_cast<size_t>(i)];
    }
  });
  return c;
}

Result<DenseMatrix> ElemMul(const DenseMatrix& a, const DenseMatrix& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("elementwise mul shape mismatch");
  }
  DenseMatrix c(a.rows(), a.cols());
  ParallelFor(static_cast<int64_t>(a.data().size()), kMorselRows,
              [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      c.data()[static_cast<size_t>(i)] =
          a.data()[static_cast<size_t>(i)] * b.data()[static_cast<size_t>(i)];
    }
  });
  return c;
}

Result<std::vector<double>> MatVec(const DenseMatrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != static_cast<int64_t>(x.size())) {
    return Status::InvalidArgument("matvec shape mismatch");
  }
  std::vector<double> y(static_cast<size_t>(a.rows()), 0.0);
  ParallelFor(a.rows(), 1024, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      double s = 0.0;
      for (int64_t c = 0; c < a.cols(); ++c) s += a.At(r, c) * x[static_cast<size_t>(c)];
      y[static_cast<size_t>(r)] = s;
    }
  });
  return y;
}

Result<DenseMatrix> FromNDArray(const NDArray& in, int64_t* row_start,
                                int64_t* col_start) {
  if (in.num_dims() != 2) {
    return Status::InvalidArgument("dense conversion requires a 2-d array");
  }
  if (in.attr_schema()->num_fields() != 1 ||
      !IsNumeric(in.attr_schema()->field(0).type)) {
    return Status::InvalidArgument(
        "dense conversion requires one numeric attribute");
  }
  *row_start = in.dim(0).start;
  *col_start = in.dim(1).start;
  DenseMatrix m(in.dim(0).length, in.dim(1).length);
  for (const ArrayChunk* chunk : in.chunks()) {
    int64_t volume = chunk->Volume();
    const Column& attr = chunk->attrs[0];
    for (int64_t off = 0; off < volume; ++off) {
      if (!chunk->occupied[static_cast<size_t>(off)] || attr.IsNull(off)) continue;
      std::vector<int64_t> local = chunk->LocalCoords(off);
      m.Set(chunk->lo[0] + local[0] - *row_start,
            chunk->lo[1] + local[1] - *col_start, attr.NumericAt(off));
    }
  }
  return m;
}

Result<NDArrayPtr> ToNDArray(const DenseMatrix& m, const std::string& row_name,
                             const std::string& col_name, const std::string& attr,
                             int64_t row_start, int64_t col_start,
                             int64_t chunk_size, bool drop_zeros) {
  if (m.rows() == 0 || m.cols() == 0) {
    return Status::InvalidArgument("cannot convert an empty matrix");
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr attrs,
                         Schema::Make({Field::Attr(attr, DataType::kFloat64)}));
  NEXUS_ASSIGN_OR_RETURN(
      std::shared_ptr<NDArray> out,
      NDArray::Make({DimensionSpec{row_name, row_start, m.rows(), chunk_size},
                     DimensionSpec{col_name, col_start, m.cols(), chunk_size}},
                    attrs));
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      double v = m.At(r, c);
      if (drop_zeros && v == 0.0) continue;
      NEXUS_RETURN_NOT_OK(
          out->Set({row_start + r, col_start + c}, {Value::Float64(v)}));
    }
  }
  return NDArrayPtr(std::move(out));
}

}  // namespace linalg
}  // namespace nexus
