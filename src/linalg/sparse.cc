#include "linalg/sparse.h"

#include <algorithm>

#include "algebra/kernels.h"
#include "algebra/semiring.h"
#include "common/str_util.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace linalg {

Result<SparseMatrixCSR> SparseMatrixCSR::FromTriplets(
    int64_t rows, int64_t cols, std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative sparse matrix shape");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::IndexError(StrCat("triplet (", t.row, ", ", t.col,
                                       ") outside ", rows, "x", cols));
    }
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // Explicit zeros are *kept*: a 0-valued triplet (and duplicates summing to
  // exactly 0) stays a stored entry. The semi-ring contract only requires
  // that absent entries behave as the ring zero — stored zeros must flow
  // through SpMV/SpGEMM like any value (they contribute ±0.0 terms), which
  // the algebra-routed paths below reproduce term-for-term.
  SparseMatrixCSR m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    // Sum duplicates.
    size_t j = i + 1;
    double sum = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(triplets[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<size_t>(triplets[i].row) + 1]++;
    i = j;
  }
  for (size_t r = 1; r < m.row_ptr_.size(); ++r) m.row_ptr_[r] += m.row_ptr_[r - 1];
  return m;
}

Result<std::vector<double>> SparseMatrixCSR::SpMV(
    const std::vector<double>& x) const {
  if (static_cast<int64_t>(x.size()) != cols_) {
    return Status::InvalidArgument("SpMV shape mismatch");
  }
  if (algebra::SemiringLoweringEnabled()) {
    // Lowered path: y = A·x as Join⊕ over plus_times. Byte-identical to the
    // CSR loop below (same terms, same k-ascending fold order, zero-seeded
    // sums; empty rows stay 0.0); any refusal falls back to the native loop.
    Result<std::vector<double>> via =
        algebra::SpMVViaJoin(ToTriplets(), rows_, x);
    if (via.ok()) return via;
  }
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (int64_t i = row_ptr_[static_cast<size_t>(r)];
         i < row_ptr_[static_cast<size_t>(r) + 1]; ++i) {
      s += values_[static_cast<size_t>(i)] *
           x[static_cast<size_t>(col_idx_[static_cast<size_t>(i)])];
    }
    y[static_cast<size_t>(r)] = s;
  }
  return y;
}

Result<SparseMatrixCSR> SparseMatrixCSR::SpGEMM(const SparseMatrixCSR& b) const {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "la.SpGEMM");
  span.AddCounter("nnz_left", static_cast<int64_t>(values_.size()));
  if (cols_ != b.rows_) {
    return Status::InvalidArgument("SpGEMM shape mismatch");
  }
  if (algebra::SemiringLoweringEnabled()) {
    // Lowered path: C = A·B as Join⊕ over plus_times. Per output cell the
    // fold runs in the same k-ascending order as the workspace scatter
    // below, so results are byte-identical (exact-zero outputs dropped by
    // both); any refusal falls back to the native Gustavson loop.
    Result<std::vector<Triplet>> via =
        algebra::SpGEMMViaJoin(ToTriplets(), b.ToTriplets());
    if (via.ok()) return FromTriplets(rows_, b.cols_, std::move(*via));
  }
  // Gustavson: per output row, scatter-accumulate into a dense workspace.
  std::vector<double> workspace(static_cast<size_t>(b.cols_), 0.0);
  std::vector<int64_t> touched;
  std::vector<Triplet> out;
  for (int64_t r = 0; r < rows_; ++r) {
    touched.clear();
    for (int64_t i = row_ptr_[static_cast<size_t>(r)];
         i < row_ptr_[static_cast<size_t>(r) + 1]; ++i) {
      int64_t k = col_idx_[static_cast<size_t>(i)];
      double av = values_[static_cast<size_t>(i)];
      for (int64_t j = b.row_ptr_[static_cast<size_t>(k)];
           j < b.row_ptr_[static_cast<size_t>(k) + 1]; ++j) {
        int64_t c = b.col_idx_[static_cast<size_t>(j)];
        if (workspace[static_cast<size_t>(c)] == 0.0) touched.push_back(c);
        workspace[static_cast<size_t>(c)] += av * b.values_[static_cast<size_t>(j)];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int64_t c : touched) {
      double v = workspace[static_cast<size_t>(c)];
      workspace[static_cast<size_t>(c)] = 0.0;
      if (v != 0.0) out.push_back(Triplet{r, c, v});
    }
  }
  return FromTriplets(rows_, b.cols_, std::move(out));
}

DenseMatrix SparseMatrixCSR::ToDense() const {
  DenseMatrix m(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[static_cast<size_t>(r)];
         i < row_ptr_[static_cast<size_t>(r) + 1]; ++i) {
      m.Set(r, col_idx_[static_cast<size_t>(i)], values_[static_cast<size_t>(i)]);
    }
  }
  return m;
}

std::vector<Triplet> SparseMatrixCSR::ToTriplets() const {
  std::vector<Triplet> out;
  out.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[static_cast<size_t>(r)];
         i < row_ptr_[static_cast<size_t>(r) + 1]; ++i) {
      out.push_back(Triplet{r, col_idx_[static_cast<size_t>(i)],
                            values_[static_cast<size_t>(i)]});
    }
  }
  return out;
}

}  // namespace linalg
}  // namespace nexus
