// Cluster: a set of named servers (each hosting one provider and its
// catalog) joined by a metered transport. The substrate the multi-server
// experiments run on.
#ifndef NEXUS_FEDERATION_CLUSTER_H_
#define NEXUS_FEDERATION_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "federation/transport.h"
#include "provider/provider.h"

namespace nexus {

/// One simulated back-end server.
struct Server {
  std::string name;
  ProviderPtr provider;
};

/// Owns the servers and the transport connecting them (and the client).
class Cluster {
 public:
  explicit Cluster(TransportOptions transport_options = {})
      : transport_(transport_options) {}

  /// Registers a server; names must be unique and may not be "client".
  Status AddServer(const std::string& name, ProviderPtr provider);

  /// Stores a collection at a server (the "data lives somewhere" primitive).
  Status PutData(const std::string& server, const std::string& table, Dataset data);

  Provider* provider(const std::string& server);
  const Provider* provider(const std::string& server) const;

  /// Server names in registration order.
  std::vector<std::string> ServerNames() const;

  /// Servers whose catalog contains `table`, in registration order.
  std::vector<std::string> HoldersOf(const std::string& table) const;

  Transport* transport() { return &transport_; }
  const Transport& transport() const { return transport_; }

 private:
  std::vector<Server> servers_;
  Transport transport_;
};

}  // namespace nexus

#endif  // NEXUS_FEDERATION_CLUSTER_H_
