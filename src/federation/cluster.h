// Cluster: a set of named servers (each hosting one provider and its
// catalog) joined by a metered transport. The substrate the multi-server
// experiments run on.
#ifndef NEXUS_FEDERATION_CLUSTER_H_
#define NEXUS_FEDERATION_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "federation/transport.h"
#include "provider/provider.h"

namespace nexus {

/// One simulated back-end server.
struct Server {
  std::string name;
  ProviderPtr provider;
};

/// Owns the servers and the transport connecting them (and the client).
class Cluster {
 public:
  explicit Cluster(TransportOptions transport_options = {})
      : transport_(transport_options) {}

  /// Registers a server; names must be unique and may not be "client".
  Status AddServer(const std::string& name, ProviderPtr provider);

  /// Stores a collection at a server (the "data lives somewhere" primitive).
  Status PutData(const std::string& server, const std::string& table, Dataset data);

  /// Copies `table` from its first holder to `to` so the table has multiple
  /// holders — the redundancy the coordinator's failover replanning routes
  /// through when a holder dies. The copy is metered as one server→server
  /// data message. No-op when `to` already holds the table.
  Status Replicate(const std::string& table, const std::string& to);

  Provider* provider(const std::string& server);
  const Provider* provider(const std::string& server) const;

  /// Server names in registration order.
  std::vector<std::string> ServerNames() const;

  /// Servers whose catalog contains `table`, in registration order.
  std::vector<std::string> HoldersOf(const std::string& table) const;

  Transport* transport() { return &transport_; }
  const Transport& transport() const { return transport_; }

 private:
  std::vector<Server> servers_;
  Transport transport_;
};

}  // namespace nexus

#endif  // NEXUS_FEDERATION_CLUSTER_H_
