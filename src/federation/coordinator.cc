#include "federation/coordinator.h"

#include <algorithm>
#include <functional>
#include <limits>

#include <optional>

#include <cmath>

#include "common/parallel.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/schema_inference.h"
#include "core/serialize.h"
#include "exec/incremental/policy.h"
#include "optimizer/cardinality.h"
#include "telemetry/explain.h"
#include "telemetry/telemetry.h"

namespace nexus {

std::string ExecutionMetrics::ToString() const {
  std::string out = StrCat(
      "messages=", messages, " (plan ", plan_messages, ", data ", data_messages,
      ")  bytes=", FormatBytes(static_cast<uint64_t>(bytes_total)),
      "  through-client=", FormatBytes(static_cast<uint64_t>(bytes_through_client)),
      "  fragments=", fragments, "  sim=", FormatDouble(simulated_seconds * 1e3, 4),
      "ms  wall=", FormatDouble(wall_seconds * 1e3, 4), "ms");
  if (client_loop_iterations > 0) {
    out += StrCat("  client-loop-iters=", client_loop_iterations);
  }
  if (retries > 0) out += StrCat("  retries=", retries);
  if (timeouts > 0) out += StrCat("  timeouts=", timeouts);
  if (failovers > 0) out += StrCat("  failovers=", failovers);
  if (replans > 0) out += StrCat("  replans=", replans);
  if (checkpoint_restores > 0) {
    out += StrCat("  ckpt-restores=", checkpoint_restores);
  }
  if (threads_used > 1) out += StrCat("  threads=", threads_used);
  if (morsels > 0) out += StrCat("  morsels=", morsels);
  if (parallel_fragments > 0) {
    out += StrCat("  parallel-fragments=", parallel_fragments);
  }
  if (plan_cache_hits > 0 || plan_cache_misses > 0) {
    out += StrCat("  plan-cache=", plan_cache_hits, "h/", plan_cache_misses, "m");
  }
  if (wire_bytes_saved > 0) {
    out += StrCat("  wire-saved=",
                  FormatBytes(static_cast<uint64_t>(wire_bytes_saved)));
  }
  if (delta_bindings > 0) {
    out += StrCat("  delta-bindings=", delta_bindings, " (",
                  delta_rows_shipped, " rows, saved ",
                  FormatBytes(static_cast<uint64_t>(delta_bytes_saved)), ")");
  }
  return out;
}

Coordinator::Instruments Coordinator::Instruments::Resolve() {
  auto& reg = telemetry::MetricsRegistry::Global();
  return Instruments{
      reg.counter("coordinator.fragments"),
      reg.counter("coordinator.parallel_fragments"),
      reg.counter("coordinator.client_loop_iterations"),
      reg.counter("coordinator.retries"),
      reg.counter("coordinator.failovers"),
      reg.counter("coordinator.replans"),
      reg.counter("coordinator.timeouts"),
      reg.counter("coordinator.checkpoint_restores"),
      reg.gauge("coordinator.threads"),
      reg.histogram("coordinator.backoff_seconds"),
      reg.histogram("coordinator.fragment_plan_bytes"),
      reg.counter("transport.bytes_saved"),
      reg.counter("coordinator.delta_bindings"),
      reg.counter("coordinator.delta_rows_shipped"),
      reg.counter("coordinator.delta_bytes_saved"),
      reg.counter("provider.plan_cache_hit"),
      reg.counter("provider.plan_cache_miss"),
  };
}

Coordinator::InstrumentBase Coordinator::SnapshotInstruments() const {
  InstrumentBase base;
  base.fragments = ins_.fragments->value();
  base.parallel_fragments = ins_.parallel_fragments->value();
  base.client_loop_iterations = ins_.client_loop_iterations->value();
  base.retries = ins_.retries->value();
  base.failovers = ins_.failovers->value();
  base.replans = ins_.replans->value();
  base.timeouts = ins_.timeouts->value();
  base.checkpoint_restores = ins_.checkpoint_restores->value();
  base.bytes_saved = ins_.bytes_saved->value();
  base.plan_cache_hit = ins_.plan_cache_hit->value();
  base.plan_cache_miss = ins_.plan_cache_miss->value();
  base.delta_bindings = ins_.delta_bindings->value();
  base.delta_rows_shipped = ins_.delta_rows_shipped->value();
  base.delta_bytes_saved = ins_.delta_bytes_saved->value();
  return base;
}

void Coordinator::FillMetricsFromInstruments(ExecutionMetrics* metrics) const {
  metrics->fragments = ins_.fragments->value() - base_.fragments;
  metrics->parallel_fragments =
      ins_.parallel_fragments->value() - base_.parallel_fragments;
  metrics->client_loop_iterations =
      ins_.client_loop_iterations->value() - base_.client_loop_iterations;
  metrics->retries = ins_.retries->value() - base_.retries;
  metrics->failovers = ins_.failovers->value() - base_.failovers;
  metrics->replans = ins_.replans->value() - base_.replans;
  metrics->timeouts = ins_.timeouts->value() - base_.timeouts;
  metrics->checkpoint_restores =
      ins_.checkpoint_restores->value() - base_.checkpoint_restores;
  metrics->wire_bytes_saved = ins_.bytes_saved->value() - base_.bytes_saved;
  metrics->plan_cache_hits = ins_.plan_cache_hit->value() - base_.plan_cache_hit;
  metrics->plan_cache_misses =
      ins_.plan_cache_miss->value() - base_.plan_cache_miss;
  metrics->delta_bindings = ins_.delta_bindings->value() - base_.delta_bindings;
  metrics->delta_rows_shipped =
      ins_.delta_rows_shipped->value() - base_.delta_rows_shipped;
  metrics->delta_bytes_saved =
      ins_.delta_bytes_saved->value() - base_.delta_bytes_saved;
}

Result<SchemaPtr> FederatedCatalog::GetSchema(const std::string& name) const {
  std::vector<std::string> holders = cluster_->HoldersOf(name);
  if (holders.empty()) {
    return Status::NotFound(StrCat("no server holds '", name, "'"));
  }
  return cluster_->provider(holders[0])->catalog().GetSchema(name);
}

bool FederatedCatalog::Contains(const std::string& name) const {
  return !cluster_->HoldersOf(name).empty();
}

Result<TableStats> FederatedCatalog::GetStats(const std::string& name) const {
  std::vector<std::string> holders = cluster_->HoldersOf(name);
  if (holders.empty()) {
    return Status::NotFound(StrCat("no server holds '", name, "'"));
  }
  return cluster_->provider(holders[0])->catalog().GetStats(name);
}

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

int Coordinator::SpecRank(OpKind kind, const std::string& server) const {
  const Provider* p = cluster_->provider(server);
  if (p == nullptr) return 99;
  std::string pname = p->name();
  if (pname == "reference") return 90;  // always the backstop
  switch (kind) {
    case OpKind::kMatMul:
    case OpKind::kElemWise:
      if (pname == "linalg") return 0;
      if (pname == "arraydb") return 2;
      if (pname == "relstore") return 5;
      break;
    case OpKind::kTranspose:
      if (pname == "arraydb") return 1;
      if (pname == "linalg") return 2;
      if (pname == "relstore") return 3;
      break;
    case OpKind::kPageRank:
      if (pname == "graphd") return 0;
      if (pname == "relstore") return 10;
      break;
    case OpKind::kSlice:
    case OpKind::kShift:
    case OpKind::kRegrid:
    case OpKind::kWindow:
      if (pname == "arraydb") return 0;
      if (pname == "relstore") return 3;
      break;
    default:
      if (pname == "relstore") return 1;
      if (pname == "arraydb") return 4;
      break;
  }
  return 50;
}

bool Coordinator::ServerSuits(const std::string& server, const Plan& node,
                              const std::vector<SchemaPtr>& child_schemas) const {
  const Provider* p = cluster_->provider(server);
  if (p == nullptr || !p->Claims(node.kind())) return false;
  std::string pname = p->name();
  if (pname == "arraydb") {
    // The array engine evaluates on the array representation: every input
    // must carry dimensions — except Rebox, whose input is a plain table,
    // and leaves.
    if (node.kind() == OpKind::kRebox || node.num_children() == 0) return true;
    for (const SchemaPtr& s : child_schemas) {
      if (s->DimensionIndices().empty()) return false;
    }
    return true;
  }
  if (pname == "linalg") {
    if (node.num_children() == 0 || node.kind() == OpKind::kExchange) return true;
    for (const SchemaPtr& s : child_schemas) {
      if (s->DimensionIndices().size() != 2 || s->AttributeIndices().size() != 1) {
        return false;
      }
      if (!IsNumeric(s->field(s->AttributeIndices()[0]).type)) return false;
    }
    if (node.kind() == OpKind::kElemWise) {
      // linalg's elemwise kernel is float64-only.
      for (const SchemaPtr& s : child_schemas) {
        if (s->field(s->AttributeIndices()[0]).type != DataType::kFloat64) {
          return false;
        }
      }
    }
    if (node.kind() == OpKind::kTranspose) {
      // Only the plain 2-d swap.
      const auto& order = node.As<TransposeOp>().dim_order;
      const SchemaPtr& s = child_schemas[0];
      std::vector<int> d = s->DimensionIndices();
      if (order.size() != 2 || order[0] != s->field(d[1]).name ||
          order[1] != s->field(d[0]).name) {
        return false;
      }
    }
    return true;
  }
  return true;
}

int64_t Coordinator::EstimateBytes(const Plan& plan) const {
  switch (plan.kind()) {
    case OpKind::kScan: {
      std::vector<std::string> holders =
          cluster_->HoldersOf(plan.As<ScanOp>().table);
      if (holders.empty()) return 0;
      auto d = cluster_->provider(holders[0])->catalog()->Get(
          plan.As<ScanOp>().table);
      return d.ok() ? d.ValueOrDie().ByteSize() : 0;
    }
    case OpKind::kValues:
      return plan.As<ValuesOp>().data.ByteSize();
    case OpKind::kLoopVar:
      return 0;  // unknown until runtime
    default:
      break;
  }
  int64_t in = 0;
  for (const PlanPtr& c : plan.children()) in += EstimateBytes(*c);
  switch (plan.kind()) {
    case OpKind::kSelect:
      return in / 2;  // default selectivity guess
    case OpKind::kAggregate:
    case OpKind::kRegrid:
      return in / 10;  // grouping collapses
    case OpKind::kLimit:
      return std::min<int64_t>(in, plan.As<LimitOp>().limit * 64);
    case OpKind::kDistinct:
      return in / 2;
    case OpKind::kIterate:
      return EstimateBytes(*plan.child(0));  // schema-preserving fixpoint
    default:
      return in;  // schema-/cardinality-preserving or unknown
  }
}

Result<std::string> Coordinator::AssignServers(const PlanPtr& plan,
                                               Placement* placement) {
  // Planning reads failover state (excluded_) and may run inside a fragment
  // task (client-driven loops); it never executes fragments, so holding the
  // coordinator lock throughout serializes it without stalling compute.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  InferContext ctx;
  ctx.catalog = &fed_catalog_;
  // Stats-based wire-byte estimates for cost-based placement. One memoizing
  // estimator per planning pass: sibling candidates share subtrees.
  CardinalityEstimator wire_est(&fed_catalog_);

  std::function<Result<std::string>(const PlanPtr&)> assign =
      [&](const PlanPtr& node) -> Result<std::string> {
    // Leaves.
    if (node->kind() == OpKind::kScan) {
      const std::string& table = node->As<ScanOp>().table;
      std::vector<std::string> holders = cluster_->HoldersOf(table);
      if (holders.empty()) {
        return Status::NotFound(StrCat("no server holds '", table, "'"));
      }
      // First holder not failed over away from; replicas (Cluster::
      // Replicate) make this the redundancy failover routes through.
      for (const std::string& h : holders) {
        if (excluded_.count(h) != 0) continue;
        placement->assign[node.get()] = h;
        return h;
      }
      return Status::Unavailable(
          StrCat("every holder of '", table, "' is unavailable"));
    }
    if (node->kind() == OpKind::kValues || node->kind() == OpKind::kLoopVar) {
      placement->assign[node.get()] = "";  // flexible: adopts its consumer
      return std::string();
    }

    // Children first.
    std::vector<std::string> child_servers;
    std::vector<SchemaPtr> child_schemas;
    for (const PlanPtr& c : node->children()) {
      NEXUS_ASSIGN_OR_RETURN(std::string s, assign(c));
      child_servers.push_back(std::move(s));
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr cs, InferSchema(*c, &ctx));
      child_schemas.push_back(std::move(cs));
    }

    // Iterate: try to place the whole loop on one provider.
    if (node->kind() == OpKind::kIterate) {
      std::string preferred;
      for (const std::string& s : child_servers) {
        if (!s.empty()) preferred = s;
      }
      if (options_.provider_side_iteration) {
        std::string best;
        int best_rank = 1000;
        for (const std::string& s : cluster_->ServerNames()) {
          if (excluded_.count(s) != 0) continue;
          if (!cluster_->provider(s)->ClaimsTree(*node)) continue;
          int rank = SpecRank(OpKind::kIterate, s) - (s == preferred ? 100 : 0);
          if (rank < best_rank) {
            best_rank = rank;
            best = s;
          }
        }
        if (!best.empty()) {
          placement->assign[node.get()] = best;
          return best;
        }
      }
      placement->client_loops.insert(node.get());
      placement->assign[node.get()] = kClientNode;
      return std::string(kClientNode);
    }

    // Regular operator: candidates are suitable servers. Score layers, most
    // significant first: locality beats specialization rank, which beats the
    // wire-byte tiebreak. With cost_based_placement the tiebreak charges
    // each candidate the estimated bytes it must pull across the wire
    // (catalog statistics × NXB1 column widths); otherwise the legacy
    // bulkier-input credit applies.
    bool intent_like = node->kind() == OpKind::kMatMul ||
                       node->kind() == OpKind::kPageRank ||
                       node->kind() == OpKind::kWindow;
    std::vector<int64_t> child_bytes(node->children().size(), 0);
    int64_t total_child_bytes = 0;
    for (size_t i = 0; i < node->children().size(); ++i) {
      child_bytes[i] = -1;
      if (options_.cost_based_placement) {
        auto est = wire_est.Estimate(*node->children()[i]);
        if (est.ok()) {
          child_bytes[i] = static_cast<int64_t>(est.ValueOrDie().Bytes());
        }
      }
      // Legacy byte-size heuristic when cost-based placement is off or the
      // child is inestimable (e.g. a loop binding only the remote end knows).
      if (child_bytes[i] < 0) child_bytes[i] = EstimateBytes(*node->children()[i]);
      total_child_bytes += child_bytes[i];
    }
    std::string best;
    int64_t best_score = std::numeric_limits<int64_t>::max();
    for (const std::string& s : cluster_->ServerNames()) {
      if (excluded_.count(s) != 0) continue;
      if (!ServerSuits(s, *node, child_schemas)) continue;
      int64_t score = static_cast<int64_t>(SpecRank(node->kind(), s)) * 1000000;
      bool local = false;
      int64_t local_bytes = 0;
      for (size_t i = 0; i < child_servers.size(); ++i) {
        if (child_servers[i] == s) {
          local = true;
          local_bytes += child_bytes[i];
        }
      }
      // Locality dominates unless this is an intent op and the coordinator
      // prefers specialists (desideratum 3 pays off only if the plan
      // actually reaches the specialist).
      if (local && !(intent_like && options_.prefer_specialist)) {
        score -= 1000000000;
      }
      // Wire-byte tiebreak, bounded below one rank step.
      if (options_.cost_based_placement) {
        // Charge what this candidate would have to pull over.
        score += std::min<int64_t>((total_child_bytes - local_bytes) / 64, 900000);
      } else {
        // Legacy: credit the host of the bulkier input.
        score -= std::min<int64_t>(local_bytes / 64, 900000);
      }
      if (score < best_score) {
        best_score = score;
        best = s;
      }
    }
    if (best.empty()) {
      return Status::PlanError(
          StrCat("no server can execute ", node->NodeLabel()));
    }
    placement->assign[node.get()] = best;
    return best;
  };
  return assign(plan);
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

Result<PlanPtr> Coordinator::Prepare(const PlanPtr& plan) {
  // Type-check against the federated catalog, then optimize.
  NEXUS_RETURN_NOT_OK(InferSchema(*plan, fed_catalog_).status());
  last_optimizer_stats_ = OptimizerStats{};
  if (!options_.optimize) return plan;
  return Optimize(plan, fed_catalog_, options_.optimizer,
                  &last_optimizer_stats_);
}

int Coordinator::EffectiveThreads() const {
  if (options_.thread_count <= 0) return GetThreadCount();
  return std::min(options_.thread_count, kMaxThreads);
}

Status Coordinator::CheckCancelled() {
  const CancelToken* token = options_.cancel.get();
  if (token != nullptr && token->cancelled()) return token->status();
  if (options_.deadline_simulated_seconds > 0.0 &&
      cluster_->transport()->simulated_seconds() >
          options_.deadline_simulated_seconds) {
    Status timeout = Status::Timeout(
        StrCat("deadline of ",
               FormatDouble(options_.deadline_simulated_seconds, 3),
               "s (simulated) exceeded"));
    if (options_.cancel != nullptr) {
      // Fire the token so engine morsel loops drain too, then report
      // whatever the token holds (a concurrent governor kill wins the race
      // and its status is the one the client should see).
      options_.cancel->Cancel(StatusCode::kTimeout, timeout.ToString());
      return options_.cancel->status();
    }
    return timeout;
  }
  return Status::OK();
}

Result<std::string> Coordinator::RegisterTemp(const std::string& server,
                                              Dataset data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string name =
      options_.temp_namespace.empty()
          ? StrCat("__frag_", temp_counter_++)
          : StrCat("__frag_", options_.temp_namespace, "_", temp_counter_++);
  NEXUS_RETURN_NOT_OK(cluster_->provider(server)->catalog()->Put(name, std::move(data)));
  temps_.emplace_back(server, name);
  return name;
}

void Coordinator::DropTemps() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& [server, name] : temps_) {
    Provider* p = cluster_->provider(server);
    if (p != nullptr) {
      (void)p->catalog()->Drop(name);
    }
  }
  temps_.clear();
}

Status Coordinator::SendWithRetry(const std::string& from, const std::string& to,
                                  int64_t bytes, MessageKind kind) {
  NEXUS_RETURN_NOT_OK(CheckCancelled());
  // The transport is a single-client simulation (clock, counters, fault
  // schedule): all traffic is serialized here even when sibling fragments
  // execute concurrently. Compute (ExecuteWire) stays outside this lock.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Transport* t = cluster_->transport();
  const RetryPolicy& rp = options_.retry;
  const int attempts = std::max(1, rp.max_attempts);
  double spent = 0.0;  // simulated seconds charged to this message
  double backoff = rp.initial_backoff_seconds;
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double jitter =
          1.0 + rp.jitter_fraction * (2.0 * retry_rng_.NextDouble() - 1.0);
      double pause = backoff * jitter;
      backoff *= rp.backoff_multiplier;
      if (rp.fragment_timeout_seconds > 0.0 &&
          spent + pause > rp.fragment_timeout_seconds) {
        ins_.timeouts->Increment();
        last_failed_server_ = to != kClientNode ? to : from;
        return Status::Timeout(
            StrCat("fragment budget of ",
                   FormatDouble(rp.fragment_timeout_seconds, 3),
                   "s exhausted after ", attempt, " attempts ", from, " -> ",
                   to));
      }
      double backoff_start = t->simulated_seconds();
      t->AdvanceTime(pause);  // backoff waits past scripted down windows
      spent += pause;
      ins_.retries->Increment();
      ins_.backoff_seconds->Record(pause);
      if (telemetry::Enabled()) {
        telemetry::RecordComplete(telemetry::kCategoryCoordinator,
                                  StrCat("retry ", from, "->", to), "",
                                  backoff_start, pause,
                                  {{"attempt", attempt}});
      }
    }
    double seconds = 0.0;
    last = t->TrySend(from, to, bytes, kind, &seconds);
    spent += seconds;
    if (last.ok() || !IsRetryable(last)) return last;
  }
  // Out of attempts: blame the server end of the link so Execute's failover
  // loop can replan around it (a down endpoint is a certain culprit).
  if (from != kClientNode && t->IsDown(from)) {
    last_failed_server_ = from;
  } else {
    last_failed_server_ = to != kClientNode ? to : from;
  }
  return last;
}

bool Coordinator::ExcludeFailedServer() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (last_failed_server_.empty()) return false;
  // Never exclude the last surviving server.
  if (excluded_.size() + 1 >= cluster_->ServerNames().size()) return false;
  if (!excluded_.insert(last_failed_server_).second) {
    last_failed_server_.clear();
    return false;  // already routed around it once; the failure is elsewhere
  }
  std::string failed = std::move(last_failed_server_);
  last_failed_server_.clear();
  ins_.failovers->Increment();
  if (telemetry::Enabled()) {
    telemetry::RecordComplete(telemetry::kCategoryCoordinator,
                              StrCat("failover away from ", failed), "",
                              cluster_->transport()->simulated_seconds(), 0.0,
                              {});
  }
  // Temps on the dead server are unreachable; drop their memo entries so
  // the re-run recomputes them on a survivor.
  for (auto it = done_.begin(); it != done_.end();) {
    if (excluded_.count(it->second.first) != 0) {
      it = done_.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

Result<std::string> Coordinator::AnyAvailableServer() const {
  for (const std::string& s : cluster_->ServerNames()) {
    if (excluded_.count(s) == 0) return s;
  }
  return Status::Unavailable("no server available");
}

Result<Dataset> Coordinator::ShipAndRun(const std::string& server,
                                        const PlanPtr& fragment) {
  // Serialize the whole expression tree and ship it — the LINQ property.
  // The encoding is negotiated per link: NXB1 blobs for embedded datasets
  // when both ends speak it, the legacy textual form otherwise.
  WireFormat fmt =
      cluster_->transport()->NegotiatedFormat(kClientNode, server);
  std::string wire = SerializePlanWire(*fragment, fmt);
  int64_t est_rows = telemetry::Enabled() ? EstimateFragmentRows(*fragment) : -1;
  return ShipWire(server, wire, FingerprintWire(wire), {}, est_rows);
}

int64_t Coordinator::EstimateFragmentRows(const Plan& fragment) const {
  auto est = EstimateCardinality(fragment, fed_catalog_);
  if (!est.ok()) return -1;
  return static_cast<int64_t>(std::llround(est.ValueOrDie()));
}

Result<Dataset> Coordinator::ShipWire(
    const std::string& server, const std::string& plan_wire, uint64_t fp,
    const std::vector<std::pair<std::string, std::string>>& bindings,
    int64_t est_rows) {
  const bool cache = options_.plan_cache && fp != 0;
  bool have = false;
  if (cache) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    auto it = shipped_.find(server);
    have = it != shipped_.end() && it->second.fps.count(fp) != 0;
  }
  telemetry::SpanGuard span(telemetry::kCategoryCoordinator,
                            StrCat("fragment -> ", server), server);
  Provider* p = cluster_->provider(server);
  if (p == nullptr) return Status::NotFound(StrCat("no server '", server, "'"));
  // Two passes at most: an %NXB1-EXEC reference the provider has evicted
  // comes back as NotFound + kPlanCacheMissMarker, and the second pass
  // re-ships the full plan.
  Result<Dataset> result = Status::NotFound("unsent");
  for (int pass = 0; pass < 2; ++pass) {
    std::string wire;
    if (!cache) {
      wire = plan_wire;  // legacy framing: the bare serialized plan
    } else if (have) {
      wire = BuildWireEnvelope(WireEnvelope::Kind::kExecCached, fp, bindings,
                               std::string_view());
    } else {
      wire = BuildWireEnvelope(WireEnvelope::Kind::kPlanStore, fp, bindings,
                               plan_wire);
    }
    int64_t retries_before = 0;
    if (span.active()) {
      // Context rides inside the plan message, so the receiver's spans
      // stitch under this fragment. The header bytes are metered like any
      // payload.
      wire.insert(0, telemetry::WireHeader(span.trace(), span.id(), server));
      retries_before = ins_.retries->value();
    }
    ins_.fragment_plan_bytes->Record(static_cast<double>(wire.size()));
    NEXUS_RETURN_NOT_OK(SendWithRetry(kClientNode, server,
                                      static_cast<int64_t>(wire.size()),
                                      MessageKind::kPlan));
    ins_.fragments->Increment();
    result = p->ExecuteWire(wire);
    if (span.active()) {
      span.AddCounter("plan_bytes", static_cast<int64_t>(wire.size()));
      int64_t r = ins_.retries->value() - retries_before;
      if (r > 0) span.AddCounter("retries", r);
      if (result.ok()) {
        span.AddCounter("rows", result.ValueOrDie().num_rows());
        span.AddCounter("bytes", result.ValueOrDie().ByteSize());
        // Planner's guess next to the actual; EXPLAIN ANALYZE turns the
        // pair into a per-fragment q-error.
        if (est_rows >= 0) span.AddCounter("est_rows", est_rows);
      }
    }
    if (have && !result.ok() &&
        result.status().code() == StatusCode::kNotFound &&
        result.status().message().find(kPlanCacheMissMarker) !=
            std::string::npos) {
      // The provider evicted this fingerprint: forget it here too and send
      // the whole plan again (one extra round trip, never a wrong answer).
      std::lock_guard<std::recursive_mutex> lock(mu_);
      ShippedSet& s = shipped_[server];
      s.fps.erase(fp);
      for (auto it = s.order.begin(); it != s.order.end(); ++it) {
        if (*it == fp) {
          s.order.erase(it);
          break;
        }
      }
      have = false;
      continue;
    }
    break;
  }
  if (cache && have && result.ok()) {
    // The reference resolved: the plan body never traveled this time.
    ins_.bytes_saved->Add(static_cast<int64_t>(plan_wire.size()));
  }
  if (cache && !have && result.ok()) {
    // The provider parsed and cached this fingerprint; reference it from
    // now on. FIFO-bounded exactly like the provider side.
    std::lock_guard<std::recursive_mutex> lock(mu_);
    ShippedSet& s = shipped_[server];
    if (s.fps.insert(fp).second) {
      s.order.push_back(fp);
      if (s.order.size() > Provider::kPlanCacheCapacity) {
        s.fps.erase(s.order.front());
        s.order.pop_front();
      }
    }
  }
  if (!result.ok()) {
    return result.status().WithContext(StrCat("at server ", server));
  }
  return result;
}

Result<Dataset> Coordinator::SendData(const std::string& from,
                                      const std::string& to,
                                      const Dataset& data) {
  // Real serialization end to end: encoded once in the link's negotiated
  // format, metered at the actual encoded size, decoded on arrival.
  std::string wire =
      SerializeDatasetWire(data, cluster_->transport()->NegotiatedFormat(from, to));
  NEXUS_RETURN_NOT_OK(SendWithRetry(from, to, static_cast<int64_t>(wire.size()),
                                    MessageKind::kData));
  return ParseDatasetWire(wire);
}

Result<Dataset> Coordinator::FetchToClient(const std::string& server,
                                           const std::string& temp) {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, cluster_->provider(server)->catalog()->Get(temp));
  return SendData(server, kClientNode, d);
}

Status Coordinator::TransferTemp(const std::string& from, const std::string& to,
                                 const std::string& temp) {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, cluster_->provider(from)->catalog()->Get(temp));
  // One encode at the source; the relay forwards the same bytes, so both
  // hops meter the identical payload size.
  std::string wire = SerializeDatasetWire(
      d, cluster_->transport()->NegotiatedFormat(from, to));
  int64_t bytes = static_cast<int64_t>(wire.size());
  if (options_.transfer_mode == TransferMode::kDirect) {
    // Desideratum 4: server → server, never touching the client tier.
    NEXUS_RETURN_NOT_OK(SendWithRetry(from, to, bytes, MessageKind::kData));
  } else {
    NEXUS_RETURN_NOT_OK(
        SendWithRetry(from, kClientNode, bytes, MessageKind::kData));
    NEXUS_RETURN_NOT_OK(
        SendWithRetry(kClientNode, to, bytes, MessageKind::kData));
  }
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    temps_.emplace_back(to, temp);  // the copy needs cleanup too
  }
  NEXUS_ASSIGN_OR_RETURN(Dataset arrived, ParseDatasetWire(wire));
  return cluster_->provider(to)->catalog()->Put(temp, std::move(arrived));
}

Result<PlanPtr> Coordinator::BuildFragment(const Plan* node,
                                           const std::string& server,
                                           Placement* placement) {
  // A client-driven loop nested under a fragment: run it now, upload the
  // result to the fragment's server.
  if (placement->client_loops.count(node) != 0) {
    PlanPtr alias(node, [](const Plan*) {});
    NEXUS_ASSIGN_OR_RETURN(Dataset state, RunClientLoop(*alias, placement));
    NEXUS_ASSIGN_OR_RETURN(Dataset arrived,
                           SendData(kClientNode, server, state));
    NEXUS_ASSIGN_OR_RETURN(std::string temp,
                           RegisterTemp(server, std::move(arrived)));
    return Plan::Scan(temp);
  }
  const size_t nc = node->children().size();
  std::vector<std::string> child_servers(nc);
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    for (size_t i = 0; i < nc; ++i) {
      child_servers[i] = placement->assign[node->children()[i].get()];
    }
  }
  const int threads = EffectiveThreads();
  std::vector<PlanPtr> children(nc);
  if (threads == 1) {
    // Exact legacy dispatch: children in order, one at a time. This is the
    // path the seeded-chaos trace invariant is promised on.
    for (size_t i = 0; i < nc; ++i) {
      const Plan* c = node->children()[i].get();
      const std::string& cs = child_servers[i];
      if (cs.empty() || cs == server) {
        NEXUS_ASSIGN_OR_RETURN(children[i], BuildFragment(c, server, placement));
      } else {
        NEXUS_ASSIGN_OR_RETURN(auto produced, ExecToTemp(c, placement));
        NEXUS_RETURN_NOT_OK(TransferTemp(produced.first, server, produced.second));
        children[i] = Plan::Scan(produced.second);
      }
    }
    return node->WithChildren(std::move(children));
  }
  // Morsel-driven sibling dispatch: every child that needs its own fragment
  // (placed on a different server) becomes one task; tasks run concurrently
  // and write pre-assigned child slots, so the rebuilt tree is identical to
  // the sequential one. Errors are reported by lowest child index, making
  // the failure surfaced independent of completion order.
  std::vector<std::function<void()>> tasks;
  std::vector<Status> statuses(nc, Status::OK());
  for (size_t i = 0; i < nc; ++i) {
    const std::string& cs = child_servers[i];
    if (cs.empty() || cs == server) continue;
    const Plan* c = node->children()[i].get();
    tasks.push_back([this, i, c, server, placement, &children, &statuses] {
      statuses[i] = [&]() -> Status {
        NEXUS_ASSIGN_OR_RETURN(auto produced, ExecToTemp(c, placement));
        NEXUS_RETURN_NOT_OK(TransferTemp(produced.first, server, produced.second));
        children[i] = Plan::Scan(produced.second);
        return Status::OK();
      }();
    });
  }
  if (tasks.size() > 1) {
    ins_.parallel_fragments->Add(static_cast<int64_t>(tasks.size()));
  }
  ParallelRun(tasks, threads);
  for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);
  // Same-server children fold into this fragment on the caller's thread
  // (they may fan out recursively themselves).
  for (size_t i = 0; i < nc; ++i) {
    const std::string& cs = child_servers[i];
    if (!cs.empty() && cs != server) continue;
    NEXUS_ASSIGN_OR_RETURN(
        children[i], BuildFragment(node->children()[i].get(), server, placement));
  }
  return node->WithChildren(std::move(children));
}

Result<std::pair<std::string, std::string>> Coordinator::ExecToTemp(
    const Plan* node, Placement* placement) {
  // Failover resume: fragments already materialized on a surviving server
  // are reused instead of recomputed. Only the root placement memoizes —
  // its nodes stay alive for the whole Execute, while client-loop body
  // trees are rebuilt (and freed) every iteration.
  const bool memoize = placement == root_placement_;
  NEXUS_RETURN_NOT_OK(CheckCancelled());
  std::string server;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (memoize) {
      auto it = done_.find(node);
      if (it != done_.end()) return it->second;
    }
    server = placement->assign[node];
  }
  if (server.empty()) {
    NEXUS_ASSIGN_OR_RETURN(server, AnyAvailableServer());
  }
  if (server == kClientNode) {
    // A top-level client loop: run it, keep the result at the client by
    // registering nowhere; callers transfer from "client" — model this by
    // uploading to the first server. (Only reachable when an Iterate is the
    // direct input of another fragment, which BuildFragment handles; this
    // path covers the root case.)
    PlanPtr alias(node, [](const Plan*) {});
    NEXUS_ASSIGN_OR_RETURN(Dataset state, RunClientLoop(*alias, placement));
    NEXUS_ASSIGN_OR_RETURN(std::string target, AnyAvailableServer());
    NEXUS_ASSIGN_OR_RETURN(Dataset arrived,
                           SendData(kClientNode, target, state));
    NEXUS_ASSIGN_OR_RETURN(std::string temp,
                           RegisterTemp(target, std::move(arrived)));
    auto loc = std::make_pair(target, temp);
    if (memoize) {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      done_[node] = loc;
    }
    return loc;
  }
  NEXUS_ASSIGN_OR_RETURN(PlanPtr fragment, BuildFragment(node, server, placement));
  NEXUS_ASSIGN_OR_RETURN(Dataset result, ShipAndRun(server, fragment));
  NEXUS_ASSIGN_OR_RETURN(std::string temp, RegisterTemp(server, std::move(result)));
  auto loc = std::make_pair(server, temp);
  if (memoize) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    done_[node] = loc;
  }
  return loc;
}

namespace {

// Replaces this scope's LoopVar leaves with inline data (does not descend
// into nested Iterate bodies, whose loop variables bind to the inner loop).
PlanPtr ReplaceLoopVars(const PlanPtr& plan, const Dataset& curr,
                        const Dataset& prev) {
  if (plan->kind() == OpKind::kLoopVar) {
    return Plan::Values(plan->As<LoopVarOp>().previous ? prev : curr);
  }
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) {
    children.push_back(ReplaceLoopVars(c, curr, prev));
  }
  return plan->WithChildren(std::move(children));
}

// The serialize-once variant: loop variables become Scans of the per-loop
// binding names, so the template is state-independent and its wire (and
// fingerprint) can be reused every round. Records which variables the tree
// actually references, so unused bindings never travel.
PlanPtr BindLoopVars(const PlanPtr& plan, const std::string& curr_name,
                     const std::string& prev_name, bool* uses_curr,
                     bool* uses_prev) {
  if (plan->kind() == OpKind::kLoopVar) {
    if (plan->As<LoopVarOp>().previous) {
      *uses_prev = true;
      return Plan::Scan(prev_name);
    }
    *uses_curr = true;
    return Plan::Scan(curr_name);
  }
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) {
    children.push_back(
        BindLoopVars(c, curr_name, prev_name, uses_curr, uses_prev));
  }
  return plan->WithChildren(std::move(children));
}

}  // namespace

void Coordinator::ProbeLoopShip(const IterateOp& op, const Dataset& state,
                                LoopShip* ship) {
  ship->probed = true;
  ship->usable = false;
  if (!options_.plan_cache) return;
  // Placement is probed with the current state inlined (the template itself
  // scans binding names no catalog knows about). The fast path engages only
  // when the whole body — and measure — lands on one server; anything that
  // fragments across servers keeps the general per-round machinery.
  auto single_server = [&](const PlanPtr& tree) -> std::string {
    PlanPtr probe = ReplaceLoopVars(tree, state, state);
    Placement p;
    if (!AssignServers(probe, &p).ok()) return std::string();
    if (!p.client_loops.empty()) return std::string();
    std::string server;
    for (const auto& [node, s] : p.assign) {
      if (s.empty()) continue;
      if (s == kClientNode) return std::string();
      if (!server.empty() && server != s) return std::string();
      server = s;
    }
    return server;
  };
  std::string server = single_server(op.body);
  if (server.empty()) return;
  if (op.measure != nullptr && single_server(op.measure) != server) return;
  int64_t id;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    id = loop_seq_++;
  }
  ship->curr_name = StrCat("__nxbind_", id, "_curr");
  ship->prev_name = StrCat("__nxbind_", id, "_prev");
  ship->format = cluster_->transport()->NegotiatedFormat(kClientNode, server);
  PlanPtr body = BindLoopVars(op.body, ship->curr_name, ship->prev_name,
                              &ship->body_curr, &ship->body_prev);
  ship->body_wire = SerializePlanWire(*body, ship->format);
  ship->body_fp = FingerprintWire(ship->body_wire);
  if (op.measure != nullptr) {
    PlanPtr measure = BindLoopVars(op.measure, ship->curr_name,
                                   ship->prev_name, &ship->measure_curr,
                                   &ship->measure_prev);
    ship->measure_wire = SerializePlanWire(*measure, ship->format);
    ship->measure_fp = FingerprintWire(ship->measure_wire);
  }
  ship->server = server;
  ship->usable = true;
}

Result<bool> Coordinator::RunLoopStepShipped(const IterateOp& op,
                                             Dataset* state, LoopShip* ship) {
  // Same message shape as the general path — one plan message out, one data
  // message back, per body and per measure — so seeded chaos schedules see
  // an identical decision sequence; only the byte counts shrink.
  //
  // With NEXUS_INCREMENTAL on, a binding whose new value extends the last
  // one this loop shipped (a prefix in rows — the shape of a growing BFS
  // frontier or an accumulating fixpoint) travels as a %NXB1-DELTA tail
  // against the provider's sticky copy; a provider-side miss (evicted base
  // or an interleaved chain) re-ships the full value, never a wrong answer.
  struct BindUpdate {
    std::string name;
    LoopShip::BoundBase base;  // applied to ship->bound only on success
    bool was_delta = false;
    int64_t delta_rows = 0;
    int64_t bytes_saved = 0;
  };
  auto one_binding = [&](const std::string& name, const Dataset& data,
                         bool allow_delta, std::vector<BindUpdate>* updates)
      -> std::pair<std::string, std::string> {
    const bool inc = incremental::IncrementalEnabled();
    if (inc && allow_delta && data.is_table()) {
      auto it = ship->bound.find(name);
      if (it != ship->bound.end()) {
        const TablePtr& base = it->second.table;
        const int64_t brows = base->num_rows();
        const TablePtr& cur = data.table();
        if (brows <= cur->num_rows() &&
            cur->Slice(0, brows)->Equals(*base)) {
          TablePtr tail = cur->Slice(brows, cur->num_rows() - brows);
          std::string tail_wire =
              SerializeDatasetWire(Dataset(tail), ship->format);
          std::string wire =
              BuildDeltaBindingWire(brows, it->second.chain_fp, tail_wire);
          BindUpdate u;
          u.name = name;
          u.base.table = cur;
          u.base.chain_fp =
              ChainFingerprint(it->second.chain_fp, tail_wire);
          u.base.full_wire_bytes = it->second.full_wire_bytes +
                                   static_cast<int64_t>(tail_wire.size());
          u.was_delta = true;
          u.delta_rows = tail->num_rows();
          u.bytes_saved = std::max<int64_t>(
              0, u.base.full_wire_bytes - static_cast<int64_t>(wire.size()));
          updates->push_back(std::move(u));
          return {name, std::move(wire)};
        }
      }
    }
    std::string wire = SerializeDatasetWire(data, ship->format);
    if (inc && data.is_table()) {
      BindUpdate u;
      u.name = name;
      u.base.table = data.table();
      u.base.chain_fp = ChainFingerprint(0, wire);
      u.base.full_wire_bytes = static_cast<int64_t>(wire.size());
      updates->push_back(std::move(u));
    }
    return {name, std::move(wire)};
  };
  auto ship_bound = [&](const std::string& plan_wire, uint64_t fp,
                        bool use_curr, bool use_prev, const Dataset& curr,
                        const Dataset& prev) -> Result<Dataset> {
    // Two passes at most, mirroring the plan-cache fallback: a delta the
    // provider cannot extend comes back NotFound + kDeltaBindingMissMarker
    // and the second pass sends the full values.
    Result<Dataset> result = Status::NotFound("unsent");
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<BindUpdate> updates;
      std::vector<std::pair<std::string, std::string>> b;
      bool any_delta = false;
      if (use_curr) {
        b.push_back(one_binding(ship->curr_name, curr, pass == 0, &updates));
      }
      if (use_prev) {
        b.push_back(one_binding(ship->prev_name, prev, pass == 0, &updates));
      }
      for (const BindUpdate& u : updates) any_delta |= u.was_delta;
      result = ShipWire(ship->server, plan_wire, fp, b);
      if (!result.ok() && any_delta &&
          result.status().code() == StatusCode::kNotFound &&
          result.status().message().find(kDeltaBindingMissMarker) !=
              std::string::npos) {
        // The provider lost (or never had) the base; forget ours too and
        // re-send everything whole.
        for (const BindUpdate& u : updates) ship->bound.erase(u.name);
        continue;
      }
      if (result.ok()) {
        for (BindUpdate& u : updates) {
          if (u.was_delta) {
            ins_.delta_bindings->Increment();
            ins_.delta_rows_shipped->Add(u.delta_rows);
            ins_.delta_bytes_saved->Add(u.bytes_saved);
          }
          ship->bound[u.name] = std::move(u.base);
        }
      }
      break;
    }
    return result;
  };
  NEXUS_ASSIGN_OR_RETURN(
      Dataset produced,
      ship_bound(ship->body_wire, ship->body_fp, ship->body_curr,
                 ship->body_prev, *state, *state));
  NEXUS_ASSIGN_OR_RETURN(Dataset next,
                         SendData(ship->server, kClientNode, produced));
  ins_.client_loop_iterations->Increment();
  if (op.measure != nullptr) {
    NEXUS_ASSIGN_OR_RETURN(
        Dataset measured_remote,
        ship_bound(ship->measure_wire, ship->measure_fp, ship->measure_curr,
                   ship->measure_prev, next, *state));
    NEXUS_ASSIGN_OR_RETURN(Dataset measured,
                           SendData(ship->server, kClientNode, measured_remote));
    NEXUS_ASSIGN_OR_RETURN(TablePtr mt, measured.AsTable());
    if (mt->num_rows() != 1 || mt->num_columns() != 1) {
      return Status::PlanError("iterate measure must yield one cell");
    }
    Value v = mt->At(0, 0);
    *state = std::move(next);
    return !v.is_null() && v.AsDouble() < op.epsilon;
  }
  *state = std::move(next);
  return false;
}

Result<bool> Coordinator::RunLoopStep(const IterateOp& op, Dataset* state,
                                      LoopShip* ship) {
  if (!ship->probed) ProbeLoopShip(op, *state, ship);
  if (ship->usable) return RunLoopStepShipped(op, state, ship);
  // General path: each round trip re-plans and re-ships the body with the
  // current state inlined — the client-driven pattern the paper wants to
  // avoid. Needed whenever the body fragments across servers (or the plan
  // cache is off).
  PlanPtr body = ReplaceLoopVars(op.body, *state, *state);
  Placement body_placement;
  NEXUS_RETURN_NOT_OK(AssignServers(body, &body_placement).status());
  NEXUS_ASSIGN_OR_RETURN(auto body_loc, ExecToTemp(body.get(), &body_placement));
  NEXUS_ASSIGN_OR_RETURN(Dataset next,
                         FetchToClient(body_loc.first, body_loc.second));
  ins_.client_loop_iterations->Increment();
  if (op.measure != nullptr) {
    PlanPtr measure = ReplaceLoopVars(op.measure, next, *state);
    Placement m_placement;
    NEXUS_RETURN_NOT_OK(AssignServers(measure, &m_placement).status());
    NEXUS_ASSIGN_OR_RETURN(auto m_loc, ExecToTemp(measure.get(), &m_placement));
    NEXUS_ASSIGN_OR_RETURN(Dataset measured,
                           FetchToClient(m_loc.first, m_loc.second));
    NEXUS_ASSIGN_OR_RETURN(TablePtr mt, measured.AsTable());
    if (mt->num_rows() != 1 || mt->num_columns() != 1) {
      return Status::PlanError("iterate measure must yield one cell");
    }
    Value v = mt->At(0, 0);
    *state = std::move(next);
    return !v.is_null() && v.AsDouble() < op.epsilon;
  }
  *state = std::move(next);
  return false;
}

Result<Dataset> Coordinator::RunClientLoop(const Plan& iterate,
                                           Placement* placement) {
  const auto& op = iterate.As<IterateOp>();
  // Init: execute wherever it was placed, fetch to the client.
  NEXUS_ASSIGN_OR_RETURN(auto init_loc,
                         ExecToTemp(iterate.child(0).get(), placement));
  NEXUS_ASSIGN_OR_RETURN(Dataset state,
                         FetchToClient(init_loc.first, init_loc.second));
  // The loop variable is checkpointed at the client every K iterations; a
  // mid-loop server failure rewinds to the last checkpoint (not iteration
  // 0), fails over away from the dead server, and resumes.
  const int64_t k = std::max<int64_t>(1, options_.retry.checkpoint_every);
  Dataset checkpoint = state;
  int64_t checkpoint_iter = 0;
  const size_t max_recoveries = cluster_->ServerNames().size();
  size_t recoveries = 0;
  int64_t iter = 0;
  LoopShip ship;
  while (iter < op.max_iters) {
    NEXUS_RETURN_NOT_OK(CheckCancelled());
    if (iter % k == 0) {
      checkpoint = state;
      checkpoint_iter = iter;
    }
    auto stepped = RunLoopStep(op, &state, &ship);
    if (!stepped.ok()) {
      if (IsRetryable(stepped.status()) && recoveries < max_recoveries &&
          ExcludeFailedServer()) {
        ins_.replans->Increment();  // later iterations replan around the loss
        ins_.checkpoint_restores->Increment();
        if (telemetry::Enabled()) {
          telemetry::RecordComplete(
              telemetry::kCategoryCoordinator, "checkpoint-restore", "",
              cluster_->transport()->simulated_seconds(), 0.0,
              {{"rewind_to_iteration", checkpoint_iter}});
        }
        ++recoveries;
        state = checkpoint;
        iter = checkpoint_iter;
        ship = LoopShip();  // re-probe placement away from the dead server
        continue;
      }
      return stepped.status();
    }
    ++iter;
    if (stepped.ValueOrDie()) break;
  }
  return state;
}

Result<Dataset> Coordinator::Run(const PlanPtr& plan, Placement* placement) {
  const std::string& root = placement->assign[plan.get()];
  if (root == kClientNode) {
    return RunClientLoop(*plan, placement);
  }
  NEXUS_ASSIGN_OR_RETURN(auto loc, ExecToTemp(plan.get(), placement));
  return FetchToClient(loc.first, loc.second);
}

Result<Dataset> Coordinator::Execute(const PlanPtr& plan,
                                     ExecutionMetrics* metrics) {
  WallTimer timer;
  Transport* t = cluster_->transport();
  int64_t msg0 = t->total_messages();
  // Snapshot counters so per-call metrics can be deltas.
  int64_t plan_msgs0 = t->messages_of(MessageKind::kPlan);
  int64_t data_msgs0 = t->messages_of(MessageKind::kData);
  int64_t bytes0 = t->total_bytes();
  int64_t plan_bytes0 = t->bytes_of(MessageKind::kPlan);
  int64_t data_bytes0 = t->bytes_of(MessageKind::kData);
  int64_t through0 = t->bytes_through(kClientNode);
  double sim0 = t->simulated_seconds();
  ParallelStats par0 = GetParallelStats();
  base_ = SnapshotInstruments();
  ins_.threads->Set(static_cast<double>(EffectiveThreads()));
  retry_rng_ = Rng(options_.retry.jitter_seed);
  excluded_.clear();
  last_failed_server_.clear();
  done_.clear();
  loop_seq_ = 0;  // re-running a plan regenerates identical binding names

  // Spans stamp both clocks while tracing is on; the simulated side comes
  // from this cluster's transport.
  std::optional<telemetry::ScopedSimClock> sim_clock;
  if (telemetry::Enabled()) {
    sim_clock.emplace([t] { return t->simulated_seconds(); });
  }
  telemetry::SpanGuard query_span(telemetry::kCategoryCoordinator, "query");
  if (query_span.active()) last_trace_id_ = query_span.trace();

  NEXUS_ASSIGN_OR_RETURN(PlanPtr prepared, Prepare(plan));
  TempGuard temp_guard(this);
  Placement placement;
  {
    telemetry::SpanGuard plan_span(telemetry::kCategoryCoordinator, "plan");
    NEXUS_RETURN_NOT_OK(AssignServers(prepared, &placement).status());
  }
  root_placement_ = &placement;
  auto result = Run(prepared, &placement);
  // Failover: while the failure is transient and a server can be blamed,
  // exclude it, replan, and resume from memoized temps on the survivors.
  // A cancelled query never fails over: kResourceExhausted/kTimeout from
  // the token mean "stop", not "the server is sick".
  while (!result.ok() && IsRetryable(result.status()) &&
         !(options_.cancel != nullptr && options_.cancel->cancelled()) &&
         ExcludeFailedServer()) {
    Placement replanned;
    {
      telemetry::SpanGuard replan_span(telemetry::kCategoryCoordinator,
                                       "replan");
      if (!AssignServers(prepared, &replanned).ok()) break;  // nowhere to go
    }
    ins_.replans->Increment();
    placement = std::move(replanned);
    result = Run(prepared, &placement);
  }
  root_placement_ = nullptr;
  if (query_span.active() && result.ok()) {
    query_span.AddCounter("rows", result.ValueOrDie().num_rows());
    query_span.AddCounter("bytes", result.ValueOrDie().ByteSize());
  }

  if (metrics != nullptr) {
    metrics->messages = t->total_messages() - msg0;
    metrics->plan_messages = t->messages_of(MessageKind::kPlan) - plan_msgs0;
    metrics->data_messages = t->messages_of(MessageKind::kData) - data_msgs0;
    metrics->bytes_total = t->total_bytes() - bytes0;
    metrics->plan_bytes = t->bytes_of(MessageKind::kPlan) - plan_bytes0;
    metrics->data_bytes = t->bytes_of(MessageKind::kData) - data_bytes0;
    metrics->bytes_through_client = t->bytes_through(kClientNode) - through0;
    metrics->simulated_seconds = t->simulated_seconds() - sim0;
    metrics->wall_seconds = timer.ElapsedSeconds();
    FillMetricsFromInstruments(metrics);
    metrics->threads_used = EffectiveThreads();
    metrics->morsels = GetParallelStats().morsels - par0.morsels;
    for (const auto& [node, server] : placement.assign) {
      if (!server.empty()) ++metrics->nodes_per_server[server];
    }
  }
  NEXUS_RETURN_NOT_OK(result.status());
  return result;
}

Result<Dataset> Coordinator::ExecutePerOp(const PlanPtr& plan,
                                          ExecutionMetrics* metrics) {
  WallTimer timer;
  Transport* t = cluster_->transport();
  int64_t msg0 = t->total_messages();
  int64_t plan_msgs0 = t->messages_of(MessageKind::kPlan);
  int64_t data_msgs0 = t->messages_of(MessageKind::kData);
  int64_t bytes0 = t->total_bytes();
  int64_t plan_bytes0 = t->bytes_of(MessageKind::kPlan);
  int64_t data_bytes0 = t->bytes_of(MessageKind::kData);
  int64_t through0 = t->bytes_through(kClientNode);
  double sim0 = t->simulated_seconds();
  ParallelStats par0 = GetParallelStats();
  base_ = SnapshotInstruments();
  ins_.threads->Set(static_cast<double>(EffectiveThreads()));
  retry_rng_ = Rng(options_.retry.jitter_seed);
  excluded_.clear();
  last_failed_server_.clear();
  done_.clear();
  loop_seq_ = 0;

  std::optional<telemetry::ScopedSimClock> sim_clock;
  if (telemetry::Enabled()) {
    sim_clock.emplace([t] { return t->simulated_seconds(); });
  }
  telemetry::SpanGuard query_span(telemetry::kCategoryCoordinator,
                                  "query (per-op)");
  if (query_span.active()) last_trace_id_ = query_span.trace();

  NEXUS_ASSIGN_OR_RETURN(PlanPtr prepared, Prepare(plan));
  TempGuard temp_guard(this);
  Placement placement;
  NEXUS_RETURN_NOT_OK(AssignServers(prepared, &placement).status());

  // Per-op: every operator is its own remote call; each intermediate comes
  // back to the client and is embedded (as Values) in the next call.
  std::function<Result<Dataset>(const PlanPtr&)> step =
      [&](const PlanPtr& node) -> Result<Dataset> {
    if (node->kind() == OpKind::kValues) return node->As<ValuesOp>().data;
    std::vector<PlanPtr> inline_children;
    for (const PlanPtr& c : node->children()) {
      NEXUS_ASSIGN_OR_RETURN(Dataset d, step(c));
      inline_children.push_back(Plan::Values(std::move(d)));
    }
    std::string server = placement.assign[node.get()];
    if (server.empty() || server == kClientNode) {
      NEXUS_ASSIGN_OR_RETURN(server, AnyAvailableServer());
    }
    PlanPtr call = node->WithChildren(std::move(inline_children));
    NEXUS_ASSIGN_OR_RETURN(Dataset result, ShipAndRun(server, call));
    return SendData(server, kClientNode, result);
  };
  auto result = step(prepared);

  if (metrics != nullptr) {
    metrics->messages = t->total_messages() - msg0;
    metrics->plan_messages = t->messages_of(MessageKind::kPlan) - plan_msgs0;
    metrics->data_messages = t->messages_of(MessageKind::kData) - data_msgs0;
    metrics->bytes_total = t->total_bytes() - bytes0;
    metrics->plan_bytes = t->bytes_of(MessageKind::kPlan) - plan_bytes0;
    metrics->data_bytes = t->bytes_of(MessageKind::kData) - data_bytes0;
    metrics->bytes_through_client = t->bytes_through(kClientNode) - through0;
    metrics->simulated_seconds = t->simulated_seconds() - sim0;
    metrics->wall_seconds = timer.ElapsedSeconds();
    FillMetricsFromInstruments(metrics);
    metrics->threads_used = EffectiveThreads();
    metrics->morsels = GetParallelStats().morsels - par0.morsels;
  }
  NEXUS_RETURN_NOT_OK(result.status());
  return result;
}

Result<std::string> Coordinator::ExplainPlacement(const PlanPtr& plan) {
  NEXUS_ASSIGN_OR_RETURN(PlanPtr prepared, Prepare(plan));
  Placement placement;
  NEXUS_RETURN_NOT_OK(AssignServers(prepared, &placement).status());
  std::string out;
  CardinalityEstimator est(&fed_catalog_);
  std::function<void(const PlanPtr&, int)> print = [&](const PlanPtr& node,
                                                       int indent) {
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += node->NodeLabel();
    auto it = placement.assign.find(node.get());
    std::string server =
        it == placement.assign.end() || it->second.empty() ? "inherit" : it->second;
    out += StrCat("  @", server);
    if (placement.client_loops.count(node.get()) != 0) out += " (client-driven)";
    auto stats = est.Estimate(*node);
    if (stats.ok()) {
      out += StrCat("  est_rows=", std::llround(stats.ValueOrDie().rows),
                    " est_bytes=",
                    static_cast<int64_t>(stats.ValueOrDie().Bytes()));
    }
    out += "\n";
    for (const PlanPtr& c : node->children()) print(c, indent + 1);
  };
  print(prepared, 0);
  return out;
}

Result<std::string> Coordinator::ExplainAnalyze(const PlanPtr& plan,
                                                ExecutionMetrics* metrics) {
  // Trace one execution (restoring the caller's tracing state after) and
  // render the span tree. The run is real: faults fire, retries happen, and
  // the report shows them.
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(true);
  ExecutionMetrics local;
  ExecutionMetrics* m = metrics != nullptr ? metrics : &local;
  auto& mreg = telemetry::MetricsRegistry::Global();
  telemetry::Counter* compiles_c = mreg.counter("expr.compile");
  telemetry::Counter* compile_hits_c = mreg.counter("expr.compile_cache_hit");
  telemetry::Counter* lowered_c = mreg.counter("algebra.ops_lowered");
  telemetry::Counter* alg_join_c = mreg.counter("algebra.join");
  telemetry::Counter* alg_union_c = mreg.counter("algebra.union");
  telemetry::Counter* spill_ops_c = mreg.counter("spill.ops");
  telemetry::Counter* spill_parts_c = mreg.counter("spill.partitions");
  telemetry::Counter* spill_bytes_c = mreg.counter("spill.bytes_written");
  telemetry::Counter* ivm_refresh_c = mreg.counter("incremental.refreshes");
  telemetry::Counter* ivm_fallback_c = mreg.counter("incremental.fallbacks");
  telemetry::Counter* ivm_rows_c = mreg.counter("incremental.delta_rows");
  const int64_t compiles0 = compiles_c->value();
  const int64_t compile_hits0 = compile_hits_c->value();
  const int64_t lowered0 = lowered_c->value();
  const int64_t alg_join0 = alg_join_c->value();
  const int64_t alg_union0 = alg_union_c->value();
  const int64_t spill_ops0 = spill_ops_c->value();
  const int64_t spill_parts0 = spill_parts_c->value();
  const int64_t spill_bytes0 = spill_bytes_c->value();
  const int64_t ivm_refresh0 = ivm_refresh_c->value();
  const int64_t ivm_fallback0 = ivm_fallback_c->value();
  const int64_t ivm_rows0 = ivm_rows_c->value();
  auto result = Execute(plan, m);
  const int64_t compiles = compiles_c->value() - compiles0;
  const int64_t compile_hits = compile_hits_c->value() - compile_hits0;
  const int64_t lowered = lowered_c->value() - lowered0;
  const int64_t alg_joins = alg_join_c->value() - alg_join0;
  const int64_t alg_unions = alg_union_c->value() - alg_union0;
  const int64_t spill_ops = spill_ops_c->value() - spill_ops0;
  const int64_t spill_parts = spill_parts_c->value() - spill_parts0;
  const int64_t spill_bytes = spill_bytes_c->value() - spill_bytes0;
  const int64_t ivm_refreshes = ivm_refresh_c->value() - ivm_refresh0;
  const int64_t ivm_fallbacks = ivm_fallback_c->value() - ivm_fallback0;
  const int64_t ivm_rows = ivm_rows_c->value() - ivm_rows0;
  std::string report = telemetry::ExplainAnalyze(telemetry::Spans(),
                                                 last_trace_id_);
  telemetry::SetEnabled(was_enabled);
  NEXUS_RETURN_NOT_OK(result.status());
  // Wire-format summary: how much of the plan traffic the fingerprint cache
  // elided this execution.
  if (m->plan_cache_hits + m->plan_cache_misses > 0) {
    report += StrCat(
        "wire: plan-cache ", m->plan_cache_hits, " hit / ",
        m->plan_cache_misses, " miss, saved ",
        FormatBytes(static_cast<uint64_t>(m->wire_bytes_saved)), " (",
        WireFormatName(ProcessWireFormat()), " wire)\n");
  }
  // Expression-compilation summary: a warm program cache shows 0 compiled
  // with hits > 0 on re-execution of a cached plan.
  if (compiles + compile_hits > 0) {
    report += StrCat("expr: ", compiles, " compiled / ", compile_hits,
                     " program-cache hits\n");
  }
  // Semi-ring lowering summary: operators the engines routed through the
  // shared algebra kernels this execution (desideratum: one algebra).
  if (lowered + alg_joins + alg_unions > 0) {
    report += StrCat("algebra: ", lowered, " ops lowered (", alg_joins,
                     " join⊗ / ", alg_unions, " union⊕ kernel calls)\n");
  }
  // Out-of-core summary: Grace partitions written by operators whose
  // working set crossed the budget this execution.
  if (spill_ops > 0) {
    report += StrCat("spill: ", spill_parts, " partitions / ",
                     FormatBytes(static_cast<uint64_t>(spill_bytes)),
                     " across ", spill_ops, " operators\n");
  }
  // Incremental summary: loop bindings that traveled as append-tails, and
  // view refreshes served from retained operator state (NEXUS_INCREMENTAL).
  if (m->delta_bindings + ivm_refreshes > 0) {
    report += StrCat(
        "incremental: ", m->delta_bindings, " delta bindings (",
        m->delta_rows_shipped, " rows, saved ",
        FormatBytes(static_cast<uint64_t>(m->delta_bytes_saved)), "); ",
        ivm_refreshes, " view refreshes (", ivm_rows, " Δ rows, ",
        ivm_fallbacks, " fallbacks)\n");
  }
  return report;
}

}  // namespace nexus
