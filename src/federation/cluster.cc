#include "federation/cluster.h"

#include "common/str_util.h"
#include "core/serialize.h"

namespace nexus {

Status Cluster::AddServer(const std::string& name, ProviderPtr provider) {
  if (name.empty() || name == kClientNode) {
    return Status::InvalidArgument("invalid server name");
  }
  for (const Server& s : servers_) {
    if (s.name == name) {
      return Status::AlreadyExists(StrCat("server '", name, "' already registered"));
    }
  }
  if (provider == nullptr) {
    return Status::InvalidArgument("null provider");
  }
  // The provider's wire capability becomes part of the transport's
  // negotiation table: links to a text-only peer fall back to the textual
  // format.
  transport_.SetNodeBinaryCapable(name, provider->AcceptsBinaryWire());
  servers_.push_back(Server{name, std::move(provider)});
  return Status::OK();
}

Status Cluster::PutData(const std::string& server, const std::string& table,
                        Dataset data) {
  Provider* p = provider(server);
  if (p == nullptr) {
    return Status::NotFound(StrCat("no server named '", server, "'"));
  }
  return p->catalog()->Put(table, std::move(data));
}

Status Cluster::Replicate(const std::string& table, const std::string& to) {
  Provider* dst = provider(to);
  if (dst == nullptr) {
    return Status::NotFound(StrCat("no server named '", to, "'"));
  }
  if (dst->catalog()->Contains(table)) return Status::OK();
  std::vector<std::string> holders = HoldersOf(table);
  if (holders.empty()) {
    return Status::NotFound(StrCat("no server holds '", table, "'"));
  }
  NEXUS_ASSIGN_OR_RETURN(Dataset d,
                         provider(holders[0])->catalog()->Get(table));
  // Real serialization end to end: the copy is encoded in the negotiated
  // link format, metered at its actual wire size, and decoded on arrival.
  std::string wire = SerializeDatasetWire(
      d, transport_.NegotiatedFormat(holders[0], to));
  transport_.Send(holders[0], to, static_cast<int64_t>(wire.size()),
                  MessageKind::kData);
  NEXUS_ASSIGN_OR_RETURN(Dataset copy, ParseDatasetWire(wire));
  return dst->catalog()->Put(table, std::move(copy));
}

Provider* Cluster::provider(const std::string& server) {
  for (Server& s : servers_) {
    if (s.name == server) return s.provider.get();
  }
  return nullptr;
}

const Provider* Cluster::provider(const std::string& server) const {
  for (const Server& s : servers_) {
    if (s.name == server) return s.provider.get();
  }
  return nullptr;
}

std::vector<std::string> Cluster::ServerNames() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const Server& s : servers_) out.push_back(s.name);
  return out;
}

std::vector<std::string> Cluster::HoldersOf(const std::string& table) const {
  std::vector<std::string> out;
  for (const Server& s : servers_) {
    if (s.provider->catalog()->Contains(table)) out.push_back(s.name);
  }
  return out;
}

}  // namespace nexus
