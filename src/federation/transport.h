// Simulated network transport between the client tier and servers.
//
// The paper's desideratum 4 and its LINQ chattiness claim are statements
// about *where bytes flow and how many round trips occur*. This transport
// meters every message (endpoint pair, payload size, purpose) and charges a
// configurable latency + bandwidth cost, so experiments report exact message
// counts, per-link byte totals, bytes routed through the client, and a
// simulated wall-clock under realistic network parameters.
#ifndef NEXUS_FEDERATION_TRANSPORT_H_
#define NEXUS_FEDERATION_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nexus {

/// Name of the client tier endpoint.
inline const char kClientNode[] = "client";

struct TransportOptions {
  /// One-way message latency (seconds). Default 1 ms (same-datacenter RPC).
  double latency_seconds = 0.001;
  /// Link bandwidth (bytes/second). Default 1 Gbit/s.
  double bandwidth_bytes_per_second = 125e6;
};

/// Why a message was sent (for reporting).
enum class MessageKind { kPlan, kData, kControl };

struct MessageRecord {
  std::string from;
  std::string to;
  int64_t bytes = 0;
  MessageKind kind = MessageKind::kControl;
};

struct LinkStats {
  int64_t messages = 0;
  int64_t bytes = 0;
};

/// Records and prices all traffic. Not thread-safe (single-client model).
class Transport {
 public:
  explicit Transport(TransportOptions options = {}) : options_(options) {}

  /// Records one message and returns the simulated seconds it took.
  double Send(const std::string& from, const std::string& to, int64_t bytes,
              MessageKind kind);

  int64_t total_messages() const { return static_cast<int64_t>(log_.size()); }
  int64_t total_bytes() const;
  int64_t messages_of(MessageKind kind) const;
  int64_t bytes_of(MessageKind kind) const;

  /// Bytes that entered or left the named endpoint ("client" for the
  /// through-the-application measure of desideratum 4).
  int64_t bytes_through(const std::string& node) const;
  int64_t messages_through(const std::string& node) const;

  /// Total simulated seconds across all messages (serialized link model).
  double simulated_seconds() const { return simulated_seconds_; }

  /// Per ordered endpoint pair.
  std::map<std::pair<std::string, std::string>, LinkStats> PerLink() const;

  const std::vector<MessageRecord>& log() const { return log_; }

  void Reset();

 private:
  TransportOptions options_;
  std::vector<MessageRecord> log_;
  double simulated_seconds_ = 0.0;
};

}  // namespace nexus

#endif  // NEXUS_FEDERATION_TRANSPORT_H_
