// Simulated network transport between the client tier and servers.
//
// The paper's desideratum 4 and its LINQ chattiness claim are statements
// about *where bytes flow and how many round trips occur*. This transport
// meters every message (endpoint pair, payload size, purpose) and charges a
// configurable latency + bandwidth cost, so experiments report exact message
// counts, per-link byte totals, bytes routed through the client, and a
// simulated wall-clock under realistic network parameters.
//
// Real federations also lose messages, stall, and drop servers. The
// transport therefore carries a deterministic, seeded fault model
// (FaultOptions): per-message drops, latency spikes, partitioned links, and
// scripted server-down windows expressed in simulated time. Fault-aware
// callers use TrySend, which returns kTimeout/kUnavailable when a fault
// fires; Send stays the raw infallible meter. With faults disabled the two
// paths are byte-for-byte identical.
#ifndef NEXUS_FEDERATION_TRANSPORT_H_
#define NEXUS_FEDERATION_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/wire_format.h"

namespace nexus {

/// Name of the client tier endpoint.
inline const char kClientNode[] = "client";

struct TransportOptions {
  /// One-way message latency (seconds). Default 1 ms (same-datacenter RPC).
  double latency_seconds = 0.001;
  /// Link bandwidth (bytes/second). Default 1 Gbit/s.
  double bandwidth_bytes_per_second = 125e6;
};

/// A scripted outage: `server` is unreachable while the simulated clock is
/// inside [start_seconds, end_seconds).
struct DownWindow {
  std::string server;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Deterministic fault-injection knobs. Everything is driven by a seeded
/// RNG plus the simulated clock, so a given (options, traffic) pair always
/// yields the same fault trace.
struct FaultOptions {
  /// Master switch. When false, TrySend is exactly Send (zero overhead).
  bool enabled = false;
  /// Probability that any one message is lost in flight (kTimeout).
  double drop_probability = 0.0;
  /// Probability that a delivered message suffers an extra latency spike.
  double latency_spike_probability = 0.0;
  /// Extra one-way delay charged when a spike fires.
  double latency_spike_seconds = 0.05;
  /// Seed for the fault RNG (drops and spikes).
  uint64_t seed = 0x5EEDF417ULL;
  /// Scripted server outages in simulated time.
  std::vector<DownWindow> down_windows;
  /// Unordered endpoint pairs that cannot exchange messages (kUnavailable).
  std::vector<std::pair<std::string, std::string>> partitioned_links;
};

/// Why a message was sent (for reporting).
enum class MessageKind { kPlan, kData, kControl };

struct MessageRecord {
  std::string from;
  std::string to;
  int64_t bytes = 0;
  MessageKind kind = MessageKind::kControl;
  /// True when the fault model failed this attempt (bytes still hit the
  /// wire and are metered — lost traffic is the overhead of faults).
  bool failed = false;
};

/// One injected fault, stamped with the simulated time it fired.
struct FaultEvent {
  double time = 0.0;
  std::string from;
  std::string to;
  std::string what;  // "drop" | "partition" | "down:<server>" | "spike"

  std::string ToString() const;
};

struct LinkStats {
  int64_t messages = 0;
  int64_t bytes = 0;
};

/// Records and prices all traffic. Thread-safe: the multi-tenant service
/// runs many coordinators against one shared transport, so every mutating
/// or aggregating method takes an internal (recursive) lock. The simulated
/// clock remains a single global sequence — concurrent sends serialize on
/// the lock in arrival order, which models one shared wire.
///
/// The reference-returning accessors (`log()`, `fault_log()`,
/// `fault_options()`) are snapshots for single-threaded inspection; do not
/// call them while other threads are sending.
class Transport {
 public:
  explicit Transport(TransportOptions options = {}) : options_(options) {}

  /// Records one message and returns the simulated seconds it took.
  /// Infallible raw meter: the fault model does not apply here.
  double Send(const std::string& from, const std::string& to, int64_t bytes,
              MessageKind kind);

  /// Fault-aware send. With faults disabled, identical to Send. With faults
  /// enabled, may return kUnavailable (partitioned link, server inside a
  /// down window) or kTimeout (message dropped). Failed attempts are still
  /// metered (flagged `failed`) and charged simulated time — a lost message
  /// costs real network. `*seconds`, when given, receives the time charged
  /// whether or not the send succeeded.
  Status TrySend(const std::string& from, const std::string& to, int64_t bytes,
                 MessageKind kind, double* seconds = nullptr);

  /// Installs (or replaces) the fault model and reseeds its RNG, so two
  /// transports configured identically produce identical fault traces.
  void SetFaultOptions(FaultOptions faults);
  const FaultOptions& fault_options() const { return faults_; }

  /// Registers whether `node` accepts the binary wire format. Unregistered
  /// endpoints (including the client tier) are assumed binary-capable;
  /// legacy peers register false at AddServer time.
  void SetNodeBinaryCapable(const std::string& node, bool accepts_binary);

  /// The format both endpoints of a link speak: binary unless either peer
  /// only accepts text or the process is pinned to text (NEXUS_WIRE=text).
  WireFormat NegotiatedFormat(const std::string& a, const std::string& b) const;

  /// Advances the simulated clock without sending anything — retry backoff
  /// pauses charge their wait here so scripted down windows eventually pass.
  void AdvanceTime(double seconds) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    simulated_seconds_ += seconds;
  }

  /// True when `server` is inside a scripted down window at the current
  /// simulated time.
  bool IsDown(const std::string& server) const;

  /// True when the (unordered) pair is currently partitioned.
  bool IsPartitioned(const std::string& a, const std::string& b) const;

  /// Dynamic partition control (in addition to FaultOptions's script).
  void PartitionLink(const std::string& a, const std::string& b);
  void HealLink(const std::string& a, const std::string& b);

  int64_t total_messages() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return static_cast<int64_t>(log_.size());
  }
  int64_t total_bytes() const;
  int64_t messages_of(MessageKind kind) const;
  int64_t bytes_of(MessageKind kind) const;

  /// Failed-attempt accounting (subset of the totals above).
  int64_t failed_messages() const;
  int64_t failed_bytes() const;

  /// Bytes that entered or left the named endpoint ("client" for the
  /// through-the-application measure of desideratum 4).
  int64_t bytes_through(const std::string& node) const;
  int64_t messages_through(const std::string& node) const;

  /// Total simulated seconds across all messages (serialized link model).
  double simulated_seconds() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return simulated_seconds_;
  }

  /// Per ordered endpoint pair.
  std::map<std::pair<std::string, std::string>, LinkStats> PerLink() const;

  const std::vector<MessageRecord>& log() const { return log_; }

  /// Every fault injected so far, in firing order (the chaos trace).
  const std::vector<FaultEvent>& fault_log() const { return fault_log_; }
  int64_t faults_injected() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return static_cast<int64_t>(fault_log_.size());
  }

  /// Clears traffic logs, the fault trace, and the simulated clock (down
  /// windows therefore re-apply), and reseeds the fault RNG. Fault options
  /// and dynamic partitions are kept.
  void Reset();

 private:
  static std::pair<std::string, std::string> NormalizedLink(
      const std::string& a, const std::string& b);

  /// Recursive: TrySend holds the lock across its internal Send / IsDown /
  /// IsPartitioned calls so one logical attempt is atomic on the wire.
  mutable std::recursive_mutex mu_;
  TransportOptions options_;
  FaultOptions faults_;
  std::map<std::string, bool> binary_capable_;
  Rng fault_rng_{0x5EEDF417ULL};
  std::set<std::pair<std::string, std::string>> partitions_;
  std::vector<MessageRecord> log_;
  std::vector<FaultEvent> fault_log_;
  double simulated_seconds_ = 0.0;
};

}  // namespace nexus

#endif  // NEXUS_FEDERATION_TRANSPORT_H_
