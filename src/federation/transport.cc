#include "federation/transport.h"

namespace nexus {

double Transport::Send(const std::string& from, const std::string& to,
                       int64_t bytes, MessageKind kind) {
  log_.push_back(MessageRecord{from, to, bytes, kind});
  double seconds = options_.latency_seconds +
                   static_cast<double>(bytes) / options_.bandwidth_bytes_per_second;
  simulated_seconds_ += seconds;
  return seconds;
}

int64_t Transport::total_bytes() const {
  int64_t sum = 0;
  for (const MessageRecord& m : log_) sum += m.bytes;
  return sum;
}

int64_t Transport::messages_of(MessageKind kind) const {
  int64_t n = 0;
  for (const MessageRecord& m : log_) n += (m.kind == kind);
  return n;
}

int64_t Transport::bytes_of(MessageKind kind) const {
  int64_t sum = 0;
  for (const MessageRecord& m : log_) {
    if (m.kind == kind) sum += m.bytes;
  }
  return sum;
}

int64_t Transport::bytes_through(const std::string& node) const {
  int64_t sum = 0;
  for (const MessageRecord& m : log_) {
    if (m.from == node || m.to == node) sum += m.bytes;
  }
  return sum;
}

int64_t Transport::messages_through(const std::string& node) const {
  int64_t n = 0;
  for (const MessageRecord& m : log_) {
    if (m.from == node || m.to == node) ++n;
  }
  return n;
}

std::map<std::pair<std::string, std::string>, LinkStats> Transport::PerLink()
    const {
  std::map<std::pair<std::string, std::string>, LinkStats> out;
  for (const MessageRecord& m : log_) {
    LinkStats& s = out[{m.from, m.to}];
    ++s.messages;
    s.bytes += m.bytes;
  }
  return out;
}

void Transport::Reset() {
  log_.clear();
  simulated_seconds_ = 0.0;
}

}  // namespace nexus
