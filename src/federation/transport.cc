#include "federation/transport.h"

#include "common/str_util.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace nexus {

namespace {

const char* KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPlan:
      return "plan";
    case MessageKind::kData:
      return "data";
    case MessageKind::kControl:
      return "control";
  }
  return "?";
}

/// Registry instruments, resolved once (pointers are stable forever).
/// Always on: these are cumulative process counters; per-call accounting
/// still deltas the transport's own log.
struct TransportInstruments {
  telemetry::Counter* messages;
  telemetry::Counter* bytes;
  telemetry::Counter* failed_messages;
  telemetry::Counter* faults;
  telemetry::Histogram* message_bytes;

  static const TransportInstruments& Get() {
    static const TransportInstruments in{
        telemetry::MetricsRegistry::Global().counter("transport.messages"),
        telemetry::MetricsRegistry::Global().counter("transport.bytes"),
        telemetry::MetricsRegistry::Global().counter("transport.failed_messages"),
        telemetry::MetricsRegistry::Global().counter("transport.faults"),
        telemetry::MetricsRegistry::Global().histogram("transport.message_bytes"),
    };
    return in;
  }
};

/// One trace span per wire message, on the receiving server's lane.
void TraceMessage(const std::string& from, const std::string& to, int64_t bytes,
                  MessageKind kind, bool failed, double sim_start,
                  double sim_dur) {
  if (!telemetry::Enabled()) return;
  telemetry::RecordComplete(
      telemetry::kCategoryTransport, StrCat(KindName(kind), " ", from, "->", to),
      to == kClientNode ? "" : to, sim_start, sim_dur,
      {{"bytes", bytes}, {"failed", failed ? 1 : 0}});
}

}  // namespace

std::string FaultEvent::ToString() const {
  return StrCat(what, " ", from, "->", to, " @", FormatDouble(time * 1e3, 3),
                "ms");
}

double Transport::Send(const std::string& from, const std::string& to,
                       int64_t bytes, MessageKind kind) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  log_.push_back(MessageRecord{from, to, bytes, kind, /*failed=*/false});
  double seconds = options_.latency_seconds +
                   static_cast<double>(bytes) / options_.bandwidth_bytes_per_second;
  double start = simulated_seconds_;
  simulated_seconds_ += seconds;
  const TransportInstruments& in = TransportInstruments::Get();
  in.messages->Increment();
  in.bytes->Add(bytes);
  in.message_bytes->Record(static_cast<double>(bytes));
  TraceMessage(from, to, bytes, kind, /*failed=*/false, start, seconds);
  return seconds;
}

Status Transport::TrySend(const std::string& from, const std::string& to,
                          int64_t bytes, MessageKind kind, double* seconds) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!faults_.enabled) {
    double s = Send(from, to, bytes, kind);
    if (seconds != nullptr) *seconds = s;
    return Status::OK();
  }

  const TransportInstruments& in = TransportInstruments::Get();

  // A failed attempt charges one latency (the sender waited that long to
  // learn nothing came back) and is logged as wasted traffic.
  auto fail = [&](const std::string& what, Status status) {
    fault_log_.push_back(FaultEvent{simulated_seconds_, from, to, what});
    log_.push_back(MessageRecord{from, to, bytes, kind, /*failed=*/true});
    double start = simulated_seconds_;
    simulated_seconds_ += options_.latency_seconds;
    if (seconds != nullptr) *seconds = options_.latency_seconds;
    in.messages->Increment();
    in.bytes->Add(bytes);
    in.failed_messages->Increment();
    in.faults->Increment();
    TraceMessage(from, to, bytes, kind, /*failed=*/true, start,
                 options_.latency_seconds);
    return status;
  };

  if (IsPartitioned(from, to)) {
    return fail("partition", Status::Unavailable(StrCat(
                                 "link ", from, " -> ", to, " is partitioned")));
  }
  if (IsDown(from)) {
    return fail(StrCat("down:", from),
                Status::Unavailable(StrCat("server '", from, "' is down")));
  }
  if (IsDown(to)) {
    return fail(StrCat("down:", to),
                Status::Unavailable(StrCat("server '", to, "' is down")));
  }
  if (faults_.drop_probability > 0.0 &&
      fault_rng_.NextBool(faults_.drop_probability)) {
    // The payload left the sender before vanishing: charge the full cost.
    fault_log_.push_back(FaultEvent{simulated_seconds_, from, to, "drop"});
    log_.push_back(MessageRecord{from, to, bytes, kind, /*failed=*/true});
    double start = simulated_seconds_;
    double s = options_.latency_seconds +
               static_cast<double>(bytes) / options_.bandwidth_bytes_per_second;
    simulated_seconds_ += s;
    if (seconds != nullptr) *seconds = s;
    in.messages->Increment();
    in.bytes->Add(bytes);
    in.failed_messages->Increment();
    in.faults->Increment();
    TraceMessage(from, to, bytes, kind, /*failed=*/true, start, s);
    return Status::Timeout(
        StrCat("message ", from, " -> ", to, " lost in flight"));
  }

  double spike = 0.0;
  if (faults_.latency_spike_probability > 0.0 &&
      fault_rng_.NextBool(faults_.latency_spike_probability)) {
    fault_log_.push_back(FaultEvent{simulated_seconds_, from, to, "spike"});
    in.faults->Increment();
    spike = faults_.latency_spike_seconds;
  }
  double s = Send(from, to, bytes, kind) + spike;
  simulated_seconds_ += spike;
  if (seconds != nullptr) *seconds = s;
  return Status::OK();
}

void Transport::SetNodeBinaryCapable(const std::string& node,
                                     bool accepts_binary) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  binary_capable_[node] = accepts_binary;
}

WireFormat Transport::NegotiatedFormat(const std::string& a,
                                       const std::string& b) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (ProcessWireFormat() == WireFormat::kText) return WireFormat::kText;
  auto capable = [this](const std::string& n) {
    auto it = binary_capable_.find(n);
    return it == binary_capable_.end() || it->second;
  };
  return capable(a) && capable(b) ? WireFormat::kBinary : WireFormat::kText;
}

void Transport::SetFaultOptions(FaultOptions faults) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  faults_ = std::move(faults);
  fault_rng_ = Rng(faults_.seed);
  partitions_.clear();
  for (const auto& [a, b] : faults_.partitioned_links) {
    partitions_.insert(NormalizedLink(a, b));
  }
}

bool Transport::IsDown(const std::string& server) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!faults_.enabled || server == kClientNode) return false;
  for (const DownWindow& w : faults_.down_windows) {
    if (w.server == server && simulated_seconds_ >= w.start_seconds &&
        simulated_seconds_ < w.end_seconds) {
      return true;
    }
  }
  return false;
}

std::pair<std::string, std::string> Transport::NormalizedLink(
    const std::string& a, const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

bool Transport::IsPartitioned(const std::string& a, const std::string& b) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!faults_.enabled) return false;
  return partitions_.count(NormalizedLink(a, b)) != 0;
}

void Transport::PartitionLink(const std::string& a, const std::string& b) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  partitions_.insert(NormalizedLink(a, b));
}

void Transport::HealLink(const std::string& a, const std::string& b) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  partitions_.erase(NormalizedLink(a, b));
}

int64_t Transport::total_bytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t sum = 0;
  for (const MessageRecord& m : log_) sum += m.bytes;
  return sum;
}

int64_t Transport::messages_of(MessageKind kind) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t n = 0;
  for (const MessageRecord& m : log_) n += (m.kind == kind);
  return n;
}

int64_t Transport::bytes_of(MessageKind kind) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t sum = 0;
  for (const MessageRecord& m : log_) {
    if (m.kind == kind) sum += m.bytes;
  }
  return sum;
}

int64_t Transport::failed_messages() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t n = 0;
  for (const MessageRecord& m : log_) n += m.failed;
  return n;
}

int64_t Transport::failed_bytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t sum = 0;
  for (const MessageRecord& m : log_) {
    if (m.failed) sum += m.bytes;
  }
  return sum;
}

int64_t Transport::bytes_through(const std::string& node) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t sum = 0;
  for (const MessageRecord& m : log_) {
    if (m.from == node || m.to == node) sum += m.bytes;
  }
  return sum;
}

int64_t Transport::messages_through(const std::string& node) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t n = 0;
  for (const MessageRecord& m : log_) {
    if (m.from == node || m.to == node) ++n;
  }
  return n;
}

std::map<std::pair<std::string, std::string>, LinkStats> Transport::PerLink()
    const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::map<std::pair<std::string, std::string>, LinkStats> out;
  for (const MessageRecord& m : log_) {
    LinkStats& s = out[{m.from, m.to}];
    ++s.messages;
    s.bytes += m.bytes;
  }
  return out;
}

void Transport::Reset() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  log_.clear();
  fault_log_.clear();
  simulated_seconds_ = 0.0;
  fault_rng_ = Rng(faults_.seed);
}

}  // namespace nexus
