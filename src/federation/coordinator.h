// Coordinator: the client-tier planner and orchestrator for multi-server
// queries — the component that realizes the paper's vision sentence: "an
// algebra query that spans servers should be realizable as a plan where
// intermediate results pass directly between servers, rather than being
// routed through the application or a middle tier."
//
// Responsibilities:
//   - capability-based placement: each node goes to a server whose provider
//     claims it, preferring specialists for intent ops and data locality
//     otherwise;
//   - fragmentation: maximal same-server subtrees become one shipped
//     expression tree each (the LINQ property);
//   - transfers: cross-server edges move intermediates either directly
//     (server → server) or relayed through the client, per options —
//     experiment E4's knob;
//   - control iteration: an Iterate claimed whole by one provider ships as
//     a single fragment (provider-side); otherwise the coordinator drives
//     the loop from the client — experiment E6's knob;
//   - a deliberately chatty per-operator execution mode, the baseline the
//     paper's expression-tree-shipping claim is measured against (E5).
#ifndef NEXUS_FEDERATION_COORDINATOR_H_
#define NEXUS_FEDERATION_COORDINATOR_H_

#include <map>
#include <set>
#include <string>

#include "federation/cluster.h"
#include "optimizer/optimizer.h"

namespace nexus {

struct CoordinatorOptions {
  /// How cross-server intermediates travel (E4).
  TransferMode transfer_mode = TransferMode::kDirect;
  /// Ship whole Iterate nodes to a capable provider when possible (E6).
  bool provider_side_iteration = true;
  /// Route intent ops to specialist providers even when data is elsewhere.
  bool prefer_specialist = true;
  /// Run the logical optimizer before planning.
  bool optimize = true;
  OptimizerOptions optimizer;
};

/// Per-execution accounting, sourced from the cluster transport plus the
/// coordinator's own counters.
struct ExecutionMetrics {
  int64_t messages = 0;
  int64_t plan_messages = 0;
  int64_t data_messages = 0;
  int64_t bytes_total = 0;
  int64_t plan_bytes = 0;
  int64_t data_bytes = 0;
  int64_t bytes_through_client = 0;
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;
  int64_t fragments = 0;
  int64_t client_loop_iterations = 0;
  std::map<std::string, int64_t> nodes_per_server;

  std::string ToString() const;
};

/// Catalog view spanning every server in a cluster (schema resolution for
/// planning; first registered holder wins).
class FederatedCatalog : public Catalog {
 public:
  explicit FederatedCatalog(const Cluster* cluster) : cluster_(cluster) {}
  Result<SchemaPtr> GetSchema(const std::string& name) const override;
  bool Contains(const std::string& name) const override;

 private:
  const Cluster* cluster_;
};

class Coordinator {
 public:
  explicit Coordinator(Cluster* cluster, CoordinatorOptions options = {})
      : cluster_(cluster), options_(options), fed_catalog_(cluster) {}

  /// Plans and executes `plan` across the cluster; the result is delivered
  /// to the client tier (the paper: "the result of a query is a collection
  /// in the client environment"). Metrics (optional) cover this call only.
  Result<Dataset> Execute(const PlanPtr& plan, ExecutionMetrics* metrics = nullptr);

  /// E5 baseline: one remote call per operator, every intermediate routed
  /// back to the client and re-uploaded for the next call.
  Result<Dataset> ExecutePerOp(const PlanPtr& plan,
                               ExecutionMetrics* metrics = nullptr);

  /// Renders the placement decision for every node ("node @ server").
  Result<std::string> ExplainPlacement(const PlanPtr& plan);

  const CoordinatorOptions& options() const { return options_; }
  void set_options(const CoordinatorOptions& o) { options_ = o; }

 private:
  struct Placement {
    std::map<const Plan*, std::string> assign;  // "" = flexible
    std::set<const Plan*> client_loops;         // Iterates driven client-side
  };

  Result<PlanPtr> Prepare(const PlanPtr& plan);
  Result<std::string> AssignServers(const PlanPtr& plan, Placement* placement);
  /// Rough output-size estimate (bytes) used as the ship-less tiebreak in
  /// placement: prefer hosting an operator where its bulkier input lives.
  int64_t EstimateBytes(const Plan& plan) const;
  bool ServerSuits(const std::string& server, const Plan& node,
                   const std::vector<SchemaPtr>& child_schemas) const;
  int SpecRank(OpKind kind, const std::string& server) const;

  // Execution machinery (all counters flow through the transport).
  Result<Dataset> Run(const PlanPtr& plan, Placement* placement);
  Result<std::pair<std::string, std::string>> ExecToTemp(const Plan* node,
                                                         Placement* placement);
  Result<PlanPtr> BuildFragment(const Plan* node, const std::string& server,
                                Placement* placement);
  Result<Dataset> ShipAndRun(const std::string& server, const PlanPtr& fragment);
  Result<Dataset> FetchToClient(const std::string& server, const std::string& temp);
  Result<std::string> RegisterTemp(const std::string& server, Dataset data);
  Status TransferTemp(const std::string& from, const std::string& to,
                      const std::string& temp);
  Result<Dataset> RunClientLoop(const Plan& iterate, Placement* placement);
  void DropTemps();

  Cluster* cluster_;
  CoordinatorOptions options_;
  FederatedCatalog fed_catalog_;
  int64_t temp_counter_ = 0;
  int64_t fragments_ = 0;
  int64_t client_loop_iterations_ = 0;
  std::vector<std::pair<std::string, std::string>> temps_;  // (server, name)
};

}  // namespace nexus

#endif  // NEXUS_FEDERATION_COORDINATOR_H_
