// Coordinator: the client-tier planner and orchestrator for multi-server
// queries — the component that realizes the paper's vision sentence: "an
// algebra query that spans servers should be realizable as a plan where
// intermediate results pass directly between servers, rather than being
// routed through the application or a middle tier."
//
// Responsibilities:
//   - capability-based placement: each node goes to a server whose provider
//     claims it, preferring specialists for intent ops and data locality
//     otherwise;
//   - fragmentation: maximal same-server subtrees become one shipped
//     expression tree each (the LINQ property);
//   - transfers: cross-server edges move intermediates either directly
//     (server → server) or relayed through the client, per options —
//     experiment E4's knob;
//   - control iteration: an Iterate claimed whole by one provider ships as
//     a single fragment (provider-side); otherwise the coordinator drives
//     the loop from the client — experiment E6's knob;
//   - a deliberately chatty per-operator execution mode, the baseline the
//     paper's expression-tree-shipping claim is measured against (E5).
#ifndef NEXUS_FEDERATION_COORDINATOR_H_
#define NEXUS_FEDERATION_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "core/wire_format.h"
#include "federation/cluster.h"
#include "optimizer/optimizer.h"
#include "telemetry/metrics.h"

namespace nexus {

/// How the coordinator recovers from retryable transport failures
/// (kUnavailable / kTimeout — see IsRetryable in common/status.h). All
/// waiting is charged to the transport's simulated clock, so backoff can
/// outlast a scripted down window.
struct RetryPolicy {
  /// Total attempts per message, including the first (1 = never retry).
  int max_attempts = 4;
  /// First backoff pause (simulated seconds); doubles-style growth below.
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  /// Each pause is scaled by a uniform factor in [1-j, 1+j] drawn from a
  /// seeded RNG, so identical seeds yield identical retry traces.
  double jitter_fraction = 0.2;
  uint64_t jitter_seed = 17;
  /// Simulated-time budget per message including its retries and backoff
  /// pauses; exceeding it fails the fragment with kTimeout. 0 = unlimited.
  double fragment_timeout_seconds = 0.0;
  /// Client-driven Iterate loops snapshot the loop variable at the client
  /// every K iterations; a mid-loop server failure rewinds to the last
  /// snapshot instead of restarting the loop.
  int checkpoint_every = 4;
};

struct CoordinatorOptions {
  /// How cross-server intermediates travel (E4).
  TransferMode transfer_mode = TransferMode::kDirect;
  /// Ship whole Iterate nodes to a capable provider when possible (E6).
  bool provider_side_iteration = true;
  /// Route intent ops to specialist providers even when data is elsewhere.
  bool prefer_specialist = true;
  /// Cost-based fragment placement (E14): break placement ties by the
  /// estimated bytes each candidate server would pull across the wire
  /// (cardinality × NXB1 row width from catalog statistics). Off = the
  /// legacy "host where the bulkier input lives" heuristic.
  bool cost_based_placement = true;
  /// Run the logical optimizer before planning.
  bool optimize = true;
  OptimizerOptions optimizer;
  /// Recovery behaviour under transport faults.
  RetryPolicy retry;
  /// Thread budget for concurrent sibling-fragment dispatch. 0 = inherit the
  /// process-wide budget (SetThreadCount / NEXUS_THREADS); 1 = the exact
  /// legacy sequential dispatch order (required for reproducible fault
  /// traces — see DESIGN.md's determinism contract).
  int thread_count = 0;
  /// Ship each distinct plan wire to a server at most once: later shipments
  /// of the same fingerprint send a fixed-size %NXB1-EXEC reference and the
  /// provider re-executes its cached parse (Provider::kPlanCacheCapacity).
  /// Also enables the serialize-once fast path for client-driven loops,
  /// where only the changed loop-variable bindings travel per round.
  bool plan_cache = true;
  /// Cooperative cancellation (the multi-tenant service's kill switch).
  /// Checked at every fragment/message/loop boundary; when the token fires
  /// mid-execution, Execute unwinds with the token's status and the
  /// TempGuard releases all registered temps. Null = never cancelled.
  CancelTokenPtr cancel;
  /// Absolute deadline on the transport's simulated clock (seconds);
  /// crossing it cancels the token (kTimeout) at the next check. 0 = none.
  double deadline_simulated_seconds = 0.0;
  /// Disambiguates temp names when several coordinators share one cluster:
  /// temps become "__frag_<ns>_<n>". Empty (default) keeps the legacy
  /// "__frag_<n>" names — and the byte-identical wire traces the seeded
  /// chaos tests assert on.
  std::string temp_namespace;
};

/// Per-execution accounting: a *view* over cumulative telemetry — the
/// transport's message log, the parallel pool's morsel counters, and the
/// coordinator's MetricsRegistry counters are snapshotted when Execute
/// starts and every field below is the delta at the end of that call, so
/// repeated executions on one coordinator never double-count.
struct ExecutionMetrics {
  int64_t messages = 0;
  int64_t plan_messages = 0;
  int64_t data_messages = 0;
  int64_t bytes_total = 0;
  int64_t plan_bytes = 0;
  int64_t data_bytes = 0;
  int64_t bytes_through_client = 0;
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;
  int64_t fragments = 0;
  int64_t client_loop_iterations = 0;
  // Fault recovery (all zero when the transport injects no faults).
  int64_t retries = 0;             // resent messages after a retryable failure
  int64_t failovers = 0;           // servers excluded after retries ran out
  int64_t replans = 0;             // AssignServers re-runs caused by failover
  int64_t timeouts = 0;            // fragment budgets exhausted (kTimeout)
  int64_t checkpoint_restores = 0; // client-loop rewinds to a checkpoint
  // Parallel execution (morsel-driven; see common/parallel.h).
  int64_t threads_used = 0;        // effective thread budget for this call
  int64_t morsels = 0;             // engine morsels executed during this call
  int64_t parallel_fragments = 0;  // sibling fragments dispatched concurrently
  // Wire format + plan cache (see DESIGN.md, "The binary wire format").
  int64_t plan_cache_hits = 0;     // %NXB1-EXEC references resolved remotely
  int64_t plan_cache_misses = 0;   // full plans parsed (incl. evicted refs)
  int64_t wire_bytes_saved = 0;    // plan bytes not re-shipped thanks to refs
  // Incremental Iterate (NEXUS_INCREMENTAL — see exec/incremental): loop
  // bindings shipped as append-tails instead of full values.
  int64_t delta_bindings = 0;      // bindings that traveled as %NXB1-DELTA
  int64_t delta_rows_shipped = 0;  // rows in those tails
  int64_t delta_bytes_saved = 0;   // binding bytes elided vs full re-ship
  std::map<std::string, int64_t> nodes_per_server;

  std::string ToString() const;
};

/// Catalog view spanning every server in a cluster (schema resolution for
/// planning; first registered holder wins).
class FederatedCatalog : public Catalog {
 public:
  explicit FederatedCatalog(const Cluster* cluster) : cluster_(cluster) {}
  Result<SchemaPtr> GetSchema(const std::string& name) const override;
  bool Contains(const std::string& name) const override;
  /// Statistics from the first holder's catalog — includes fragment temps
  /// the coordinator registered mid-execution, which is how observed
  /// actuals feed back into later planning rounds.
  Result<TableStats> GetStats(const std::string& name) const override;

 private:
  const Cluster* cluster_;
};

class Coordinator {
 public:
  explicit Coordinator(Cluster* cluster, CoordinatorOptions options = {})
      : cluster_(cluster), options_(options), fed_catalog_(cluster) {}

  /// Plans and executes `plan` across the cluster; the result is delivered
  /// to the client tier (the paper: "the result of a query is a collection
  /// in the client environment"). Metrics (optional) cover this call only.
  Result<Dataset> Execute(const PlanPtr& plan, ExecutionMetrics* metrics = nullptr);

  /// E5 baseline: one remote call per operator, every intermediate routed
  /// back to the client and re-uploaded for the next call.
  Result<Dataset> ExecutePerOp(const PlanPtr& plan,
                               ExecutionMetrics* metrics = nullptr);

  /// Renders the placement decision for every node ("node @ server").
  Result<std::string> ExplainPlacement(const PlanPtr& plan);

  /// EXPLAIN ANALYZE: executes `plan` with tracing enabled (restoring the
  /// previous tracing state afterwards) and renders the recorded span tree
  /// — per fragment and operator: rows, bytes, wall/simulated ms, morsels,
  /// retries, and the server it ran on. `metrics`, when given, receives
  /// the same per-call accounting Execute would report.
  Result<std::string> ExplainAnalyze(const PlanPtr& plan,
                                     ExecutionMetrics* metrics = nullptr);

  /// Trace id of the most recent (traced) Execute on this coordinator;
  /// 0 when tracing was disabled. Pass to telemetry::ToChromeTraceJson /
  /// ExplainAnalyze to select exactly that query's spans.
  uint64_t last_trace_id() const { return last_trace_id_; }

  const CoordinatorOptions& options() const { return options_; }
  void set_options(const CoordinatorOptions& o) { options_ = o; }

  /// What the optimizer did during the most recent Prepare (Execute /
  /// ExecutePerOp / Explain*): pass counters plus the estimated root
  /// cardinality. Zeroed when options().optimize is false.
  const OptimizerStats& last_optimizer_stats() const {
    return last_optimizer_stats_;
  }

 private:
  struct Placement {
    std::map<const Plan*, std::string> assign;  // "" = flexible
    std::set<const Plan*> client_loops;         // Iterates driven client-side
  };

  /// Drops all registered temps when an execution scope exits, so failed or
  /// aborted executions never leak server-side state.
  struct TempGuard {
    explicit TempGuard(Coordinator* c) : coordinator(c) {}
    ~TempGuard() { coordinator->DropTemps(); }
    TempGuard(const TempGuard&) = delete;
    TempGuard& operator=(const TempGuard&) = delete;
    Coordinator* coordinator;
  };

  Result<PlanPtr> Prepare(const PlanPtr& plan);
  Result<std::string> AssignServers(const PlanPtr& plan, Placement* placement);
  /// Rough output-size estimate (bytes) used as the ship-less tiebreak in
  /// placement when cost_based_placement is off: prefer hosting an operator
  /// where its bulkier input lives.
  int64_t EstimateBytes(const Plan& plan) const;
  bool ServerSuits(const std::string& server, const Plan& node,
                   const std::vector<SchemaPtr>& child_schemas) const;
  int SpecRank(OpKind kind, const std::string& server) const;

  // Execution machinery (all counters flow through the transport).
  Result<Dataset> Run(const PlanPtr& plan, Placement* placement);
  Result<std::pair<std::string, std::string>> ExecToTemp(const Plan* node,
                                                         Placement* placement);
  Result<PlanPtr> BuildFragment(const Plan* node, const std::string& server,
                                Placement* placement);
  Result<Dataset> ShipAndRun(const std::string& server, const PlanPtr& fragment);
  /// Estimated output rows of `fragment` against the federated catalog
  /// (which sees temp stats, i.e. observed actuals), or -1 when the
  /// estimator cannot resolve a leaf. Only evaluated while tracing, to
  /// stamp est_rows (and thus q-error) onto fragment spans.
  int64_t EstimateFragmentRows(const Plan& fragment) const;
  /// Ships an already-serialized plan wire (plus optional dataset bindings)
  /// to `server`, going through the plan-cache envelope when enabled: a
  /// fingerprint this coordinator already shipped there travels as a
  /// %NXB1-EXEC reference, and a provider-side eviction (NotFound carrying
  /// kPlanCacheMissMarker) falls back to re-shipping the full plan.
  Result<Dataset> ShipWire(
      const std::string& server, const std::string& plan_wire, uint64_t fp,
      const std::vector<std::pair<std::string, std::string>>& bindings,
      int64_t est_rows = -1);
  /// Sends `data` over the negotiated wire for (from, to): serialized once,
  /// metered at its actual encoded size, decoded on arrival.
  Result<Dataset> SendData(const std::string& from, const std::string& to,
                           const Dataset& data);
  Result<Dataset> FetchToClient(const std::string& server, const std::string& temp);
  Result<std::string> RegisterTemp(const std::string& server, Dataset data);
  Status TransferTemp(const std::string& from, const std::string& to,
                      const std::string& temp);

  /// Serialize-once state for one client-driven loop: when the body (and
  /// measure) place whole on a single server, the loop variables are
  /// rewritten into Scans of per-loop binding names, the template wires and
  /// fingerprints are computed once, and every round ships only a cache
  /// reference plus the bindings that actually changed.
  struct LoopShip {
    bool probed = false;
    bool usable = false;
    std::string server;
    WireFormat format = WireFormat::kText;
    std::string curr_name, prev_name;
    std::string body_wire;
    uint64_t body_fp = 0;
    bool body_curr = false, body_prev = false;
    std::string measure_wire;
    uint64_t measure_fp = 0;
    bool measure_curr = false, measure_prev = false;
    /// What the provider's sticky binding cache holds per binding name (the
    /// last full value this loop successfully shipped, with its fingerprint
    /// chain) — the base a later round's prefix-extending value extends as a
    /// %NXB1-DELTA tail. `full_wire_bytes` tracks the size a full re-ship
    /// would have cost, for the delta_bytes_saved accounting.
    struct BoundBase {
      TablePtr table;
      uint64_t chain_fp = 0;
      int64_t full_wire_bytes = 0;
    };
    std::map<std::string, BoundBase> bound;
  };
  Result<Dataset> RunClientLoop(const Plan& iterate, Placement* placement);
  /// One body(+measure) round of a client-driven loop; updates *state.
  /// Returns true when the loop's convergence measure says stop.
  Result<bool> RunLoopStep(const IterateOp& op, Dataset* state, LoopShip* ship);
  /// Detects the single-server case and builds the reusable templates.
  void ProbeLoopShip(const IterateOp& op, const Dataset& state, LoopShip* ship);
  Result<bool> RunLoopStepShipped(const IterateOp& op, Dataset* state,
                                  LoopShip* ship);
  void DropTemps();

  /// Retry/backoff wrapper around Transport::TrySend, implementing
  /// options_.retry. On giving up, records the presumed-dead server in
  /// last_failed_server_ so Execute's failover loop can route around it.
  Status SendWithRetry(const std::string& from, const std::string& to,
                       int64_t bytes, MessageKind kind);
  /// Excludes last_failed_server_ from planning (failover) and invalidates
  /// memoized temps on it. Returns false when nothing can be excluded.
  bool ExcludeFailedServer();
  /// First registered server not excluded by failover.
  Result<std::string> AnyAvailableServer() const;
  /// Resolved thread budget: options_.thread_count, or the process-wide
  /// budget when 0.
  int EffectiveThreads() const;
  /// Cooperative cancellation checkpoint: OK unless options_.cancel fired
  /// (returns its status) or the simulated clock crossed
  /// options_.deadline_simulated_seconds (fires the token with kTimeout and
  /// returns that). Called at fragment, message, and loop boundaries.
  Status CheckCancelled();

  /// Handles into the process-global MetricsRegistry — the coordinator's
  /// counters are ordinary named metrics ("coordinator.fragments", ...),
  /// cumulative across calls and coordinators. Resolved once.
  struct Instruments {
    telemetry::Counter* fragments;
    telemetry::Counter* parallel_fragments;
    telemetry::Counter* client_loop_iterations;
    telemetry::Counter* retries;
    telemetry::Counter* failovers;
    telemetry::Counter* replans;
    telemetry::Counter* timeouts;
    telemetry::Counter* checkpoint_restores;
    telemetry::Gauge* threads;
    telemetry::Histogram* backoff_seconds;
    telemetry::Histogram* fragment_plan_bytes;
    /// Plan bytes *not* sent because a cache reference sufficed.
    telemetry::Counter* bytes_saved;
    /// Incremental Iterate: loop bindings shipped as %NXB1-DELTA tails.
    telemetry::Counter* delta_bindings;
    telemetry::Counter* delta_rows_shipped;
    telemetry::Counter* delta_bytes_saved;
    /// The provider-side cache counters (the same registry instruments the
    /// providers increment), snapshotted so metrics can delta them.
    telemetry::Counter* plan_cache_hit;
    telemetry::Counter* plan_cache_miss;
    static Instruments Resolve();
  };

  /// Instrument values when the current Execute/ExecutePerOp began;
  /// ExecutionMetrics reports instrument-minus-base (the "view").
  struct InstrumentBase {
    int64_t fragments = 0;
    int64_t parallel_fragments = 0;
    int64_t client_loop_iterations = 0;
    int64_t retries = 0;
    int64_t failovers = 0;
    int64_t replans = 0;
    int64_t timeouts = 0;
    int64_t checkpoint_restores = 0;
    int64_t bytes_saved = 0;
    int64_t plan_cache_hit = 0;
    int64_t plan_cache_miss = 0;
    int64_t delta_bindings = 0;
    int64_t delta_rows_shipped = 0;
    int64_t delta_bytes_saved = 0;
  };
  InstrumentBase SnapshotInstruments() const;
  void FillMetricsFromInstruments(ExecutionMetrics* metrics) const;

  Cluster* cluster_;
  CoordinatorOptions options_;
  FederatedCatalog fed_catalog_;
  OptimizerStats last_optimizer_stats_;
  Instruments ins_ = Instruments::Resolve();
  InstrumentBase base_;
  uint64_t last_trace_id_ = 0;
  int64_t temp_counter_ = 0;
  std::vector<std::pair<std::string, std::string>> temps_;  // (server, name)
  /// Serializes coordinator bookkeeping (temps, memo, counters, retry RNG)
  /// and all transport traffic when sibling fragments execute concurrently.
  /// Held only around that bookkeeping — never across Provider::ExecuteWire,
  /// so fragment compute genuinely overlaps. Recursive because dispatch
  /// nests (a fragment's child may itself fan out on the caller's thread).
  mutable std::recursive_mutex mu_;

  // Fault-recovery state, reset per Execute.
  Rng retry_rng_{17};
  std::set<std::string> excluded_;       // servers failed over away from
  std::string last_failed_server_;       // set when retries run out
  // Fragment results that survived a failed attempt: plan node -> (server,
  // temp). Only populated for the root placement, whose nodes stay alive
  // for the whole Execute; replanning resumes from these instead of
  // recomputing.
  std::map<const Plan*, std::pair<std::string, std::string>> done_;
  const Placement* root_placement_ = nullptr;

  // Plan-cache bookkeeping: which fingerprints this coordinator has already
  // shipped to each server. Mirrors the provider's FIFO capacity so the two
  // sides agree in steady state; divergence (a provider eviction we missed)
  // is repaired by the kPlanCacheMissMarker re-ship fallback. Kept across
  // Execute calls — that is where repeated-query hits come from.
  struct ShippedSet {
    std::set<uint64_t> fps;
    std::deque<uint64_t> order;
  };
  std::map<std::string, ShippedSet> shipped_;
  // Per-loop sequence for binding names; reset each Execute so re-running
  // the same plan regenerates identical template wires (and cache hits).
  int64_t loop_seq_ = 0;
};

}  // namespace nexus

#endif  // NEXUS_FEDERATION_COORDINATOR_H_
