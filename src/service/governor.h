// MemoryGovernor: per-tenant memory budgets with kill-or-queue degradation.
//
// Every service-managed query runs with a QueryMeter installed in its
// TaskContext; the type layer charges each materialized collection to that
// meter (common/memory.h), and the meter accrues the charge to its tenant.
// When a tenant crosses its budget the governor reacts in two ways, never
// by aborting the process:
//
//   - kill: the cheapest over-budget query of that tenant (the one whose
//     loss wastes the least work, deterministically tie-broken by query id)
//     has its CancelToken fired with a *retryable* kResourceExhausted; it
//     unwinds cooperatively, its temps are released by RAII, and its charge
//     is returned at FinishQuery. At most one victim per tenant is dying at
//     a time — the governor waits for a kill to unwind before choosing
//     another.
//   - queue: while the tenant remains over budget, UnderBudget(tenant) is
//     false, and the admission controller (which polls it as the
//     eligibility predicate) holds the tenant's queued queries back until
//     finished queries return enough memory.
//
// With out-of-core execution enabled (src/exec/spill), a third, gentler
// reaction comes first: ask-to-spill. Spill-capable queries are asked to
// shed memory (their SpillRequested flag flips; operators partition to
// disk at the next boundary and Release the parked bytes), and the tenant
// is tolerated up to 2× its budget while shedding is in flight — spilling
// works at block granularity, so a cooperating query transiently overshoots
// before its releases land. Only when shedding fails to bring the tenant
// back does the governor fall back to killing, and the victim choice then
// uses each query's *net* charge (charged − released): bytes a query
// already parked on disk come back from a kill anyway, so counting them
// would overstate the recovery and pick the wrong victim.
//
// Other tenants are never touched: budgets, usage, and victims are all
// per-tenant, so one tenant oversubscribing its budget 10× cannot perturb
// another tenant's results or schedule.
#ifndef NEXUS_SERVICE_GOVERNOR_H_
#define NEXUS_SERVICE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/memory.h"
#include "common/result.h"
#include "common/status.h"

namespace nexus {
namespace service {

struct TenantOptions {
  /// Bytes of materialized collections the tenant may hold across all its
  /// running queries. 0 = unlimited.
  int64_t memory_budget_bytes = 0;
  /// Relative share of service capacity (reserved for future admission
  /// weighting; the morsel-pool weight comes from the query class).
  int weight = 1;
};

class MemoryGovernor {
 public:
  /// One running query's meter. Thread-safe: morsels charge from many pool
  /// workers at once. Owned by the caller; must be finished (FinishQuery)
  /// before destruction.
  class QueryMeter : public MemoryMeter {
   public:
    void Charge(int64_t bytes) override;
    /// Net accounting for the out-of-core path: bytes the query parked on
    /// disk (or freed from a working set) leave the tenant's usage.
    /// Clamped — cumulative releases never exceed cumulative charges.
    void Release(int64_t bytes) override;
    /// The tenant's budget, handed to operators as their spill threshold.
    int64_t SpillBudget() const override {
      return spill_budget_;
    }
    bool SpillRequested() const override {
      return spill_requested_.load(std::memory_order_relaxed);
    }

    int64_t charged() const { return charged_.load(std::memory_order_relaxed); }
    int64_t released() const { return released_.load(std::memory_order_relaxed); }
    /// Bytes still attributed to this query (charged − released).
    int64_t net() const { return charged() - released(); }
    /// Whether this query can answer an ask-to-spill (captured from
    /// spill::SpillEnabled() at StartQuery).
    bool spill_capable() const { return spill_capable_; }
    const std::string& tenant() const { return tenant_; }
    uint64_t id() const { return id_; }

   private:
    friend class MemoryGovernor;
    MemoryGovernor* governor_ = nullptr;
    std::string tenant_;
    uint64_t id_ = 0;
    CancelTokenPtr token_;
    std::atomic<int64_t> charged_{0};
    std::atomic<int64_t> released_{0};  // mutated under governor mu_
    std::atomic<bool> spill_requested_{false};
    int64_t spill_budget_ = 0;   // immutable after StartQuery
    bool spill_capable_ = false; // immutable after StartQuery
  };

  Status RegisterTenant(const std::string& name, TenantOptions options);

  /// Starts metering one query of `tenant`. `token` is the query's cancel
  /// token — the governor fires it if the query is chosen as a kill victim.
  Result<std::unique_ptr<QueryMeter>> StartQuery(const std::string& tenant,
                                                 CancelTokenPtr token);

  /// Ends metering: returns the query's entire charge to the tenant and
  /// forgets the meter. Safe to call exactly once per StartQuery.
  void FinishQuery(QueryMeter* meter);

  /// True when the tenant exists and is under (or has no) budget — the
  /// admission eligibility predicate.
  bool UnderBudget(const std::string& tenant) const;

  /// Current accrued bytes of the tenant (0 for unknown tenants).
  int64_t Usage(const std::string& tenant) const;

  /// Queries killed by budget enforcement so far.
  int64_t kills() const { return kills_.load(std::memory_order_relaxed); }

  /// Ask-to-spill rounds issued instead of (or before) kills.
  int64_t spill_requests() const {
    return spill_requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Tenant {
    TenantOptions options;
    int64_t usage = 0;  // guarded by mu_
    std::map<uint64_t, QueryMeter*> live;
  };

  /// Reacts to `tenant` being (possibly) over budget: picks and cancels a
  /// victim unless one is already dying. Caller holds mu_.
  void EnforceLocked(Tenant* tenant);

  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
  uint64_t next_query_id_ = 1;
  std::atomic<int64_t> kills_{0};
  std::atomic<int64_t> spill_requests_{0};
};

}  // namespace service
}  // namespace nexus

#endif  // NEXUS_SERVICE_GOVERNOR_H_
