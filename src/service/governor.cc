#include "service/governor.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/spill/spill.h"

namespace nexus {
namespace service {

Status MemoryGovernor::RegisterTenant(const std::string& name,
                                      TenantOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.count(name) != 0) {
    return Status::AlreadyExists(StrCat("tenant '", name, "' already registered"));
  }
  if (options.weight < 1) options.weight = 1;
  tenants_[name].options = options;
  return Status::OK();
}

Result<std::unique_ptr<MemoryGovernor::QueryMeter>> MemoryGovernor::StartQuery(
    const std::string& tenant, CancelTokenPtr token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound(StrCat("unknown tenant '", tenant, "'"));
  }
  auto meter = std::make_unique<QueryMeter>();
  meter->governor_ = this;
  meter->tenant_ = tenant;
  meter->id_ = next_query_id_++;
  meter->token_ = std::move(token);
  // Captured once: a query is spill-capable when out-of-core execution is
  // on process-wide, and its spill threshold is the tenant's budget.
  meter->spill_capable_ = spill::SpillEnabled();
  meter->spill_budget_ = it->second.options.memory_budget_bytes;
  it->second.live[meter->id_] = meter.get();
  return meter;
}

void MemoryGovernor::FinishQuery(QueryMeter* meter) {
  if (meter == nullptr || meter->governor_ != this) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(meter->tenant_);
  if (it == tenants_.end()) return;
  it->second.live.erase(meter->id_);
  // Releases already left the tenant's usage as they happened — only the
  // net remainder comes back now.
  it->second.usage -= meter->charged() - meter->released();
  if (it->second.usage < 0) it->second.usage = 0;
  meter->governor_ = nullptr;
}

void MemoryGovernor::QueryMeter::Charge(int64_t bytes) {
  if (bytes <= 0 || governor_ == nullptr) return;
  charged_.fetch_add(bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(governor_->mu_);
  auto it = governor_->tenants_.find(tenant_);
  if (it == governor_->tenants_.end()) return;
  it->second.usage += bytes;
  governor_->EnforceLocked(&it->second);
}

void MemoryGovernor::QueryMeter::Release(int64_t bytes) {
  if (bytes <= 0 || governor_ == nullptr) return;
  std::lock_guard<std::mutex> lock(governor_->mu_);
  // Clamp under the lock: never return more than is still outstanding.
  int64_t outstanding =
      charged_.load(std::memory_order_relaxed) -
      released_.load(std::memory_order_relaxed);
  int64_t give = std::min(bytes, outstanding);
  if (give <= 0) return;
  released_.fetch_add(give, std::memory_order_relaxed);
  auto it = governor_->tenants_.find(tenant_);
  if (it == governor_->tenants_.end()) return;
  it->second.usage -= give;
  if (it->second.usage < 0) it->second.usage = 0;
}

void MemoryGovernor::EnforceLocked(Tenant* tenant) {
  int64_t budget = tenant->options.memory_budget_bytes;
  if (budget <= 0 || tenant->usage <= budget) return;
  // One dying victim at a time: its charge comes back at FinishQuery, and
  // piling on more kills while it unwinds would overshoot the correction.
  for (const auto& [id, m] : tenant->live) {
    if (m->token_ != nullptr && m->token_->cancelled()) return;
  }
  // Ask-to-spill first: flip the flag on every spill-capable query that
  // has not been asked yet and give the round a chance to shed before any
  // kill. Operators poll the flag at partition boundaries and Release what
  // they park on disk.
  bool asked_now = false;
  bool any_capable = false;
  for (const auto& [id, m] : tenant->live) {
    if (!m->spill_capable_) continue;
    any_capable = true;
    bool was = m->spill_requested_.exchange(true, std::memory_order_relaxed);
    asked_now = asked_now || !was;
  }
  if (asked_now) {
    spill_requests_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Shedding works at block granularity: a cooperating query charges each
  // loaded partition before its releases land, so tolerate spill-capable
  // tenants up to 2× budget while an ask is outstanding.
  if (any_capable && tenant->usage <= 2 * budget) return;
  // Victim choice, deterministic: the cheapest query whose removal brings
  // the tenant back under budget (least work wasted); if none suffices
  // alone, the most expensive one (biggest step toward recovery). Ties
  // break on the lower query id. Queries without a token can't be killed.
  // Cost is the *net* charge — bytes a victim already released by spilling
  // return nothing when it dies, so they must not count toward recovery.
  int64_t over = tenant->usage - budget;
  QueryMeter* victim = nullptr;
  bool victim_sufficient = false;
  for (const auto& [id, m] : tenant->live) {
    if (m->token_ == nullptr) continue;
    int64_t c = m->net();
    bool sufficient = c >= over;
    if (victim == nullptr) {
      victim = m;
      victim_sufficient = sufficient;
      continue;
    }
    int64_t vc = victim->net();
    bool better = sufficient ? (!victim_sufficient || c < vc)
                             : (!victim_sufficient && c > vc);
    if (better) {
      victim = m;
      victim_sufficient = sufficient;
    }
  }
  if (victim == nullptr) return;
  kills_.fetch_add(1, std::memory_order_relaxed);
  victim->token_->Cancel(
      StatusCode::kResourceExhausted,
      StrCat("tenant '", victim->tenant_, "' over memory budget (",
             tenant->usage, " > ", budget, " bytes); query killed to recover ",
             victim->net(), " bytes — retry later"));
}

bool MemoryGovernor::UnderBudget(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  int64_t budget = it->second.options.memory_budget_bytes;
  return budget <= 0 || it->second.usage < budget;
}

int64_t MemoryGovernor::Usage(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.usage;
}

}  // namespace service
}  // namespace nexus
