// Server: the in-process multi-tenant query service facade.
//
// Wires the three robustness mechanisms of this subsystem around the
// existing federation Coordinator:
//
//   client → AdmissionController (bounded queue, priority classes,
//            deterministic rejection)
//          → MemoryGovernor (per-tenant budgets, kill-or-queue)
//          → a pooled Coordinator slot (cancel token + deadline + its own
//            temp namespace) → the shared Cluster.
//
// Concurrency model: each execution slot owns one Coordinator, so at most
// max_concurrent queries run at a time over the shared cluster; the slots'
// distinct temp namespaces keep their server-side temporaries disjoint.
// Queries of all tenants and sessions may be submitted from any number of
// threads; Submit() additionally runs the query on a service-owned thread
// so a session can overlap queries and cancel them mid-flight.
//
// Every failure mode is a Status, never a crash: overload rejects with
// retryable kResourceExhausted (+ retry-after hint), budget kills unwind
// with retryable kResourceExhausted, deadlines with kTimeout, client
// cancellation with kCancelled (not retryable — the client asked for it).
#ifndef NEXUS_SERVICE_SERVER_H_
#define NEXUS_SERVICE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/status.h"
#include "federation/coordinator.h"
#include "service/admission.h"
#include "service/governor.h"

namespace nexus {
namespace service {

struct ServerOptions {
  /// Execution slots (each owns one Coordinator).
  int max_concurrent = 4;
  /// Queries allowed to wait for a slot before rejection.
  int queue_capacity = 16;
  /// After a budget kill, re-admit the query once (it waits, via the
  /// governor eligibility predicate, until its tenant is under budget
  /// again) instead of failing straight back to the client.
  bool requeue_on_kill = true;
  /// Base options for the pooled Coordinators. cancel / deadline /
  /// temp_namespace are overwritten per query and per slot.
  CoordinatorOptions coordinator;
};

/// Per-query knobs, chosen by the client at submit time.
struct QueryOptions {
  QueryClass query_class = QueryClass::kStandard;
  /// Simulated-seconds budget for the whole query (0 = none); crossing it
  /// cancels the query with kTimeout.
  double deadline_seconds = 0.0;
};

/// What happened to one query, for clients and tests.
struct QueryReport {
  std::string tenant;
  QueryClass query_class = QueryClass::kStandard;
  /// "admitted" (ran immediately) | "queued" (waited for a slot or for its
  /// tenant's budget) | "killed" (budget victim, possibly after requeue) |
  /// "rejected" (queue full).
  std::string admission = "admitted";
  double queue_wait_ms = 0.0;
  double latency_ms = 0.0;
  int64_t reserved_bytes = 0;  ///< bytes the query charged to its tenant
  int requeues = 0;
  /// Expression programs compiled / served from the program cache while this
  /// query ran (best-effort attribution: deltas of the process-wide
  /// expr.compile / expr.compile_cache_hit counters across the run).
  int64_t expr_compiles = 0;
  int64_t expr_cache_hits = 0;
  /// Bytes the query returned to its tenant before finishing — working
  /// sets it freed and data it parked in spill files (net accounting).
  int64_t released_bytes = 0;
  /// Out-of-core activity while this query ran (same best-effort
  /// counter-delta attribution as the expr fields): Grace partitions
  /// written and spill bytes parked on disk.
  int64_t spill_partitions = 0;
  int64_t spill_bytes = 0;
};

class Server {
 public:
  explicit Server(Cluster* cluster, ServerOptions options = {});
  /// Cancels and joins every in-flight query.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Tenants must be registered before their sessions open.
  Status RegisterTenant(const std::string& name, TenantOptions options);

  /// Opens a session for `tenant`; returns its id.
  Result<int64_t> OpenSession(const std::string& tenant);

  /// Cancels the session's outstanding queries and releases their state.
  Status CloseSession(int64_t session);

  /// Synchronous execution: admission → metered run → result. `bindings`
  /// are uploaded to the cluster under query-private names before admission
  /// (Scan leaves naming a binding are rewritten to the private name) and
  /// dropped when the query finishes, fails, or is cancelled — even if it
  /// never left the admission queue.
  Result<Dataset> Execute(
      int64_t session, const PlanPtr& plan, const QueryOptions& options = {},
      QueryReport* report = nullptr,
      std::vector<std::pair<std::string, Dataset>> bindings = {});

  /// Asynchronous execution on a service thread; returns a query id.
  Result<int64_t> Submit(
      int64_t session, const PlanPtr& plan, const QueryOptions& options = {},
      std::vector<std::pair<std::string, Dataset>> bindings = {});

  /// Blocks until the submitted query finishes; returns its result.
  Result<Dataset> Wait(int64_t query, QueryReport* report = nullptr);

  /// Requests cooperative cancellation (kCancelled, not retryable). The
  /// query's slot, temps, and bindings are released as it unwinds; a query
  /// still waiting in the admission queue is withdrawn without running.
  Status Cancel(int64_t query);

  /// EXPLAIN ANALYZE through the service path: the coordinator's span tree
  /// preceded by one admission line —
  ///   admission: queued=<ms> class=<name> governor=<admitted|queued|killed>
  Result<std::string> ExplainAnalyze(int64_t session, const PlanPtr& plan,
                                     const QueryOptions& options = {});

  const AdmissionController& admission() const { return admission_; }
  MemoryGovernor& governor() { return governor_; }

 private:
  struct Slot {
    std::unique_ptr<Coordinator> coordinator;
    bool busy = false;
  };

  struct Session {
    std::string tenant;
    bool open = false;
  };

  struct Query {
    int64_t id = 0;
    int64_t session = 0;
    std::string tenant;
    QueryOptions options;
    CancelTokenPtr user_token;  // fired by Cancel()/CloseSession()
    std::thread worker;         // joined by Wait()/~Server
    bool done = false;
    Result<Dataset> result{Status::Internal("query not finished")};
    QueryReport report;
  };

  /// The full life of one query: bindings → admission → governed run →
  /// cleanup. `explain`, when set, receives ExplainAnalyze output.
  Result<Dataset> RunQuery(const std::string& tenant, const PlanPtr& plan,
                           const QueryOptions& options,
                           CancelTokenPtr user_token, int64_t query_id,
                           std::vector<std::pair<std::string, Dataset>> bindings,
                           QueryReport* report, std::string* explain);
  /// One admission→execution attempt (RunQuery may make two on a requeue).
  Result<Dataset> RunAttempt(const std::string& tenant, const PlanPtr& plan,
                             const QueryOptions& options,
                             const CancelTokenPtr& attempt_token,
                             QueryReport* report, std::string* explain);

  int AcquireSlot();       // blocks on slots_cv_ (slots == admission slots)
  void ReleaseSlot(int i);

  /// Uploads bindings under "__svc_q<id>_<name>" on the first server and
  /// returns the rewritten plan; names are recorded for DropBindings.
  Result<PlanPtr> UploadBindings(
      int64_t query_id, const PlanPtr& plan,
      std::vector<std::pair<std::string, Dataset>>* bindings,
      std::vector<std::pair<std::string, std::string>>* uploaded);
  void DropBindings(
      const std::vector<std::pair<std::string, std::string>>& uploaded);

  Cluster* cluster_;
  ServerOptions options_;
  AdmissionController admission_;
  MemoryGovernor governor_;

  mutable std::mutex mu_;
  std::condition_variable slots_cv_;
  std::vector<Slot> slots_;
  std::map<int64_t, Session> sessions_;
  std::map<int64_t, std::unique_ptr<Query>> queries_;
  std::condition_variable queries_cv_;
  int64_t next_session_ = 1;
  int64_t next_query_ = 1;
};

}  // namespace service
}  // namespace nexus

#endif  // NEXUS_SERVICE_SERVER_H_
