#include "service/server.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "exec/spill/spill.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace service {

namespace {

/// Per-tenant registry instruments, resolved by name on use (the registry
/// memoizes, so this is a locked map lookup — fine off the hot path).
struct TenantInstruments {
  telemetry::Counter* admitted;
  telemetry::Counter* queued;
  telemetry::Counter* rejected;
  telemetry::Counter* killed;
  telemetry::Counter* expr_compiles;
  telemetry::Counter* expr_cache_hits;
  telemetry::Counter* completed;
  telemetry::Counter* failed;
  telemetry::Counter* requeued;
  telemetry::Counter* spill_ops;
  telemetry::Counter* spill_partitions;
  telemetry::Counter* spill_bytes;
  telemetry::Histogram* queue_wait_ms;
  telemetry::Histogram* latency_ms;
  telemetry::Histogram* reserved_bytes;

  static TenantInstruments For(const std::string& tenant) {
    auto& reg = telemetry::MetricsRegistry::Global();
    auto name = [&](const char* leaf) {
      return StrCat("service.", tenant, ".", leaf);
    };
    return TenantInstruments{
        reg.counter(name("admitted")),      reg.counter(name("queued")),
        reg.counter(name("rejected")),      reg.counter(name("killed")),
        reg.counter(name("expr_compiles")), reg.counter(name("expr_cache_hits")),
        reg.counter(name("completed")),     reg.counter(name("failed")),
        reg.counter(name("requeued")),      reg.counter(name("spill_ops")),
        reg.counter(name("spill_partitions")), reg.counter(name("spill_bytes")),
        reg.histogram(name("queue_wait_ms")),
        reg.histogram(name("latency_ms")),  reg.histogram(name("reserved_bytes")),
    };
  }
};

/// Rewrites Scan leaves that name a binding to the query-private upload
/// name, so the shipped plan reads the staged data.
PlanPtr RewriteBindings(const PlanPtr& plan,
                        const std::map<std::string, std::string>& renames) {
  if (plan->kind() == OpKind::kScan) {
    auto it = renames.find(plan->As<ScanOp>().table);
    if (it != renames.end()) return Plan::Scan(it->second);
    return plan;
  }
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) {
    children.push_back(RewriteBindings(c, renames));
  }
  return plan->WithChildren(std::move(children));
}

}  // namespace

Server::Server(Cluster* cluster, ServerOptions options)
    : cluster_(cluster),
      options_(options),
      admission_(AdmissionOptions{std::max(1, options.max_concurrent),
                                  std::max(0, options.queue_capacity)}) {
  int n = std::max(1, options_.max_concurrent);
  slots_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    CoordinatorOptions co = options_.coordinator;
    co.temp_namespace = StrCat("s", i);
    slots_[static_cast<size_t>(i)].coordinator =
        std::make_unique<Coordinator>(cluster_, co);
  }
}

Server::~Server() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, q] : queries_) {
      q->user_token->Cancel(StatusCode::kCancelled, "service shutting down");
      if (q->worker.joinable()) workers.push_back(std::move(q->worker));
    }
  }
  admission_.Poke();
  for (std::thread& w : workers) w.join();
  // Queries unwound via RAII just unlinked their scratch files; sweep the
  // directory for any orphan left by a crashier path (belt and braces).
  spill::SpillManager::Global().Sweep();
}

Status Server::RegisterTenant(const std::string& name, TenantOptions options) {
  return governor_.RegisterTenant(name, options);
}

Result<int64_t> Server::OpenSession(const std::string& tenant) {
  if (!governor_.UnderBudget(tenant) && governor_.Usage(tenant) == 0) {
    // Unknown tenants are the only way to be "over budget" at zero usage.
    return Status::NotFound(StrCat("unknown tenant '", tenant, "'"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  int64_t id = next_session_++;
  sessions_[id] = Session{tenant, /*open=*/true};
  return id;
}

Status Server::CloseSession(int64_t session) {
  std::vector<int64_t> outstanding;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second.open) {
      return Status::NotFound(StrCat("no open session ", session));
    }
    it->second.open = false;
    for (const auto& [id, q] : queries_) {
      if (q->session == session) outstanding.push_back(id);
    }
  }
  for (int64_t id : outstanding) {
    (void)Cancel(id);
    (void)Wait(id);  // join the worker; the result is discarded
  }
  return Status::OK();
}

int Server::AcquireSlot() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy) {
        slots_[i].busy = true;
        return static_cast<int>(i);
      }
    }
    slots_cv_.wait(lock);
  }
}

void Server::ReleaseSlot(int i) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[static_cast<size_t>(i)].busy = false;
  }
  slots_cv_.notify_one();
}

Result<PlanPtr> Server::UploadBindings(
    int64_t query_id, const PlanPtr& plan,
    std::vector<std::pair<std::string, Dataset>>* bindings,
    std::vector<std::pair<std::string, std::string>>* uploaded) {
  if (bindings->empty()) return plan;
  std::vector<std::string> servers = cluster_->ServerNames();
  if (servers.empty()) return Status::InvalidArgument("cluster has no servers");
  const std::string& target = servers.front();
  std::map<std::string, std::string> renames;
  for (auto& [name, data] : *bindings) {
    std::string priv = StrCat("__svc_q", query_id, "_", name);
    NEXUS_RETURN_NOT_OK(cluster_->PutData(target, priv, std::move(data)));
    uploaded->emplace_back(target, priv);
    renames[name] = priv;
  }
  bindings->clear();
  return RewriteBindings(plan, renames);
}

void Server::DropBindings(
    const std::vector<std::pair<std::string, std::string>>& uploaded) {
  for (const auto& [server, name] : uploaded) {
    Provider* p = cluster_->provider(server);
    if (p != nullptr) (void)p->catalog()->Drop(name);
  }
}

Result<Dataset> Server::RunAttempt(const std::string& tenant,
                                   const PlanPtr& plan,
                                   const QueryOptions& options,
                                   const CancelTokenPtr& attempt_token,
                                   QueryReport* report, std::string* explain) {
  TenantInstruments ins = TenantInstruments::For(tenant);
  double queue_wait_ms = 0.0;
  double queue_start_sim = cluster_->transport()->simulated_seconds();
  Status admitted = admission_.Admit(
      options.query_class, tenant, attempt_token.get(),
      [this, tenant] { return governor_.UnderBudget(tenant); },
      &queue_wait_ms);
  report->queue_wait_ms += queue_wait_ms;
  if (!admitted.ok()) {
    if (admitted.IsResourceExhausted()) {
      report->admission = "rejected";
      ins.rejected->Increment();
    }
    return admitted;
  }
  if (queue_wait_ms > 0.5 && report->admission == "admitted") {
    report->admission = "queued";
  }
  if (queue_wait_ms > 0.5) {
    ins.queued->Increment();
  } else {
    ins.admitted->Increment();
  }
  ins.queue_wait_ms->Record(queue_wait_ms);
  if (telemetry::Enabled() && queue_wait_ms > 0.0) {
    telemetry::RecordComplete(telemetry::kCategoryService,
                              StrCat("queue-wait ", tenant), "",
                              queue_start_sim, 0.0,
                              {{"wait_ms", static_cast<int64_t>(queue_wait_ms)}});
  }

  WallTimer run_timer;
  int slot = AcquireSlot();
  Coordinator* coordinator = slots_[static_cast<size_t>(slot)].coordinator.get();

  auto meter_result = governor_.StartQuery(tenant, attempt_token);
  if (!meter_result.ok()) {
    ReleaseSlot(slot);
    admission_.Release(run_timer.ElapsedSeconds() * 1e3);
    return meter_result.status();
  }
  std::unique_ptr<MemoryGovernor::QueryMeter> meter =
      std::move(meter_result).ValueOrDie();

  CoordinatorOptions co = coordinator->options();
  co.cancel = attempt_token;
  co.deadline_simulated_seconds =
      options.deadline_seconds > 0.0
          ? cluster_->transport()->simulated_seconds() + options.deadline_seconds
          : 0.0;
  if (options.deadline_seconds > 0.0 &&
      co.retry.fragment_timeout_seconds <= 0.0) {
    co.retry.fragment_timeout_seconds = options.deadline_seconds;
  }
  coordinator->set_options(co);

  // Attribute expression-compiler activity to the tenant: snapshot the
  // process-wide counters around the run and charge the delta. Best-effort
  // under concurrency (overlapping queries may swap some counts), exact in
  // the common serial case — good enough for per-tenant cache dashboards.
  auto& mreg = telemetry::MetricsRegistry::Global();
  telemetry::Counter* compile_c = mreg.counter("expr.compile");
  telemetry::Counter* cache_hit_c = mreg.counter("expr.compile_cache_hit");
  telemetry::Counter* spill_ops_c = mreg.counter("spill.ops");
  telemetry::Counter* spill_parts_c = mreg.counter("spill.partitions");
  telemetry::Counter* spill_bytes_c = mreg.counter("spill.bytes_written");
  const int64_t compiles0 = compile_c->value();
  const int64_t cache_hits0 = cache_hit_c->value();
  const int64_t spill_ops0 = spill_ops_c->value();
  const int64_t spill_parts0 = spill_parts_c->value();
  const int64_t spill_bytes0 = spill_bytes_c->value();

  Result<Dataset> result{Status::Internal("query did not run")};
  {
    TaskContext ctx;
    ctx.cancel = attempt_token.get();
    ctx.weight = QueryClassWeight(options.query_class);
    ctx.meter = meter.get();
    ScopedTaskContext scoped(&ctx);
    if (explain != nullptr) {
      auto analyzed = coordinator->ExplainAnalyze(plan);
      if (analyzed.ok()) {
        *explain = std::move(analyzed).ValueOrDie();
        result = Result<Dataset>(Dataset());
      } else {
        result = analyzed.status();
      }
    } else {
      result = coordinator->Execute(plan);
    }
  }
  // A fired token outranks the downstream outcome — even a success. A query
  // the governor killed must not count as completed (its reservation is being
  // reclaimed), and the client should see "killed: over budget", not the
  // fragment-level symptom or a lucky fast finish.
  if (attempt_token->cancelled()) {
    result = attempt_token->status();
  }

  co.cancel = nullptr;
  co.deadline_simulated_seconds = 0.0;
  co.retry.fragment_timeout_seconds =
      options_.coordinator.retry.fragment_timeout_seconds;
  coordinator->set_options(co);

  const int64_t expr_compiles = compile_c->value() - compiles0;
  const int64_t expr_cache_hits = cache_hit_c->value() - cache_hits0;
  if (expr_compiles > 0) ins.expr_compiles->Add(expr_compiles);
  if (expr_cache_hits > 0) ins.expr_cache_hits->Add(expr_cache_hits);
  report->expr_compiles += expr_compiles;
  report->expr_cache_hits += expr_cache_hits;

  const int64_t spill_ops = spill_ops_c->value() - spill_ops0;
  const int64_t spill_parts = spill_parts_c->value() - spill_parts0;
  const int64_t spill_bytes = spill_bytes_c->value() - spill_bytes0;
  if (spill_ops > 0) ins.spill_ops->Add(spill_ops);
  if (spill_parts > 0) ins.spill_partitions->Add(spill_parts);
  if (spill_bytes > 0) ins.spill_bytes->Add(spill_bytes);
  report->spill_partitions += spill_parts;
  report->spill_bytes += spill_bytes;
  report->released_bytes += meter->released();

  report->reserved_bytes += meter->charged();
  ins.reserved_bytes->Record(static_cast<double>(meter->charged()));
  governor_.FinishQuery(meter.get());
  ReleaseSlot(slot);
  double run_ms = run_timer.ElapsedSeconds() * 1e3;
  admission_.Release(run_ms);
  admission_.Poke();  // FinishQuery may have made a held-back tenant eligible
  return result;
}

Result<Dataset> Server::RunQuery(
    const std::string& tenant, const PlanPtr& plan, const QueryOptions& options,
    CancelTokenPtr user_token, int64_t query_id,
    std::vector<std::pair<std::string, Dataset>> bindings, QueryReport* report,
    std::string* explain) {
  WallTimer timer;
  TenantInstruments ins = TenantInstruments::For(tenant);
  report->tenant = tenant;
  report->query_class = options.query_class;

  std::vector<std::pair<std::string, std::string>> uploaded;
  auto rewritten = UploadBindings(query_id, plan, &bindings, &uploaded);
  if (!rewritten.ok()) {
    DropBindings(uploaded);
    return rewritten.status();
  }
  PlanPtr effective = std::move(rewritten).ValueOrDie();

  // Attempt 1 runs on the user token itself, so a client Cancel() reaches
  // the coordinator and morsel loops directly.
  Result<Dataset> result = RunAttempt(tenant, effective, options, user_token,
                                      report, explain);
  bool killed = !result.ok() && result.status().IsResourceExhausted() &&
                user_token->cancelled() &&
                user_token->status().IsResourceExhausted();
  if (killed) {
    report->admission = "killed";
    ins.killed->Increment();
  }
  if (killed && options_.requeue_on_kill) {
    // One requeue: a fresh token (the old one is burnt), a fresh trip
    // through admission — where the governor's eligibility predicate holds
    // the query back until its tenant is under budget again.
    report->requeues += 1;
    ins.requeued->Increment();
    CancelTokenPtr retry_token = std::make_shared<CancelToken>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = queries_.find(query_id);
      if (it != queries_.end()) {
        // Re-point Cancel() at the live attempt.
        it->second->user_token = retry_token;
      }
    }
    result = RunAttempt(tenant, effective, options, retry_token, report,
                        explain);
    if (!result.ok() && result.status().IsResourceExhausted()) {
      report->admission = "killed";
      ins.killed->Increment();
    }
  }

  DropBindings(uploaded);
  report->latency_ms = timer.ElapsedSeconds() * 1e3;
  ins.latency_ms->Record(report->latency_ms);
  if (result.ok()) {
    ins.completed->Increment();
  } else {
    ins.failed->Increment();
  }
  return result;
}

Result<Dataset> Server::Execute(
    int64_t session, const PlanPtr& plan, const QueryOptions& options,
    QueryReport* report, std::vector<std::pair<std::string, Dataset>> bindings) {
  std::string tenant;
  int64_t query_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second.open) {
      return Status::NotFound(StrCat("no open session ", session));
    }
    tenant = it->second.tenant;
    query_id = next_query_++;
  }
  QueryReport local;
  QueryReport* rp = report != nullptr ? report : &local;
  return RunQuery(tenant, plan, options, std::make_shared<CancelToken>(),
                  query_id, std::move(bindings), rp, /*explain=*/nullptr);
}

Result<int64_t> Server::Submit(
    int64_t session, const PlanPtr& plan, const QueryOptions& options,
    std::vector<std::pair<std::string, Dataset>> bindings) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    return Status::NotFound(StrCat("no open session ", session));
  }
  std::string tenant = it->second.tenant;
  int64_t id = next_query_++;
  auto query = std::make_unique<Query>();
  Query* q = query.get();
  q->id = id;
  q->session = session;
  q->tenant = tenant;
  q->options = options;
  q->user_token = std::make_shared<CancelToken>();
  queries_[id] = std::move(query);
  CancelTokenPtr token = q->user_token;
  auto shared_bindings =
      std::make_shared<std::vector<std::pair<std::string, Dataset>>>(
          std::move(bindings));
  q->worker = std::thread([this, q, plan, options, token, id, tenant,
                           shared_bindings] {
    QueryReport report;
    Result<Dataset> result =
        RunQuery(tenant, plan, options, token, id,
                 std::move(*shared_bindings), &report, /*explain=*/nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    q->result = std::move(result);
    q->report = report;
    q->done = true;
    queries_cv_.notify_all();
  });
  return id;
}

Result<Dataset> Server::Wait(int64_t query, QueryReport* report) {
  std::thread worker;
  Result<Dataset> result{Status::Internal("query not finished")};
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = queries_.find(query);
    if (it == queries_.end()) {
      return Status::NotFound(StrCat("no such query ", query));
    }
    Query* q = it->second.get();
    queries_cv_.wait(lock, [q] { return q->done; });
    worker = std::move(q->worker);
    result = std::move(q->result);
    if (report != nullptr) *report = q->report;
    queries_.erase(it);
  }
  if (worker.joinable()) worker.join();
  return result;
}

Status Server::Cancel(int64_t query) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query);
    if (it == queries_.end()) {
      return Status::NotFound(StrCat("no such query ", query));
    }
    it->second->user_token->Cancel(StatusCode::kCancelled,
                                   StrCat("query ", query, " cancelled"));
  }
  admission_.Poke();  // wake it if it is still waiting in the queue
  return Status::OK();
}

Result<std::string> Server::ExplainAnalyze(int64_t session, const PlanPtr& plan,
                                           const QueryOptions& options) {
  std::string tenant;
  int64_t query_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second.open) {
      return Status::NotFound(StrCat("no open session ", session));
    }
    tenant = it->second.tenant;
    query_id = next_query_++;
  }
  QueryReport report;
  std::string analyzed;
  auto run = RunQuery(tenant, plan, options, std::make_shared<CancelToken>(),
                      query_id, {}, &report, &analyzed);
  NEXUS_RETURN_NOT_OK(run.status());
  return StrCat("admission: queued=", FormatDouble(report.queue_wait_ms, 2),
                "ms class=", QueryClassName(options.query_class),
                " governor=", report.admission, "\n", analyzed);
}

}  // namespace service
}  // namespace nexus
