#include "service/admission.h"

#include <algorithm>
#include <chrono>

#include "common/str_util.h"

namespace nexus {
namespace service {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kStandard:
      return "standard";
    case QueryClass::kBatch:
      return "batch";
  }
  return "?";
}

int QueryClassWeight(QueryClass c) {
  switch (c) {
    case QueryClass::kInteractive:
      return 8;
    case QueryClass::kStandard:
      return 4;
    case QueryClass::kBatch:
      return 1;
  }
  return 1;
}

Status AdmissionController::Admit(QueryClass cls, const std::string& tenant,
                                  const CancelToken* cancel,
                                  std::function<bool()> eligible,
                                  double* queue_wait_ms) {
  if (queue_wait_ms != nullptr) *queue_wait_ms = 0.0;
  auto start = std::chrono::steady_clock::now();
  Ticket ticket;
  ticket.cls = cls;
  ticket.eligible = eligible ? &eligible : nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  ticket.seq = next_seq_++;
  // Optimistically enqueue and dispatch; capacity only gates tickets that
  // actually end up waiting. A ticket granted straight into a free slot never
  // occupies a queue position, while an ineligible ticket does even when
  // slots are free.
  waiting_.push_back(&ticket);
  Dispatch();
  if (!ticket.granted &&
      static_cast<int>(waiting_.size()) > options_.queue_capacity) {
    waiting_.remove(&ticket);
    ++rejected_;
    return Status::ResourceExhausted(
        StrCat("admission queue full (", waiting_.size(),
               " waiting) for tenant '", tenant, "'; retry after ~",
               static_cast<int64_t>(RetryAfterMillisLocked() + 0.5), "ms"));
  }
  cv_.wait(lock, [&] {
    if (ticket.granted) return true;
    if (cancel != nullptr && cancel->cancelled()) return true;
    // Re-poll eligibility: a Poke may have made this ticket grantable.
    Dispatch();
    return ticket.granted;
  });
  if (!ticket.granted) {
    // Cancelled while queued: withdraw the ticket; the caller unwinds and
    // releases whatever it staged before admission (bindings, temps).
    waiting_.remove(&ticket);
    Dispatch();  // our departure may unblock a later ticket
    cv_.notify_all();
    return cancel->status();
  }
  ++admitted_;
  if (queue_wait_ms != nullptr) {
    *queue_wait_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
  }
  return Status::OK();
}

void AdmissionController::Dispatch() {
  while (free_slots_ > 0) {
    Ticket* best = nullptr;
    for (Ticket* t : waiting_) {
      if (t->granted) continue;
      if (t->eligible != nullptr && !(*t->eligible)()) continue;
      if (best == nullptr || t->cls < best->cls ||
          (t->cls == best->cls && t->seq < best->seq)) {
        best = t;
      }
    }
    if (best == nullptr) return;
    best->granted = true;
    --free_slots_;
    waiting_.remove(best);
    cv_.notify_all();
  }
}

void AdmissionController::Release(double service_wall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++free_slots_;
  if (service_wall_ms >= 0.0) {
    constexpr double kAlpha = 0.3;
    ewma_service_ms_ = ewma_seeded_
                           ? (1.0 - kAlpha) * ewma_service_ms_ +
                                 kAlpha * service_wall_ms
                           : service_wall_ms;
    ewma_seeded_ = true;
  }
  Dispatch();
  cv_.notify_all();
}

void AdmissionController::Poke() {
  std::lock_guard<std::mutex> lock(mu_);
  Dispatch();
  cv_.notify_all();
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

int64_t AdmissionController::queued_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(waiting_.size());
}

double AdmissionController::RetryAfterMillis() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterMillisLocked();
}

double AdmissionController::RetryAfterMillisLocked() const {
  // Expected drain time of one queue position: every query ahead of a
  // retrying client must pass through one of max_concurrent slots.
  double per_slot = ewma_seeded_ ? ewma_service_ms_ : 10.0;  // cold guess
  double depth = static_cast<double>(waiting_.size() + 1);
  return std::max(1.0, per_slot * depth /
                           std::max(1, options_.max_concurrent));
}

}  // namespace service
}  // namespace nexus
