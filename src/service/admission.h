// Admission control: the service's front door.
//
// Desideratum: a shared big-data service must degrade gracefully, not
// collapse, when offered more work than it can run. The controller bounds
// both the running set (max_concurrent execution slots) and the waiting set
// (queue_capacity); work beyond both is rejected *deterministically* with
// kResourceExhausted and a retry-after hint derived from observed service
// times — the client-visible contract is "come back in ~N ms", never a
// hang or a crash.
//
// Queued work is released in (class, arrival) order: all waiting
// kInteractive tickets beat all kStandard beat all kBatch, FIFO within a
// class. An injected eligibility predicate lets the memory governor hold
// back tickets of an over-budget tenant without ejecting them — the
// "queue" half of its kill-or-queue policy.
#ifndef NEXUS_SERVICE_ADMISSION_H_
#define NEXUS_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/status.h"

namespace nexus {
namespace service {

/// Scheduling class of one query. Order is priority order: lower enum
/// value admits (and schedules) first.
enum class QueryClass {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};

const char* QueryClassName(QueryClass c);

/// Morsel-pool scheduling weight of each class (see TaskContext::weight):
/// interactive regions claim workers 8× as fast as batch regions.
int QueryClassWeight(QueryClass c);

struct AdmissionOptions {
  /// Execution slots: queries running at once.
  int max_concurrent = 4;
  /// Tickets allowed to wait for a slot; arrivals beyond this are rejected.
  int queue_capacity = 16;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options), free_slots_(options.max_concurrent) {}

  /// Blocks until an execution slot is granted, then returns OK.
  /// Immediately returns kResourceExhausted (retryable, with a retry-after
  /// hint) when the wait queue is full. Returns the cancel token's status
  /// if it fires while queued (the caller still owns any state it staged
  /// before admission — release it). `eligible`, when set, must be true for
  /// the ticket to be granted a slot; it is re-polled on every wake.
  /// `queue_wait_ms`, when set, receives the wall milliseconds spent
  /// waiting (0 for immediate admission).
  Status Admit(QueryClass cls, const std::string& tenant,
               const CancelToken* cancel, std::function<bool()> eligible,
               double* queue_wait_ms);

  /// Returns an execution slot and feeds the observed service time (wall
  /// ms) into the retry-after estimate.
  void Release(double service_wall_ms);

  /// Wakes all waiters to re-poll their eligibility (call after anything
  /// that may have turned an ineligible tenant eligible, e.g. a query
  /// finished and released its memory).
  void Poke();

  int64_t admitted() const;
  int64_t rejected() const;
  /// Tickets currently waiting.
  int64_t queued_now() const;
  /// Milliseconds a client should wait before retrying after a rejection:
  /// expected queue drain time from the service-time EWMA.
  double RetryAfterMillis() const;

 private:
  struct Ticket {
    QueryClass cls;
    int64_t seq = 0;
    bool granted = false;
    const std::function<bool()>* eligible = nullptr;  // null = always
  };

  /// Grants free slots to waiting eligible tickets in (class, seq) order.
  /// Caller holds mu_.
  void Dispatch();
  double RetryAfterMillisLocked() const;  // caller holds mu_

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int free_slots_;
  int64_t next_seq_ = 0;
  std::list<Ticket*> waiting_;  // unordered; Dispatch scans for the best
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  /// EWMA of observed service times (wall ms); seeds the retry-after hint.
  double ewma_service_ms_ = 0.0;
  bool ewma_seeded_ = false;
};

}  // namespace service
}  // namespace nexus

#endif  // NEXUS_SERVICE_ADMISSION_H_
