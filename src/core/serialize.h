// Wire format for algebra plans: s-expressions.
//
// "It can pass queries to Providers in the form of an expression tree,
// rather than as a series of remote function calls" — this module is that
// capability. The format is textual, stable, and self-contained: a plan
// serialized on the client parses back identically on a server (including
// inline Values data, nested Iterate bodies, and scalar expressions).
#ifndef NEXUS_CORE_SERIALIZE_H_
#define NEXUS_CORE_SERIALIZE_H_

#include <string>

#include "core/plan.h"

namespace nexus {

/// Serializes a plan tree to the s-expression wire form.
std::string SerializePlan(const Plan& plan);

/// Parses a serialized plan. Inverse of SerializePlan (round-trip exact up
/// to structural equality).
Result<PlanPtr> ParsePlan(const std::string& wire);

/// Serializes a scalar expression (exposed for tests and debugging).
std::string SerializeExpr(const Expr& expr);
Result<ExprPtr> ParseExpr(const std::string& wire);

/// Serializes a dataset (schema + rows; array datasets keep their chunk
/// geometry so they re-materialize as arrays).
std::string SerializeDataset(const Dataset& data);
Result<Dataset> ParseDataset(const std::string& wire);

}  // namespace nexus

#endif  // NEXUS_CORE_SERIALIZE_H_
