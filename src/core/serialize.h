// Wire formats for algebra plans and datasets.
//
// "It can pass queries to Providers in the form of an expression tree,
// rather than as a series of remote function calls" — this module is that
// capability. Two encodings exist:
//
//  * The textual s-expression form: stable, human-readable, accepted by
//    every peer. A plan serialized on the client parses back identically on
//    a server (including inline Values data, nested Iterate bodies, and
//    scalar expressions).
//  * NXB1, a versioned binary columnar form for datasets: length-prefixed
//    typed column blocks lifted straight out of types/column.h's native
//    vectors (memcpy for fixed-width data, offset-table strings, bitmap
//    nulls, chunk geometry for arrays) with optional RLE / dictionary /
//    frame-of-reference encoding chosen per block by encoded size.
//
// Plans always stay textual; with WireFormat::kBinary their embedded Values
// datasets become length-prefixed NXB1 blobs (`#<len>:<bytes>`), so a binary
// plan wire is 8-bit clean but still structurally an s-expression.
//
// On top of the wire sits a small envelope used by the provider plan cache:
// the coordinator fingerprints each plan wire and, once a provider has
// parsed + optimized that fingerprint, ships only the fingerprint plus the
// changed LoopVar bindings (`%NXB1-EXEC`) instead of the whole plan.
#ifndef NEXUS_CORE_SERIALIZE_H_
#define NEXUS_CORE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/plan.h"
#include "core/wire_format.h"

namespace nexus {

/// Serializes a plan tree to the textual s-expression wire form
/// (equivalent to SerializePlanWire with WireFormat::kText).
std::string SerializePlan(const Plan& plan);

/// Serializes a plan tree for shipping in the given wire format. With
/// kBinary, embedded Values datasets are emitted as NXB1 blobs.
std::string SerializePlanWire(const Plan& plan, WireFormat format);

/// Parses a serialized plan (either format — blobs are self-describing).
/// Inverse of SerializePlan / SerializePlanWire (round-trip exact up to
/// structural equality).
Result<PlanPtr> ParsePlan(std::string_view wire);

/// Serializes a scalar expression (exposed for tests and debugging).
std::string SerializeExpr(const Expr& expr);
Result<ExprPtr> ParseExpr(std::string_view wire);

/// Serializes a dataset to the textual form (schema + rows; array datasets
/// keep their chunk geometry so they re-materialize as arrays).
std::string SerializeDataset(const Dataset& data);
Result<Dataset> ParseDataset(std::string_view wire);

/// Serializes a dataset in the given wire format (kBinary → NXB1 blocks).
std::string SerializeDatasetWire(const Dataset& data, WireFormat format);

/// Parses a dataset in either format, sniffing the NXB1 magic. Every read
/// is bounds-checked: truncated or corrupt buffers come back as
/// SerializationError, never a crash.
Result<Dataset> ParseDatasetWire(std::string_view wire);

/// 64-bit fingerprint of a serialized plan wire (FNV-1a over the bytes with
/// an fmix64 finalizer). Never returns 0, so 0 can mean "no fingerprint".
uint64_t FingerprintWire(std::string_view wire);

// ---------------------------------------------------------------------------
// Plan-cache envelope.
// ---------------------------------------------------------------------------

/// A parsed shipping envelope. Views point into the input buffer and are
/// only valid while it lives.
struct WireEnvelope {
  enum class Kind {
    kNone,        ///< bare plan wire, no envelope
    kPlanStore,   ///< full plan + bindings; provider should cache it
    kExecCached,  ///< fingerprint + bindings only; provider must have it
  };
  Kind kind = Kind::kNone;
  uint64_t fingerprint = 0;
  /// Named datasets (name → dataset wire in either format) the provider
  /// registers for the duration of this execution — LoopVar bindings.
  std::vector<std::pair<std::string_view, std::string_view>> bindings;
  /// The plan wire (kNone / kPlanStore; empty for kExecCached).
  std::string_view plan_wire;
};

/// Builds the shipping envelope. kNone returns plan_wire untouched (callers
/// should not pay the envelope when they don't need bindings or caching).
std::string BuildWireEnvelope(
    WireEnvelope::Kind kind, uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::string>>& bindings,
    std::string_view plan_wire);

/// Parses a shipping envelope; bare plan wires come back as kNone with
/// plan_wire = the whole input.
Result<WireEnvelope> ParseWireEnvelope(std::string_view wire);

/// Message substring of the NotFound status a provider returns for an
/// kExecCached fingerprint it no longer has; the coordinator re-ships the
/// full plan when it sees this marker.
inline constexpr std::string_view kPlanCacheMissMarker = "plan-cache miss";

// ---------------------------------------------------------------------------
// Delta bindings (incremental Iterate — see exec/incremental).
// ---------------------------------------------------------------------------

/// A binding value that carries only the rows appended since the provider's
/// sticky copy of the same binding name:
///   %NXB1-DELTA <base_rows> <chain_fp>\n<tail dataset wire>
/// `base_rows` is the row count of the base the tail extends; `chain_fp` is
/// the fingerprint chain of every wire that built the base (full wire, then
/// each accepted tail), so two coordinators interleaving the same binding
/// name on one provider can never silently append onto each other's state —
/// a mismatched chain is a miss, answered by re-shipping the full value.
struct DeltaBindingView {
  int64_t base_rows = 0;
  uint64_t chain_fp = 0;
  std::string_view tail_wire;  ///< points into the input buffer
};

std::string BuildDeltaBindingWire(int64_t base_rows, uint64_t chain_fp,
                                  std::string_view tail_wire);
bool IsDeltaBindingWire(std::string_view wire);
Result<DeltaBindingView> ParseDeltaBindingWire(std::string_view wire);

/// Extends a binding fingerprint chain with one more shipped wire. Pass 0 as
/// `prev` for the initial full-value wire. Never returns 0.
uint64_t ChainFingerprint(uint64_t prev, std::string_view wire);

/// Message substring of the NotFound status a provider returns for a delta
/// binding whose base it does not hold (wrong row count, wrong chain, or
/// evicted); the coordinator re-ships the full binding value when it sees
/// this marker.
inline constexpr std::string_view kDeltaBindingMissMarker =
    "delta-binding miss";

}  // namespace nexus

#endif  // NEXUS_CORE_SERIALIZE_H_
