// Wire-format selection for federated interchange.
//
// Two encodings can cross the simulated wire: the legacy textual
// s-expression form (human-readable, accepted by every peer) and NXB1, the
// binary columnar form (core/serialize.h). Endpoints advertise what they
// accept; each link settles on the newest format both ends speak, so a
// cluster with one legacy peer keeps working and `NEXUS_WIRE=text` pins the
// whole process to the textual form for debugging.
#ifndef NEXUS_CORE_WIRE_FORMAT_H_
#define NEXUS_CORE_WIRE_FORMAT_H_

namespace nexus {

enum class WireFormat : int {
  kText = 0,    ///< s-expression wire (every peer accepts this)
  kBinary = 1,  ///< NXB1 binary columnar blocks
};

const char* WireFormatName(WireFormat f);

/// Process-wide preferred format: kBinary unless overridden. Reads the
/// NEXUS_WIRE environment variable once ("text" | "binary"); a programmatic
/// override (benches, tests) wins over the environment.
WireFormat ProcessWireFormat();

/// Overrides ProcessWireFormat for this process (benches run text-vs-binary
/// ablations through this). Call ClearWireFormatOverride to fall back to the
/// environment again.
void SetWireFormatOverride(WireFormat f);
void ClearWireFormatOverride();

}  // namespace nexus

#endif  // NEXUS_CORE_WIRE_FORMAT_H_
