#include "core/serialize.h"

#include <cstdlib>

#include "common/str_util.h"

namespace nexus {

// ---------------------------------------------------------------------------
// Generic s-expression layer.
// ---------------------------------------------------------------------------

namespace {

struct Sexpr {
  enum class Kind { kList, kSymbol, kString, kInt, kFloat };
  Kind kind = Kind::kList;
  std::vector<Sexpr> items;  // kList
  std::string text;          // kSymbol / kString
  int64_t i = 0;             // kInt
  double f = 0.0;            // kFloat

  static Sexpr List(std::vector<Sexpr> items) {
    Sexpr s;
    s.kind = Kind::kList;
    s.items = std::move(items);
    return s;
  }
  static Sexpr Sym(std::string t) {
    Sexpr s;
    s.kind = Kind::kSymbol;
    s.text = std::move(t);
    return s;
  }
  static Sexpr Str(std::string t) {
    Sexpr s;
    s.kind = Kind::kString;
    s.text = std::move(t);
    return s;
  }
  static Sexpr Int(int64_t v) {
    Sexpr s;
    s.kind = Kind::kInt;
    s.i = v;
    return s;
  }
  static Sexpr Float(double v) {
    Sexpr s;
    s.kind = Kind::kFloat;
    s.f = v;
    return s;
  }

  bool is_list() const { return kind == Kind::kList; }
  bool is_symbol() const { return kind == Kind::kSymbol; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_float() const { return kind == Kind::kFloat; }
  double as_number() const { return is_int() ? static_cast<double>(i) : f; }
};

void WriteSexpr(const Sexpr& s, std::string* out) {
  switch (s.kind) {
    case Sexpr::Kind::kList: {
      out->push_back('(');
      for (size_t i = 0; i < s.items.size(); ++i) {
        if (i > 0) out->push_back(' ');
        WriteSexpr(s.items[i], out);
      }
      out->push_back(')');
      return;
    }
    case Sexpr::Kind::kSymbol:
      out->append(s.text);
      return;
    case Sexpr::Kind::kString:
      out->push_back('"');
      out->append(EscapeString(s.text));
      out->push_back('"');
      return;
    case Sexpr::Kind::kInt:
      out->append(StrCat(s.i));
      return;
    case Sexpr::Kind::kFloat: {
      // %.17g guarantees float64 round-trip; mark as float with a decimal
      // point or exponent so the reader keeps the kind.
      std::string t = FormatDouble(s.f, 17);
      if (t.find('.') == std::string::npos && t.find('e') == std::string::npos &&
          t.find("inf") == std::string::npos && t.find("nan") == std::string::npos) {
        t += ".0";
      }
      out->append(t);
      return;
    }
  }
}

class SexprParser {
 public:
  explicit SexprParser(const std::string& input) : input_(input) {}

  Result<Sexpr> Parse() {
    NEXUS_ASSIGN_OR_RETURN(Sexpr s, ParseOne());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::SerializationError(
          StrCat("trailing input at offset ", pos_));
    }
    return s;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<Sexpr> ParseOne() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return Status::SerializationError("unexpected end of input");
    }
    char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      std::vector<Sexpr> items;
      while (true) {
        SkipSpace();
        if (pos_ >= input_.size()) {
          return Status::SerializationError("unterminated list");
        }
        if (input_[pos_] == ')') {
          ++pos_;
          return Sexpr::List(std::move(items));
        }
        NEXUS_ASSIGN_OR_RETURN(Sexpr item, ParseOne());
        items.push_back(std::move(item));
      }
    }
    if (c == '"') return ParseString();
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumberOrSymbol();
    }
    return ParseSymbol();
  }

  Result<Sexpr> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') return Sexpr::Str(std::move(out));
      if (c == '\\' && pos_ < input_.size()) {
        char e = input_[pos_++];
        switch (e) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            out.push_back(e);
        }
        continue;
      }
      out.push_back(c);
    }
    return Status::SerializationError("unterminated string literal");
  }

  Result<Sexpr> ParseNumberOrSymbol() {
    size_t start = pos_;
    while (pos_ < input_.size() && !std::isspace(static_cast<unsigned char>(input_[pos_])) &&
           input_[pos_] != '(' && input_[pos_] != ')') {
      ++pos_;
    }
    std::string tok = input_.substr(start, pos_ - start);
    if (tok == "-" || tok == "+") return Sexpr::Sym(std::move(tok));
    char* end = nullptr;
    if (tok.find('.') == std::string::npos && tok.find('e') == std::string::npos &&
        tok.find("inf") == std::string::npos && tok.find("nan") == std::string::npos) {
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end && *end == '\0') return Sexpr::Int(v);
    }
    double d = std::strtod(tok.c_str(), &end);
    if (end && *end == '\0') return Sexpr::Float(d);
    return Sexpr::Sym(std::move(tok));
  }

  Result<Sexpr> ParseSymbol() {
    size_t start = pos_;
    while (pos_ < input_.size() && !std::isspace(static_cast<unsigned char>(input_[pos_])) &&
           input_[pos_] != '(' && input_[pos_] != ')' && input_[pos_] != '"') {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::SerializationError(
          StrCat("unexpected character '", input_[pos_], "' at offset ", pos_));
    }
    return Sexpr::Sym(input_.substr(start, pos_ - start));
  }

  const std::string& input_;
  size_t pos_ = 0;
};

Status Expect(const Sexpr& s, size_t min_items, const char* what) {
  if (!s.is_list() || s.items.size() < min_items || !s.items[0].is_symbol()) {
    return Status::SerializationError(StrCat("malformed ", what, " node"));
  }
  return Status::OK();
}

Result<std::string> AsString(const Sexpr& s, const char* what) {
  if (!s.is_string()) {
    return Status::SerializationError(StrCat("expected string for ", what));
  }
  return s.text;
}

Result<int64_t> AsInt(const Sexpr& s, const char* what) {
  if (!s.is_int()) {
    return Status::SerializationError(StrCat("expected integer for ", what));
  }
  return s.i;
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

Sexpr ExprToSexpr(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      if (v.is_null()) return Sexpr::List({Sexpr::Sym("null")});
      if (v.is_bool()) {
        return Sexpr::List({Sexpr::Sym(v.AsBool() ? "true" : "false")});
      }
      if (v.is_int64()) {
        return Sexpr::List({Sexpr::Sym("i64"), Sexpr::Int(v.AsInt64())});
      }
      if (v.is_float64()) {
        return Sexpr::List({Sexpr::Sym("f64"), Sexpr::Float(v.AsFloat64())});
      }
      return Sexpr::List({Sexpr::Sym("str"), Sexpr::Str(v.AsString())});
    }
    case ExprKind::kColumnRef:
      return Sexpr::List({Sexpr::Sym("col"), Sexpr::Str(e.column_name())});
    case ExprKind::kUnary:
      return Sexpr::List(
          {Sexpr::Sym(UnaryOpName(e.unary_op())), ExprToSexpr(*e.child(0))});
    case ExprKind::kBinary:
      return Sexpr::List({Sexpr::Sym(BinaryOpName(e.binary_op())),
                          ExprToSexpr(*e.child(0)), ExprToSexpr(*e.child(1))});
    case ExprKind::kFuncCall: {
      std::vector<Sexpr> items = {Sexpr::Sym("call"), Sexpr::Str(e.func_name())};
      for (const ExprPtr& c : e.children()) items.push_back(ExprToSexpr(*c));
      return Sexpr::List(std::move(items));
    }
    case ExprKind::kCast:
      return Sexpr::List({Sexpr::Sym("cast"),
                          Sexpr::Sym(DataTypeName(e.cast_target())),
                          ExprToSexpr(*e.child(0))});
  }
  return Sexpr::List({});
}

Result<ExprPtr> ExprFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 1, "expression"));
  const std::string& head = s.items[0].text;
  // Heads that require an argument item (guarded before the [1] accesses).
  if ((head == "i64" || head == "f64" || head == "str" || head == "col" ||
       head == "call") &&
      s.items.size() < 2) {
    return Status::SerializationError(StrCat("malformed ", head, " node"));
  }
  if (head == "null") return Expr::Literal(Value::Null());
  if (head == "true") return Expr::Literal(Value::Bool(true));
  if (head == "false") return Expr::Literal(Value::Bool(false));
  if (head == "i64") {
    NEXUS_ASSIGN_OR_RETURN(int64_t v, AsInt(s.items[1], "i64 literal"));
    return Expr::Literal(Value::Int64(v));
  }
  if (head == "f64") {
    if (s.items.size() < 2 || (!s.items[1].is_float() && !s.items[1].is_int())) {
      return Status::SerializationError("malformed f64 literal");
    }
    return Expr::Literal(Value::Float64(s.items[1].as_number()));
  }
  if (head == "str") {
    NEXUS_ASSIGN_OR_RETURN(std::string v, AsString(s.items[1], "str literal"));
    return Expr::Literal(Value::String(std::move(v)));
  }
  if (head == "col") {
    NEXUS_ASSIGN_OR_RETURN(std::string v, AsString(s.items[1], "column name"));
    return Expr::ColumnRef(std::move(v));
  }
  if (head == "call") {
    NEXUS_ASSIGN_OR_RETURN(std::string fn, AsString(s.items[1], "function name"));
    std::vector<ExprPtr> args;
    for (size_t i = 2; i < s.items.size(); ++i) {
      NEXUS_ASSIGN_OR_RETURN(ExprPtr a, ExprFromSexpr(s.items[i]));
      args.push_back(std::move(a));
    }
    return Expr::FuncCall(std::move(fn), std::move(args));
  }
  if (head == "cast") {
    if (s.items.size() != 3 || !s.items[1].is_symbol()) {
      return Status::SerializationError("malformed cast");
    }
    NEXUS_ASSIGN_OR_RETURN(DataType t, DataTypeFromName(s.items[1].text));
    NEXUS_ASSIGN_OR_RETURN(ExprPtr c, ExprFromSexpr(s.items[2]));
    return Expr::Cast(t, std::move(c));
  }
  if (auto u = UnaryOpFromName(head); u.ok()) {
    if (s.items.size() != 2) {
      return Status::SerializationError("malformed unary expression");
    }
    NEXUS_ASSIGN_OR_RETURN(ExprPtr c, ExprFromSexpr(s.items[1]));
    return Expr::Unary(u.ValueOrDie(), std::move(c));
  }
  if (auto b = BinaryOpFromName(head); b.ok()) {
    if (s.items.size() != 3) {
      return Status::SerializationError("malformed binary expression");
    }
    NEXUS_ASSIGN_OR_RETURN(ExprPtr l, ExprFromSexpr(s.items[1]));
    NEXUS_ASSIGN_OR_RETURN(ExprPtr r, ExprFromSexpr(s.items[2]));
    return Expr::Binary(b.ValueOrDie(), std::move(l), std::move(r));
  }
  return Status::SerializationError(StrCat("unknown expression head: ", head));
}

// ---------------------------------------------------------------------------
// Datasets.
// ---------------------------------------------------------------------------

Sexpr ValueToSexpr(const Value& v) {
  if (v.is_null()) return Sexpr::Sym("null");
  if (v.is_bool()) return Sexpr::Sym(v.AsBool() ? "true" : "false");
  if (v.is_int64()) return Sexpr::Int(v.AsInt64());
  if (v.is_float64()) return Sexpr::Float(v.AsFloat64());
  return Sexpr::Str(v.AsString());
}

Result<Value> ValueFromSexpr(const Sexpr& s, DataType want) {
  if (s.is_symbol()) {
    if (s.text == "null") return Value::Null();
    if (s.text == "true") return Value::Bool(true);
    if (s.text == "false") return Value::Bool(false);
    return Status::SerializationError(StrCat("bad value symbol: ", s.text));
  }
  if (s.is_int()) {
    return want == DataType::kFloat64 ? Value::Float64(static_cast<double>(s.i))
                                      : Value::Int64(s.i);
  }
  if (s.is_float()) return Value::Float64(s.f);
  if (s.is_string()) return Value::String(s.text);
  return Status::SerializationError("bad value");
}

Sexpr SchemaToSexpr(const Schema& schema) {
  std::vector<Sexpr> items = {Sexpr::Sym("schema")};
  for (const Field& f : schema.fields()) {
    std::vector<Sexpr> fitems = {Sexpr::Sym("field"), Sexpr::Str(f.name),
                                 Sexpr::Sym(DataTypeName(f.type))};
    if (f.is_dimension) fitems.push_back(Sexpr::Sym("dim"));
    items.push_back(Sexpr::List(std::move(fitems)));
  }
  return Sexpr::List(std::move(items));
}

Result<SchemaPtr> SchemaFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 1, "schema"));
  if (s.items[0].text != "schema") {
    return Status::SerializationError("expected (schema ...)");
  }
  std::vector<Field> fields;
  for (size_t i = 1; i < s.items.size(); ++i) {
    const Sexpr& f = s.items[i];
    NEXUS_RETURN_NOT_OK(Expect(f, 3, "field"));
    NEXUS_ASSIGN_OR_RETURN(std::string name, AsString(f.items[1], "field name"));
    if (!f.items[2].is_symbol()) {
      return Status::SerializationError("field type must be a symbol");
    }
    NEXUS_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(f.items[2].text));
    bool dim = f.items.size() > 3 && f.items[3].is_symbol() &&
               f.items[3].text == "dim";
    fields.push_back(Field{std::move(name), type, dim});
  }
  return Schema::Make(std::move(fields));
}

Sexpr DatasetToSexpr(const Dataset& data) {
  std::vector<Sexpr> items = {Sexpr::Sym("dataset")};
  TablePtr table = data.AsTable().ValueOrDie();
  items.push_back(SchemaToSexpr(*table->schema()));
  if (data.is_array()) {
    std::vector<Sexpr> chunks = {Sexpr::Sym("chunks")};
    for (const DimensionSpec& d : data.array()->dims()) {
      chunks.push_back(Sexpr::Int(d.chunk_size));
    }
    items.push_back(Sexpr::List(std::move(chunks)));
  }
  std::vector<Sexpr> rows = {Sexpr::Sym("rows")};
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Sexpr> row;
    row.reserve(static_cast<size_t>(table->num_columns()));
    for (int c = 0; c < table->num_columns(); ++c) {
      row.push_back(ValueToSexpr(table->At(r, c)));
    }
    rows.push_back(Sexpr::List(std::move(row)));
  }
  items.push_back(Sexpr::List(std::move(rows)));
  return Sexpr::List(std::move(items));
}

Result<Dataset> DatasetFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 3, "dataset"));
  if (s.items[0].text != "dataset") {
    return Status::SerializationError("expected (dataset ...)");
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaFromSexpr(s.items[1]));
  size_t next = 2;
  std::vector<int64_t> chunk_sizes;
  bool is_array = false;
  if (s.items[next].is_list() && !s.items[next].items.empty() &&
      s.items[next].items[0].is_symbol() &&
      s.items[next].items[0].text == "chunks") {
    is_array = true;
    for (size_t i = 1; i < s.items[next].items.size(); ++i) {
      NEXUS_ASSIGN_OR_RETURN(int64_t c, AsInt(s.items[next].items[i], "chunk"));
      chunk_sizes.push_back(c);
    }
    ++next;
  }
  if (next >= s.items.size()) {
    return Status::SerializationError("dataset missing its rows section");
  }
  const Sexpr& rows = s.items[next];
  NEXUS_RETURN_NOT_OK(Expect(rows, 1, "rows"));
  if (rows.items[0].text != "rows") {
    return Status::SerializationError("expected (rows ...)");
  }
  TableBuilder builder(schema);
  std::vector<Value> row(static_cast<size_t>(schema->num_fields()));
  for (size_t r = 1; r < rows.items.size(); ++r) {
    const Sexpr& rs = rows.items[r];
    if (!rs.is_list() ||
        rs.items.size() != static_cast<size_t>(schema->num_fields())) {
      return Status::SerializationError(StrCat("row ", r, " has wrong arity"));
    }
    for (size_t c = 0; c < rs.items.size(); ++c) {
      NEXUS_ASSIGN_OR_RETURN(
          row[c], ValueFromSexpr(rs.items[c], schema->field(static_cast<int>(c)).type));
    }
    NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  if (!is_array) return Dataset(table);
  std::vector<std::string> dim_names;
  for (int i : schema->DimensionIndices()) {
    dim_names.push_back(schema->field(i).name);
  }
  if (dim_names.size() != chunk_sizes.size()) {
    return Status::SerializationError("chunk list does not match dimensions");
  }
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> arr,
                         NDArray::FromTable(*table, dim_names, chunk_sizes));
  return Dataset(NDArrayPtr(std::move(arr)));
}

// ---------------------------------------------------------------------------
// Plans.
// ---------------------------------------------------------------------------

Sexpr PlanToSexpr(const Plan& p);

Sexpr OptionalExprToSexpr(const ExprPtr& e) {
  if (e == nullptr) return Sexpr::Sym("none");
  return ExprToSexpr(*e);
}

Sexpr PlanToSexpr(const Plan& p) {
  std::vector<Sexpr> items = {Sexpr::Sym(OpKindName(p.kind()))};
  for (const PlanPtr& c : p.children()) items.push_back(PlanToSexpr(*c));
  switch (p.kind()) {
    case OpKind::kScan:
      items.push_back(Sexpr::Str(p.As<ScanOp>().table));
      break;
    case OpKind::kValues:
      items.push_back(DatasetToSexpr(p.As<ValuesOp>().data));
      break;
    case OpKind::kLoopVar:
      items.push_back(Sexpr::Sym(p.As<LoopVarOp>().previous ? "prev" : "curr"));
      break;
    case OpKind::kSelect:
      items.push_back(ExprToSexpr(*p.As<SelectOp>().predicate));
      break;
    case OpKind::kProject:
      for (const std::string& c : p.As<ProjectOp>().columns) {
        items.push_back(Sexpr::Str(c));
      }
      break;
    case OpKind::kExtend:
      for (const auto& [name, expr] : p.As<ExtendOp>().defs) {
        items.push_back(Sexpr::List(
            {Sexpr::Sym("def"), Sexpr::Str(name), ExprToSexpr(*expr)}));
      }
      break;
    case OpKind::kJoin: {
      const auto& op = p.As<JoinOp>();
      items.push_back(Sexpr::Sym(JoinTypeName(op.type)));
      std::vector<Sexpr> keys = {Sexpr::Sym("keys")};
      for (size_t i = 0; i < op.left_keys.size(); ++i) {
        keys.push_back(Sexpr::List(
            {Sexpr::Str(op.left_keys[i]), Sexpr::Str(op.right_keys[i])}));
      }
      items.push_back(Sexpr::List(std::move(keys)));
      items.push_back(OptionalExprToSexpr(op.residual));
      break;
    }
    case OpKind::kAggregate: {
      const auto& op = p.As<AggregateOp>();
      std::vector<Sexpr> by = {Sexpr::Sym("by")};
      for (const std::string& g : op.group_by) by.push_back(Sexpr::Str(g));
      items.push_back(Sexpr::List(std::move(by)));
      for (const AggSpec& a : op.aggs) {
        items.push_back(Sexpr::List({Sexpr::Sym("agg"),
                                     Sexpr::Sym(AggFuncName(a.func)),
                                     Sexpr::Str(a.output_name),
                                     OptionalExprToSexpr(a.input)}));
      }
      break;
    }
    case OpKind::kSort:
      for (const SortKey& k : p.As<SortOp>().keys) {
        items.push_back(Sexpr::List({Sexpr::Sym("key"), Sexpr::Str(k.column),
                                     Sexpr::Sym(k.ascending ? "asc" : "desc")}));
      }
      break;
    case OpKind::kLimit:
      items.push_back(Sexpr::Int(p.As<LimitOp>().limit));
      items.push_back(Sexpr::Int(p.As<LimitOp>().offset));
      break;
    case OpKind::kDistinct:
    case OpKind::kUnion:
    case OpKind::kUnbox:
      break;
    case OpKind::kRename:
      for (const auto& [from, to] : p.As<RenameOp>().mapping) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("map"), Sexpr::Str(from), Sexpr::Str(to)}));
      }
      break;
    case OpKind::kRebox: {
      const auto& op = p.As<ReboxOp>();
      items.push_back(Sexpr::Int(op.chunk_size));
      for (const std::string& d : op.dims) items.push_back(Sexpr::Str(d));
      break;
    }
    case OpKind::kSlice:
      for (const DimRange& r : p.As<SliceOp>().ranges) {
        items.push_back(Sexpr::List({Sexpr::Sym("range"), Sexpr::Str(r.dim),
                                     Sexpr::Int(r.lo), Sexpr::Int(r.hi)}));
      }
      break;
    case OpKind::kShift:
      for (const auto& [dim, delta] : p.As<ShiftOp>().offsets) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("off"), Sexpr::Str(dim), Sexpr::Int(delta)}));
      }
      break;
    case OpKind::kRegrid: {
      const auto& op = p.As<RegridOp>();
      items.push_back(Sexpr::Sym(AggFuncName(op.func)));
      for (const auto& [dim, f] : op.factors) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("factor"), Sexpr::Str(dim), Sexpr::Int(f)}));
      }
      break;
    }
    case OpKind::kTranspose:
      for (const std::string& d : p.As<TransposeOp>().dim_order) {
        items.push_back(Sexpr::Str(d));
      }
      break;
    case OpKind::kWindow: {
      const auto& op = p.As<WindowOp>();
      items.push_back(Sexpr::Sym(AggFuncName(op.func)));
      for (const auto& [dim, r] : op.radii) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("radius"), Sexpr::Str(dim), Sexpr::Int(r)}));
      }
      break;
    }
    case OpKind::kElemWise:
      items.push_back(Sexpr::Sym(BinaryOpName(p.As<ElemWiseOpSpec>().op)));
      break;
    case OpKind::kMatMul:
      items.push_back(Sexpr::Str(p.As<MatMulOp>().result_attr));
      break;
    case OpKind::kPageRank: {
      const auto& op = p.As<PageRankOp>();
      items.push_back(Sexpr::Str(op.src_col));
      items.push_back(Sexpr::Str(op.dst_col));
      items.push_back(Sexpr::Float(op.damping));
      items.push_back(Sexpr::Int(op.max_iters));
      items.push_back(Sexpr::Float(op.epsilon));
      break;
    }
    case OpKind::kIterate: {
      const auto& op = p.As<IterateOp>();
      items.push_back(PlanToSexpr(*op.body));
      items.push_back(op.measure == nullptr ? Sexpr::Sym("none")
                                            : PlanToSexpr(*op.measure));
      items.push_back(Sexpr::Float(op.epsilon));
      items.push_back(Sexpr::Int(op.max_iters));
      break;
    }
    case OpKind::kExchange: {
      const auto& op = p.As<ExchangeOp>();
      items.push_back(Sexpr::Str(op.target_server));
      items.push_back(Sexpr::Sym(TransferModeName(op.mode)));
      break;
    }
  }
  return Sexpr::List(std::move(items));
}

Result<PlanPtr> PlanFromSexpr(const Sexpr& s);

Result<ExprPtr> OptionalExprFromSexpr(const Sexpr& s) {
  if (s.is_symbol() && s.text == "none") return ExprPtr(nullptr);
  return ExprFromSexpr(s);
}

// Number of leading child-plan items for each operator.
Result<int> ChildCount(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
    case OpKind::kValues:
    case OpKind::kLoopVar:
      return 0;
    case OpKind::kJoin:
    case OpKind::kUnion:
    case OpKind::kElemWise:
    case OpKind::kMatMul:
      return 2;
    default:
      return 1;
  }
}

// Minimum argument (non-child) items required by each operator.
int MinArgCount(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
    case OpKind::kValues:
    case OpKind::kLoopVar:
    case OpKind::kSelect:
    case OpKind::kRebox:
    case OpKind::kRegrid:
    case OpKind::kWindow:
    case OpKind::kElemWise:
    case OpKind::kMatMul:
    case OpKind::kAggregate:
      return 1;
    case OpKind::kLimit:
    case OpKind::kExchange:
      return 2;
    case OpKind::kJoin:
      return 3;
    case OpKind::kIterate:
      return 4;
    case OpKind::kPageRank:
      return 5;
    default:
      return 0;
  }
}

Result<PlanPtr> PlanFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 1, "plan"));
  NEXUS_ASSIGN_OR_RETURN(OpKind kind, OpKindFromName(s.items[0].text));
  NEXUS_ASSIGN_OR_RETURN(int n_children, ChildCount(kind));
  if (static_cast<int>(s.items.size()) < 1 + n_children) {
    return Status::SerializationError(
        StrCat("operator ", OpKindName(kind), " missing children"));
  }
  std::vector<PlanPtr> children;
  for (int i = 0; i < n_children; ++i) {
    NEXUS_ASSIGN_OR_RETURN(PlanPtr c, PlanFromSexpr(s.items[static_cast<size_t>(1 + i)]));
    children.push_back(std::move(c));
  }
  size_t a = static_cast<size_t>(1 + n_children);  // first argument index
  size_t n_args = s.items.size() - a;
  if (n_args < static_cast<size_t>(MinArgCount(kind))) {
    return Status::SerializationError(
        StrCat("operator ", OpKindName(kind), " missing arguments"));
  }
  auto arg = [&](size_t i) -> const Sexpr& { return s.items[a + i]; };

  switch (kind) {
    case OpKind::kScan: {
      NEXUS_ASSIGN_OR_RETURN(std::string t, AsString(arg(0), "table"));
      return Plan::Scan(std::move(t));
    }
    case OpKind::kValues: {
      NEXUS_ASSIGN_OR_RETURN(Dataset d, DatasetFromSexpr(arg(0)));
      return Plan::Values(std::move(d));
    }
    case OpKind::kLoopVar:
      return Plan::LoopVar(arg(0).is_symbol() && arg(0).text == "prev");
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ExprFromSexpr(arg(0)));
      return Plan::Select(children[0], std::move(e));
    }
    case OpKind::kProject: {
      std::vector<std::string> cols;
      for (size_t i = 0; i < n_args; ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string c, AsString(arg(i), "column"));
        cols.push_back(std::move(c));
      }
      return Plan::Project(children[0], std::move(cols));
    }
    case OpKind::kExtend: {
      std::vector<std::pair<std::string, ExprPtr>> defs;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& d = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(d, 3, "extend def"));
        NEXUS_ASSIGN_OR_RETURN(std::string name, AsString(d.items[1], "def name"));
        NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ExprFromSexpr(d.items[2]));
        defs.emplace_back(std::move(name), std::move(e));
      }
      return Plan::Extend(children[0], std::move(defs));
    }
    case OpKind::kJoin: {
      if (n_args < 3 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed join");
      }
      NEXUS_ASSIGN_OR_RETURN(JoinType type, JoinTypeFromName(arg(0).text));
      const Sexpr& keys = arg(1);
      NEXUS_RETURN_NOT_OK(Expect(keys, 1, "join keys"));
      std::vector<std::string> lk, rk;
      for (size_t i = 1; i < keys.items.size(); ++i) {
        const Sexpr& pair = keys.items[i];
        if (!pair.is_list() || pair.items.size() != 2) {
          return Status::SerializationError("malformed join key pair");
        }
        NEXUS_ASSIGN_OR_RETURN(std::string l, AsString(pair.items[0], "left key"));
        NEXUS_ASSIGN_OR_RETURN(std::string r, AsString(pair.items[1], "right key"));
        lk.push_back(std::move(l));
        rk.push_back(std::move(r));
      }
      NEXUS_ASSIGN_OR_RETURN(ExprPtr residual, OptionalExprFromSexpr(arg(2)));
      return Plan::Join(children[0], children[1], type, std::move(lk),
                        std::move(rk), std::move(residual));
    }
    case OpKind::kAggregate: {
      if (n_args < 1) return Status::SerializationError("malformed aggregate");
      const Sexpr& by = arg(0);
      NEXUS_RETURN_NOT_OK(Expect(by, 1, "group-by"));
      std::vector<std::string> group_by;
      for (size_t i = 1; i < by.items.size(); ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string g, AsString(by.items[i], "group key"));
        group_by.push_back(std::move(g));
      }
      std::vector<AggSpec> aggs;
      for (size_t i = 1; i < n_args; ++i) {
        const Sexpr& ag = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(ag, 4, "agg spec"));
        if (!ag.items[1].is_symbol()) {
          return Status::SerializationError("agg func must be a symbol");
        }
        AggSpec spec;
        NEXUS_ASSIGN_OR_RETURN(spec.func, AggFuncFromName(ag.items[1].text));
        NEXUS_ASSIGN_OR_RETURN(spec.output_name,
                               AsString(ag.items[2], "agg output"));
        NEXUS_ASSIGN_OR_RETURN(spec.input, OptionalExprFromSexpr(ag.items[3]));
        aggs.push_back(std::move(spec));
      }
      return Plan::Aggregate(children[0], std::move(group_by), std::move(aggs));
    }
    case OpKind::kSort: {
      std::vector<SortKey> keys;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& k = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(k, 3, "sort key"));
        SortKey key;
        NEXUS_ASSIGN_OR_RETURN(key.column, AsString(k.items[1], "sort column"));
        key.ascending = !(k.items[2].is_symbol() && k.items[2].text == "desc");
        keys.push_back(std::move(key));
      }
      return Plan::Sort(children[0], std::move(keys));
    }
    case OpKind::kLimit: {
      NEXUS_ASSIGN_OR_RETURN(int64_t limit, AsInt(arg(0), "limit"));
      NEXUS_ASSIGN_OR_RETURN(int64_t offset, AsInt(arg(1), "offset"));
      return Plan::Limit(children[0], limit, offset);
    }
    case OpKind::kDistinct:
      return Plan::Distinct(children[0]);
    case OpKind::kUnion:
      return Plan::Union(children[0], children[1]);
    case OpKind::kUnbox:
      return Plan::Unbox(children[0]);
    case OpKind::kRename: {
      std::vector<std::pair<std::string, std::string>> mapping;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& m = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(m, 3, "rename map"));
        NEXUS_ASSIGN_OR_RETURN(std::string from, AsString(m.items[1], "from"));
        NEXUS_ASSIGN_OR_RETURN(std::string to, AsString(m.items[2], "to"));
        mapping.emplace_back(std::move(from), std::move(to));
      }
      return Plan::Rename(children[0], std::move(mapping));
    }
    case OpKind::kRebox: {
      NEXUS_ASSIGN_OR_RETURN(int64_t chunk, AsInt(arg(0), "chunk size"));
      std::vector<std::string> dims;
      for (size_t i = 1; i < n_args; ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, AsString(arg(i), "dim"));
        dims.push_back(std::move(d));
      }
      return Plan::Rebox(children[0], std::move(dims), chunk);
    }
    case OpKind::kSlice: {
      std::vector<DimRange> ranges;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& r = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(r, 4, "slice range"));
        DimRange range;
        NEXUS_ASSIGN_OR_RETURN(range.dim, AsString(r.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(range.lo, AsInt(r.items[2], "lo"));
        NEXUS_ASSIGN_OR_RETURN(range.hi, AsInt(r.items[3], "hi"));
        ranges.push_back(std::move(range));
      }
      return Plan::Slice(children[0], std::move(ranges));
    }
    case OpKind::kShift: {
      std::vector<std::pair<std::string, int64_t>> offsets;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& o = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(o, 3, "shift offset"));
        NEXUS_ASSIGN_OR_RETURN(std::string dim, AsString(o.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(int64_t delta, AsInt(o.items[2], "delta"));
        offsets.emplace_back(std::move(dim), delta);
      }
      return Plan::Shift(children[0], std::move(offsets));
    }
    case OpKind::kRegrid: {
      if (n_args < 1 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed regrid");
      }
      NEXUS_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(arg(0).text));
      std::vector<std::pair<std::string, int64_t>> factors;
      for (size_t i = 1; i < n_args; ++i) {
        const Sexpr& f = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(f, 3, "regrid factor"));
        NEXUS_ASSIGN_OR_RETURN(std::string dim, AsString(f.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(int64_t factor, AsInt(f.items[2], "factor"));
        factors.emplace_back(std::move(dim), factor);
      }
      return Plan::Regrid(children[0], std::move(factors), func);
    }
    case OpKind::kTranspose: {
      std::vector<std::string> order;
      for (size_t i = 0; i < n_args; ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, AsString(arg(i), "dim"));
        order.push_back(std::move(d));
      }
      return Plan::Transpose(children[0], std::move(order));
    }
    case OpKind::kWindow: {
      if (n_args < 1 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed window");
      }
      NEXUS_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(arg(0).text));
      std::vector<std::pair<std::string, int64_t>> radii;
      for (size_t i = 1; i < n_args; ++i) {
        const Sexpr& r = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(r, 3, "window radius"));
        NEXUS_ASSIGN_OR_RETURN(std::string dim, AsString(r.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(int64_t radius, AsInt(r.items[2], "radius"));
        radii.emplace_back(std::move(dim), radius);
      }
      return Plan::Window(children[0], std::move(radii), func);
    }
    case OpKind::kElemWise: {
      if (n_args < 1 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed elemwise");
      }
      NEXUS_ASSIGN_OR_RETURN(BinaryOp op, BinaryOpFromName(arg(0).text));
      return Plan::ElemWise(children[0], children[1], op);
    }
    case OpKind::kMatMul: {
      NEXUS_ASSIGN_OR_RETURN(std::string attr, AsString(arg(0), "result attr"));
      return Plan::MatMul(children[0], children[1], std::move(attr));
    }
    case OpKind::kPageRank: {
      PageRankOp op;
      NEXUS_ASSIGN_OR_RETURN(op.src_col, AsString(arg(0), "src col"));
      NEXUS_ASSIGN_OR_RETURN(op.dst_col, AsString(arg(1), "dst col"));
      if (!arg(2).is_float() && !arg(2).is_int()) {
        return Status::SerializationError("pagerank damping must be numeric");
      }
      op.damping = arg(2).as_number();
      NEXUS_ASSIGN_OR_RETURN(op.max_iters, AsInt(arg(3), "max iters"));
      if (!arg(4).is_float() && !arg(4).is_int()) {
        return Status::SerializationError("pagerank epsilon must be numeric");
      }
      op.epsilon = arg(4).as_number();
      return Plan::PageRank(children[0], std::move(op));
    }
    case OpKind::kIterate: {
      IterateOp op;
      NEXUS_ASSIGN_OR_RETURN(op.body, PlanFromSexpr(arg(0)));
      if (arg(1).is_symbol() && arg(1).text == "none") {
        op.measure = nullptr;
      } else {
        NEXUS_ASSIGN_OR_RETURN(op.measure, PlanFromSexpr(arg(1)));
      }
      if (!arg(2).is_float() && !arg(2).is_int()) {
        return Status::SerializationError("iterate epsilon must be numeric");
      }
      op.epsilon = arg(2).as_number();
      NEXUS_ASSIGN_OR_RETURN(op.max_iters, AsInt(arg(3), "max iters"));
      return Plan::Iterate(children[0], std::move(op));
    }
    case OpKind::kExchange: {
      NEXUS_ASSIGN_OR_RETURN(std::string server, AsString(arg(0), "server"));
      if (!arg(1).is_symbol()) {
        return Status::SerializationError("malformed transfer mode");
      }
      TransferMode mode = arg(1).text == "relay" ? TransferMode::kRelay
                                                 : TransferMode::kDirect;
      return Plan::Exchange(children[0], std::move(server), mode);
    }
  }
  return Status::Internal("unhandled operator in plan parser");
}

}  // namespace

std::string SerializePlan(const Plan& plan) {
  std::string out;
  WriteSexpr(PlanToSexpr(plan), &out);
  return out;
}

Result<PlanPtr> ParsePlan(const std::string& wire) {
  SexprParser parser(wire);
  NEXUS_ASSIGN_OR_RETURN(Sexpr s, parser.Parse());
  return PlanFromSexpr(s);
}

std::string SerializeExpr(const Expr& expr) {
  std::string out;
  WriteSexpr(ExprToSexpr(expr), &out);
  return out;
}

Result<ExprPtr> ParseExpr(const std::string& wire) {
  SexprParser parser(wire);
  NEXUS_ASSIGN_OR_RETURN(Sexpr s, parser.Parse());
  return ExprFromSexpr(s);
}

std::string SerializeDataset(const Dataset& data) {
  std::string out;
  WriteSexpr(DatasetToSexpr(data), &out);
  return out;
}

Result<Dataset> ParseDataset(const std::string& wire) {
  SexprParser parser(wire);
  NEXUS_ASSIGN_OR_RETURN(Sexpr s, parser.Parse());
  return DatasetFromSexpr(s);
}

}  // namespace nexus
