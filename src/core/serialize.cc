#include "core/serialize.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/str_util.h"

namespace nexus {

// ---------------------------------------------------------------------------
// Generic s-expression layer.
// ---------------------------------------------------------------------------

namespace {

struct Sexpr {
  enum class Kind { kList, kSymbol, kString, kInt, kFloat, kBlob };
  Kind kind = Kind::kList;
  std::vector<Sexpr> items;  // kList
  std::string text;          // kSymbol / kString / kBlob (raw bytes)
  int64_t i = 0;             // kInt
  double f = 0.0;            // kFloat

  static Sexpr List(std::vector<Sexpr> items) {
    Sexpr s;
    s.kind = Kind::kList;
    s.items = std::move(items);
    return s;
  }
  static Sexpr Sym(std::string t) {
    Sexpr s;
    s.kind = Kind::kSymbol;
    s.text = std::move(t);
    return s;
  }
  static Sexpr Str(std::string t) {
    Sexpr s;
    s.kind = Kind::kString;
    s.text = std::move(t);
    return s;
  }
  static Sexpr Int(int64_t v) {
    Sexpr s;
    s.kind = Kind::kInt;
    s.i = v;
    return s;
  }
  static Sexpr Float(double v) {
    Sexpr s;
    s.kind = Kind::kFloat;
    s.f = v;
    return s;
  }
  static Sexpr Blob(std::string bytes) {
    Sexpr s;
    s.kind = Kind::kBlob;
    s.text = std::move(bytes);
    return s;
  }

  bool is_list() const { return kind == Kind::kList; }
  bool is_symbol() const { return kind == Kind::kSymbol; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_float() const { return kind == Kind::kFloat; }
  bool is_blob() const { return kind == Kind::kBlob; }
  double as_number() const { return is_int() ? static_cast<double>(i) : f; }
};

void WriteSexpr(const Sexpr& s, std::string* out) {
  switch (s.kind) {
    case Sexpr::Kind::kList: {
      out->push_back('(');
      for (size_t i = 0; i < s.items.size(); ++i) {
        if (i > 0) out->push_back(' ');
        WriteSexpr(s.items[i], out);
      }
      out->push_back(')');
      return;
    }
    case Sexpr::Kind::kSymbol:
      out->append(s.text);
      return;
    case Sexpr::Kind::kString:
      out->push_back('"');
      out->append(EscapeString(s.text));
      out->push_back('"');
      return;
    case Sexpr::Kind::kInt:
      out->append(StrCat(s.i));
      return;
    case Sexpr::Kind::kFloat: {
      // %.17g guarantees float64 round-trip; mark as float with a decimal
      // point or exponent so the reader keeps the kind.
      std::string t = FormatDouble(s.f, 17);
      if (t.find('.') == std::string::npos && t.find('e') == std::string::npos &&
          t.find("inf") == std::string::npos && t.find("nan") == std::string::npos) {
        t += ".0";
      }
      out->append(t);
      return;
    }
    case Sexpr::Kind::kBlob:
      // Netstring-style raw-byte literal: the length prefix makes the
      // payload 8-bit clean without any escaping (it may contain NUL, ')',
      // quotes — the parser consumes exactly `len` bytes).
      out->push_back('#');
      out->append(StrCat(static_cast<int64_t>(s.text.size())));
      out->push_back(':');
      out->append(s.text);
      return;
  }
}

class SexprParser {
 public:
  explicit SexprParser(std::string_view input) : input_(input) {}

  Result<Sexpr> Parse() {
    NEXUS_ASSIGN_OR_RETURN(Sexpr s, ParseOne());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::SerializationError(
          StrCat("trailing input at offset ", pos_));
    }
    return s;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<Sexpr> ParseOne() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return Status::SerializationError("unexpected end of input");
    }
    char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      std::vector<Sexpr> items;
      while (true) {
        SkipSpace();
        if (pos_ >= input_.size()) {
          return Status::SerializationError("unterminated list");
        }
        if (input_[pos_] == ')') {
          ++pos_;
          return Sexpr::List(std::move(items));
        }
        NEXUS_ASSIGN_OR_RETURN(Sexpr item, ParseOne());
        items.push_back(std::move(item));
      }
    }
    if (c == '"') return ParseString();
    if (c == '#') return ParseBlob();
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumberOrSymbol();
    }
    return ParseSymbol();
  }

  Result<Sexpr> ParseBlob() {
    ++pos_;  // '#'
    size_t start = pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || pos_ >= input_.size() || input_[pos_] != ':') {
      return Status::SerializationError("malformed blob length prefix");
    }
    unsigned long long len =
        std::strtoull(std::string(input_.substr(start, pos_ - start)).c_str(),
                      nullptr, 10);
    ++pos_;  // ':'
    if (len > input_.size() - pos_) {
      return Status::SerializationError("blob length exceeds input");
    }
    Sexpr s = Sexpr::Blob(std::string(input_.substr(pos_, len)));
    pos_ += len;
    return s;
  }

  Result<Sexpr> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') return Sexpr::Str(std::move(out));
      if (c == '\\' && pos_ < input_.size()) {
        char e = input_[pos_++];
        switch (e) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            out.push_back(e);
        }
        continue;
      }
      out.push_back(c);
    }
    return Status::SerializationError("unterminated string literal");
  }

  Result<Sexpr> ParseNumberOrSymbol() {
    size_t start = pos_;
    while (pos_ < input_.size() && !std::isspace(static_cast<unsigned char>(input_[pos_])) &&
           input_[pos_] != '(' && input_[pos_] != ')') {
      ++pos_;
    }
    std::string tok(input_.substr(start, pos_ - start));
    if (tok == "-" || tok == "+") return Sexpr::Sym(std::move(tok));
    char* end = nullptr;
    if (tok.find('.') == std::string::npos && tok.find('e') == std::string::npos &&
        tok.find("inf") == std::string::npos && tok.find("nan") == std::string::npos) {
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end && *end == '\0') return Sexpr::Int(v);
    }
    double d = std::strtod(tok.c_str(), &end);
    if (end && *end == '\0') return Sexpr::Float(d);
    return Sexpr::Sym(std::move(tok));
  }

  Result<Sexpr> ParseSymbol() {
    size_t start = pos_;
    while (pos_ < input_.size() && !std::isspace(static_cast<unsigned char>(input_[pos_])) &&
           input_[pos_] != '(' && input_[pos_] != ')' && input_[pos_] != '"') {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::SerializationError(
          StrCat("unexpected character '", input_[pos_], "' at offset ", pos_));
    }
    return Sexpr::Sym(std::string(input_.substr(start, pos_ - start)));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

Status Expect(const Sexpr& s, size_t min_items, const char* what) {
  if (!s.is_list() || s.items.size() < min_items || !s.items[0].is_symbol()) {
    return Status::SerializationError(StrCat("malformed ", what, " node"));
  }
  return Status::OK();
}

Result<std::string> AsString(const Sexpr& s, const char* what) {
  if (!s.is_string()) {
    return Status::SerializationError(StrCat("expected string for ", what));
  }
  return s.text;
}

Result<int64_t> AsInt(const Sexpr& s, const char* what) {
  if (!s.is_int()) {
    return Status::SerializationError(StrCat("expected integer for ", what));
  }
  return s.i;
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

Sexpr ExprToSexpr(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      if (v.is_null()) return Sexpr::List({Sexpr::Sym("null")});
      if (v.is_bool()) {
        return Sexpr::List({Sexpr::Sym(v.AsBool() ? "true" : "false")});
      }
      if (v.is_int64()) {
        return Sexpr::List({Sexpr::Sym("i64"), Sexpr::Int(v.AsInt64())});
      }
      if (v.is_float64()) {
        return Sexpr::List({Sexpr::Sym("f64"), Sexpr::Float(v.AsFloat64())});
      }
      return Sexpr::List({Sexpr::Sym("str"), Sexpr::Str(v.AsString())});
    }
    case ExprKind::kColumnRef:
      return Sexpr::List({Sexpr::Sym("col"), Sexpr::Str(e.column_name())});
    case ExprKind::kUnary:
      return Sexpr::List(
          {Sexpr::Sym(UnaryOpName(e.unary_op())), ExprToSexpr(*e.child(0))});
    case ExprKind::kBinary:
      return Sexpr::List({Sexpr::Sym(BinaryOpName(e.binary_op())),
                          ExprToSexpr(*e.child(0)), ExprToSexpr(*e.child(1))});
    case ExprKind::kFuncCall: {
      std::vector<Sexpr> items = {Sexpr::Sym("call"), Sexpr::Str(e.func_name())};
      for (const ExprPtr& c : e.children()) items.push_back(ExprToSexpr(*c));
      return Sexpr::List(std::move(items));
    }
    case ExprKind::kCast:
      return Sexpr::List({Sexpr::Sym("cast"),
                          Sexpr::Sym(DataTypeName(e.cast_target())),
                          ExprToSexpr(*e.child(0))});
  }
  return Sexpr::List({});
}

Result<ExprPtr> ExprFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 1, "expression"));
  const std::string& head = s.items[0].text;
  // Heads that require an argument item (guarded before the [1] accesses).
  if ((head == "i64" || head == "f64" || head == "str" || head == "col" ||
       head == "call") &&
      s.items.size() < 2) {
    return Status::SerializationError(StrCat("malformed ", head, " node"));
  }
  if (head == "null") return Expr::Literal(Value::Null());
  if (head == "true") return Expr::Literal(Value::Bool(true));
  if (head == "false") return Expr::Literal(Value::Bool(false));
  if (head == "i64") {
    NEXUS_ASSIGN_OR_RETURN(int64_t v, AsInt(s.items[1], "i64 literal"));
    return Expr::Literal(Value::Int64(v));
  }
  if (head == "f64") {
    if (s.items.size() < 2 || (!s.items[1].is_float() && !s.items[1].is_int())) {
      return Status::SerializationError("malformed f64 literal");
    }
    return Expr::Literal(Value::Float64(s.items[1].as_number()));
  }
  if (head == "str") {
    NEXUS_ASSIGN_OR_RETURN(std::string v, AsString(s.items[1], "str literal"));
    return Expr::Literal(Value::String(std::move(v)));
  }
  if (head == "col") {
    NEXUS_ASSIGN_OR_RETURN(std::string v, AsString(s.items[1], "column name"));
    return Expr::ColumnRef(std::move(v));
  }
  if (head == "call") {
    NEXUS_ASSIGN_OR_RETURN(std::string fn, AsString(s.items[1], "function name"));
    std::vector<ExprPtr> args;
    for (size_t i = 2; i < s.items.size(); ++i) {
      NEXUS_ASSIGN_OR_RETURN(ExprPtr a, ExprFromSexpr(s.items[i]));
      args.push_back(std::move(a));
    }
    return Expr::FuncCall(std::move(fn), std::move(args));
  }
  if (head == "cast") {
    if (s.items.size() != 3 || !s.items[1].is_symbol()) {
      return Status::SerializationError("malformed cast");
    }
    NEXUS_ASSIGN_OR_RETURN(DataType t, DataTypeFromName(s.items[1].text));
    NEXUS_ASSIGN_OR_RETURN(ExprPtr c, ExprFromSexpr(s.items[2]));
    return Expr::Cast(t, std::move(c));
  }
  if (auto u = UnaryOpFromName(head); u.ok()) {
    if (s.items.size() != 2) {
      return Status::SerializationError("malformed unary expression");
    }
    NEXUS_ASSIGN_OR_RETURN(ExprPtr c, ExprFromSexpr(s.items[1]));
    return Expr::Unary(u.ValueOrDie(), std::move(c));
  }
  if (auto b = BinaryOpFromName(head); b.ok()) {
    if (s.items.size() != 3) {
      return Status::SerializationError("malformed binary expression");
    }
    NEXUS_ASSIGN_OR_RETURN(ExprPtr l, ExprFromSexpr(s.items[1]));
    NEXUS_ASSIGN_OR_RETURN(ExprPtr r, ExprFromSexpr(s.items[2]));
    return Expr::Binary(b.ValueOrDie(), std::move(l), std::move(r));
  }
  return Status::SerializationError(StrCat("unknown expression head: ", head));
}

// ---------------------------------------------------------------------------
// NXB1: binary columnar dataset blocks.
//
// Layout (all integers little-endian):
//   "NXB1"  u16 version  u8 flags(bit0=array)  u16 nfields
//   nfields × { u8 type  u8 is_dim  u16 name_len  name }
//   [array]  u16 ndims  ndims × u64 chunk_size      (array()->dims() order)
//   u64 nrows
//   nfields × column block:
//     u8 has_nulls  [null bitmap ceil(nrows/8), bit i set = row i null]
//     u8 encoding   u32 payload_len  payload
//
// Payloads by (type, encoding) — null slots carry canonical defaults
// (0 / 0.0 / false / "") so equal datasets encode to equal bytes:
//   bool/raw     packed value bits, ceil(n/8)
//   int64/raw    8n bytes, straight memcpy of the column vector
//   int64/rle    u32 nruns, nruns × { u32 len  i64 value }
//   int64/for    i64 min  u8 bit_width  bit-packed (v - min) deltas
//   f64/raw      8n bytes, memcpy
//   f64/rle      u32 nruns, nruns × { u32 len  f64 value }   (bit-equality)
//   string/raw   (n+1) × u32 cumulative offsets, then the byte blob
//   string/dict  u32 ndict, ndict × { u32 len  bytes },
//                u8 code_width(1|2|4), n × code   (first-occurrence order)
//
// The encoder computes every candidate's size and keeps the smallest
// (ties prefer raw, then RLE) — deterministically, so a given dataset
// always encodes to the same bytes and fingerprints are stable. The
// decoder bounds-checks every read and rejects trailing bytes.
// ---------------------------------------------------------------------------

constexpr char kNxb1Magic[4] = {'N', 'X', 'B', '1'};
constexpr uint16_t kNxb1Version = 1;
constexpr uint8_t kNxb1FlagArray = 0x01;

constexpr uint8_t kEncRaw = 0;
constexpr uint8_t kEncRle = 1;
constexpr uint8_t kEncDict = 2;
constexpr uint8_t kEncFor = 3;

// A corrupt row count must not drive a giant allocation before any payload
// bytes are validated: everything in this system is an in-memory dataset,
// so a frame claiming more rows than this is corruption, not data.
constexpr uint64_t kMaxWireRows = uint64_t{1} << 28;

class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v & 0xff));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Bytes(const void* p, size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }

 private:
  std::string* out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view in) : in_(in) {}

  Result<uint8_t> U8() {
    NEXUS_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(in_[pos_++]);
  }
  Result<uint16_t> U16() {
    NEXUS_RETURN_NOT_OK(Need(2));
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<uint16_t>(static_cast<uint8_t>(in_[pos_++])) << (8 * i);
    }
    return v;
  }
  Result<uint32_t> U32() {
    NEXUS_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_++])) << (8 * i);
    }
    return v;
  }
  Result<uint64_t> U64() {
    NEXUS_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(in_[pos_++])) << (8 * i);
    }
    return v;
  }
  Result<int64_t> I64() {
    NEXUS_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    NEXUS_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  Result<std::string_view> Bytes(size_t n) {
    NEXUS_RETURN_NOT_OK(Need(n));
    std::string_view v = in_.substr(pos_, n);
    pos_ += n;
    return v;
  }
  size_t remaining() const { return in_.size() - pos_; }
  bool done() const { return pos_ == in_.size(); }

 private:
  Status Need(size_t n) {
    if (in_.size() - pos_ < n) {
      return Status::SerializationError(
          StrCat("truncated NXB1 buffer at offset ", pos_));
    }
    return Status::OK();
  }
  std::string_view in_;
  size_t pos_ = 0;
};

void PackBits(const std::vector<uint64_t>& vals, int width, ByteWriter* w) {
  unsigned __int128 acc = 0;
  int bits = 0;
  for (uint64_t v : vals) {
    acc |= static_cast<unsigned __int128>(v) << bits;
    bits += width;
    while (bits >= 8) {
      w->U8(static_cast<uint8_t>(acc & 0xff));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) w->U8(static_cast<uint8_t>(acc & 0xff));
}

Result<std::vector<uint64_t>> UnpackBits(std::string_view bytes, size_t n,
                                         int width) {
  if (bytes.size() != (n * static_cast<size_t>(width) + 7) / 8) {
    return Status::SerializationError("bit-packed payload has wrong length");
  }
  std::vector<uint64_t> out;
  out.reserve(n);
  unsigned __int128 acc = 0;
  int bits = 0;
  size_t bi = 0;
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  for (size_t i = 0; i < n; ++i) {
    while (bits < width) {
      acc |= static_cast<unsigned __int128>(static_cast<uint8_t>(bytes[bi++]))
             << bits;
      bits += 8;
    }
    out.push_back(static_cast<uint64_t>(acc) & mask);
    acc >>= width;
    bits -= width;
  }
  return out;
}

// --- per-type payload encoders; each returns the encoding it chose ---------

uint8_t EncodeBoolPayload(const Column& col, bool has_nulls, int64_t n,
                          std::string* payload) {
  std::string bits(static_cast<size_t>((n + 7) / 8), '\0');
  const std::vector<uint8_t>& v = col.bools();
  for (int64_t i = 0; i < n; ++i) {
    if (v[static_cast<size_t>(i)] != 0 && !(has_nulls && col.IsNull(i))) {
      bits[static_cast<size_t>(i >> 3)] |= static_cast<char>(1 << (i & 7));
    }
  }
  payload->assign(bits);
  return kEncRaw;
}

uint8_t EncodeInt64Payload(const Column& col, bool has_nulls, int64_t n,
                           std::string* payload) {
  std::vector<int64_t> canon;
  const std::vector<int64_t>* src = &col.ints();
  if (has_nulls) {
    canon = col.ints();
    for (int64_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) canon[static_cast<size_t>(i)] = 0;
    }
    src = &canon;
  }
  ByteWriter w(payload);
  if (n == 0) return kEncRaw;
  const std::vector<int64_t>& v = *src;
  const size_t un = static_cast<size_t>(n);

  size_t nruns = 1;
  for (size_t i = 1; i < un; ++i) {
    if (v[i] != v[i - 1]) ++nruns;
  }
  int64_t mn = v[0], mx = v[0];
  for (size_t i = 1; i < un; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  const uint64_t range =
      static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  const int width = range == 0 ? 0 : std::bit_width(range);
  const size_t raw_size = 8 * un;
  const size_t rle_size = 4 + 12 * nruns;
  const size_t for_size = 9 + (un * static_cast<size_t>(width) + 7) / 8;

  if (raw_size <= rle_size && raw_size <= for_size) {
    if constexpr (std::endian::native == std::endian::little) {
      w.Bytes(v.data(), raw_size);
    } else {
      for (int64_t x : v) w.I64(x);
    }
    return kEncRaw;
  }
  if (rle_size <= for_size) {
    w.U32(static_cast<uint32_t>(nruns));
    size_t i = 0;
    while (i < un) {
      size_t j = i;
      while (j < un && v[j] == v[i]) ++j;
      w.U32(static_cast<uint32_t>(j - i));
      w.I64(v[i]);
      i = j;
    }
    return kEncRle;
  }
  w.I64(mn);
  w.U8(static_cast<uint8_t>(width));
  if (width > 0) {
    std::vector<uint64_t> deltas;
    deltas.reserve(un);
    for (int64_t x : v) {
      deltas.push_back(static_cast<uint64_t>(x) - static_cast<uint64_t>(mn));
    }
    PackBits(deltas, width, &w);
  }
  return kEncFor;
}

uint8_t EncodeFloat64Payload(const Column& col, bool has_nulls, int64_t n,
                             std::string* payload) {
  std::vector<double> canon;
  const std::vector<double>* src = &col.doubles();
  if (has_nulls) {
    canon = col.doubles();
    for (int64_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) canon[static_cast<size_t>(i)] = 0.0;
    }
    src = &canon;
  }
  ByteWriter w(payload);
  if (n == 0) return kEncRaw;
  const std::vector<double>& v = *src;
  const size_t un = static_cast<size_t>(n);
  // Runs compare bit patterns so NaN-valued runs stay deterministic.
  auto bits_of = [](double d) {
    uint64_t b;
    std::memcpy(&b, &d, sizeof b);
    return b;
  };
  size_t nruns = 1;
  for (size_t i = 1; i < un; ++i) {
    if (bits_of(v[i]) != bits_of(v[i - 1])) ++nruns;
  }
  const size_t raw_size = 8 * un;
  const size_t rle_size = 4 + 12 * nruns;
  if (raw_size <= rle_size) {
    if constexpr (std::endian::native == std::endian::little) {
      w.Bytes(v.data(), raw_size);
    } else {
      for (double x : v) w.F64(x);
    }
    return kEncRaw;
  }
  w.U32(static_cast<uint32_t>(nruns));
  size_t i = 0;
  while (i < un) {
    size_t j = i;
    while (j < un && bits_of(v[j]) == bits_of(v[i])) ++j;
    w.U32(static_cast<uint32_t>(j - i));
    w.F64(v[i]);
    i = j;
  }
  return kEncRle;
}

uint8_t EncodeStringPayload(const Column& col, bool has_nulls, int64_t n,
                            std::string* payload) {
  const std::vector<std::string>& stored = col.strings();
  std::vector<std::string_view> canon;
  canon.reserve(static_cast<size_t>(n));
  size_t blob_len = 0;
  for (int64_t i = 0; i < n; ++i) {
    std::string_view sv = (has_nulls && col.IsNull(i))
                              ? std::string_view{}
                              : std::string_view(stored[static_cast<size_t>(i)]);
    blob_len += sv.size();
    canon.push_back(sv);
  }
  // u32 offsets cap a single column's blob at 4 GiB — far beyond anything
  // the simulated wire carries.
  NEXUS_CHECK(blob_len < UINT32_MAX);

  std::unordered_map<std::string_view, uint32_t> dict;
  std::vector<std::string_view> dict_order;
  std::vector<uint32_t> codes;
  codes.reserve(canon.size());
  size_t dict_blob = 0;
  for (std::string_view sv : canon) {
    auto [it, inserted] =
        dict.emplace(sv, static_cast<uint32_t>(dict_order.size()));
    if (inserted) {
      dict_order.push_back(sv);
      dict_blob += sv.size();
    }
    codes.push_back(it->second);
  }
  const size_t ndict = dict_order.size();
  const int code_width = ndict <= 256 ? 1 : ndict <= 65536 ? 2 : 4;
  const size_t raw_size = 4 * (canon.size() + 1) + blob_len;
  const size_t dict_size = 4 + 4 * ndict + dict_blob + 1 +
                           canon.size() * static_cast<size_t>(code_width);

  ByteWriter w(payload);
  if (raw_size <= dict_size) {
    uint32_t off = 0;
    w.U32(0);
    for (std::string_view sv : canon) {
      off += static_cast<uint32_t>(sv.size());
      w.U32(off);
    }
    for (std::string_view sv : canon) w.Bytes(sv.data(), sv.size());
    return kEncRaw;
  }
  w.U32(static_cast<uint32_t>(ndict));
  for (std::string_view sv : dict_order) {
    w.U32(static_cast<uint32_t>(sv.size()));
    w.Bytes(sv.data(), sv.size());
  }
  w.U8(static_cast<uint8_t>(code_width));
  for (uint32_t c : codes) {
    for (int b = 0; b < code_width; ++b) {
      w.U8(static_cast<uint8_t>((c >> (8 * b)) & 0xff));
    }
  }
  return kEncDict;
}

void EncodeColumn(const Column& col, int64_t n, ByteWriter* w) {
  const bool has_nulls = col.null_count() > 0;
  w->U8(has_nulls ? 1 : 0);
  if (has_nulls) {
    std::string bitmap(static_cast<size_t>((n + 7) / 8), '\0');
    for (int64_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) {
        bitmap[static_cast<size_t>(i >> 3)] |= static_cast<char>(1 << (i & 7));
      }
    }
    w->Bytes(bitmap.data(), bitmap.size());
  }
  std::string payload;
  uint8_t enc = kEncRaw;
  switch (col.type()) {
    case DataType::kBool:
      enc = EncodeBoolPayload(col, has_nulls, n, &payload);
      break;
    case DataType::kInt64:
      enc = EncodeInt64Payload(col, has_nulls, n, &payload);
      break;
    case DataType::kFloat64:
      enc = EncodeFloat64Payload(col, has_nulls, n, &payload);
      break;
    case DataType::kString:
      enc = EncodeStringPayload(col, has_nulls, n, &payload);
      break;
  }
  w->U8(enc);
  w->U32(static_cast<uint32_t>(payload.size()));
  w->Bytes(payload.data(), payload.size());
}

std::string EncodeNxb1(const Dataset& data) {
  std::string out;
  ByteWriter w(&out);
  TablePtr table = data.AsTable().ValueOrDie();
  const Schema& schema = *table->schema();
  w.Bytes(kNxb1Magic, sizeof kNxb1Magic);
  w.U16(kNxb1Version);
  w.U8(data.is_array() ? kNxb1FlagArray : 0);
  w.U16(static_cast<uint16_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    NEXUS_CHECK(f.name.size() <= UINT16_MAX);
    w.U8(static_cast<uint8_t>(f.type));
    w.U8(f.is_dimension ? 1 : 0);
    w.U16(static_cast<uint16_t>(f.name.size()));
    w.Bytes(f.name.data(), f.name.size());
  }
  if (data.is_array()) {
    const auto& dims = data.array()->dims();
    w.U16(static_cast<uint16_t>(dims.size()));
    for (const DimensionSpec& d : dims) {
      w.U64(static_cast<uint64_t>(d.chunk_size));
    }
  }
  w.U64(static_cast<uint64_t>(table->num_rows()));
  for (int c = 0; c < table->num_columns(); ++c) {
    EncodeColumn(table->column(c), table->num_rows(), &w);
  }
  return out;
}

// --- per-type payload decoders ---------------------------------------------

Result<Column> DecodeBoolPayload(std::string_view payload, uint8_t enc,
                                 size_t n) {
  if (enc != kEncRaw) {
    return Status::SerializationError("bool column has unknown encoding");
  }
  if (payload.size() != (n + 7) / 8) {
    return Status::SerializationError("bool payload has wrong length");
  }
  std::vector<uint8_t> v(n, 0);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (static_cast<uint8_t>(payload[i >> 3]) >> (i & 7)) & 1;
  }
  return Column::FromBool(std::move(v));
}

Result<Column> DecodeInt64Payload(std::string_view payload, uint8_t enc,
                                  size_t n) {
  std::vector<int64_t> v;
  if (enc == kEncRaw) {
    if (payload.size() != 8 * n) {
      return Status::SerializationError("int64 raw payload has wrong length");
    }
    v.resize(n);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(v.data(), payload.data(), payload.size());
    } else {
      ByteReader pr(payload);
      for (size_t i = 0; i < n; ++i) v[i] = pr.I64().ValueOrDie();
    }
    return Column::FromInt64(std::move(v));
  }
  ByteReader pr(payload);
  if (enc == kEncRle) {
    NEXUS_ASSIGN_OR_RETURN(uint32_t nruns, pr.U32());
    if (nruns > pr.remaining() / 12) {
      return Status::SerializationError("int64 RLE run count exceeds payload");
    }
    for (uint32_t r = 0; r < nruns; ++r) {
      NEXUS_ASSIGN_OR_RETURN(uint32_t len, pr.U32());
      NEXUS_ASSIGN_OR_RETURN(int64_t val, pr.I64());
      if (len > n - v.size()) {
        return Status::SerializationError("int64 RLE runs overflow row count");
      }
      v.insert(v.end(), len, val);
    }
    if (v.size() != n || !pr.done()) {
      return Status::SerializationError("int64 RLE runs do not cover rows");
    }
    return Column::FromInt64(std::move(v));
  }
  if (enc == kEncFor) {
    NEXUS_ASSIGN_OR_RETURN(int64_t mn, pr.I64());
    NEXUS_ASSIGN_OR_RETURN(uint8_t width, pr.U8());
    if (width > 64) {
      return Status::SerializationError("int64 FOR bit width out of range");
    }
    if (width == 0) {
      if (!pr.done()) {
        return Status::SerializationError("int64 FOR payload has extra bytes");
      }
      v.assign(n, mn);
      return Column::FromInt64(std::move(v));
    }
    NEXUS_ASSIGN_OR_RETURN(std::string_view packed, pr.Bytes(pr.remaining()));
    NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> deltas,
                           UnpackBits(packed, n, width));
    v.reserve(n);
    for (uint64_t d : deltas) {
      v.push_back(static_cast<int64_t>(static_cast<uint64_t>(mn) + d));
    }
    return Column::FromInt64(std::move(v));
  }
  return Status::SerializationError("int64 column has unknown encoding");
}

Result<Column> DecodeFloat64Payload(std::string_view payload, uint8_t enc,
                                    size_t n) {
  std::vector<double> v;
  if (enc == kEncRaw) {
    if (payload.size() != 8 * n) {
      return Status::SerializationError("float64 raw payload has wrong length");
    }
    v.resize(n);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(v.data(), payload.data(), payload.size());
    } else {
      ByteReader pr(payload);
      for (size_t i = 0; i < n; ++i) v[i] = pr.F64().ValueOrDie();
    }
    return Column::FromFloat64(std::move(v));
  }
  if (enc == kEncRle) {
    ByteReader pr(payload);
    NEXUS_ASSIGN_OR_RETURN(uint32_t nruns, pr.U32());
    if (nruns > pr.remaining() / 12) {
      return Status::SerializationError(
          "float64 RLE run count exceeds payload");
    }
    for (uint32_t r = 0; r < nruns; ++r) {
      NEXUS_ASSIGN_OR_RETURN(uint32_t len, pr.U32());
      NEXUS_ASSIGN_OR_RETURN(double val, pr.F64());
      if (len > n - v.size()) {
        return Status::SerializationError(
            "float64 RLE runs overflow row count");
      }
      v.insert(v.end(), len, val);
    }
    if (v.size() != n || !pr.done()) {
      return Status::SerializationError("float64 RLE runs do not cover rows");
    }
    return Column::FromFloat64(std::move(v));
  }
  return Status::SerializationError("float64 column has unknown encoding");
}

Result<Column> DecodeStringPayload(std::string_view payload, uint8_t enc,
                                   size_t n) {
  std::vector<std::string> v;
  ByteReader pr(payload);
  if (enc == kEncRaw) {
    if (payload.size() / 4 < n + 1) {
      return Status::SerializationError("string offset table exceeds payload");
    }
    std::vector<uint32_t> offsets(n + 1);
    for (size_t i = 0; i <= n; ++i) {
      NEXUS_ASSIGN_OR_RETURN(offsets[i], pr.U32());
    }
    if (offsets[0] != 0) {
      return Status::SerializationError("string offsets must start at 0");
    }
    NEXUS_ASSIGN_OR_RETURN(std::string_view blob, pr.Bytes(pr.remaining()));
    if (offsets[n] != blob.size()) {
      return Status::SerializationError("string blob length mismatch");
    }
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (offsets[i + 1] < offsets[i]) {
        return Status::SerializationError("string offsets must be monotone");
      }
      v.emplace_back(blob.substr(offsets[i], offsets[i + 1] - offsets[i]));
    }
    return Column::FromString(std::move(v));
  }
  if (enc == kEncDict) {
    NEXUS_ASSIGN_OR_RETURN(uint32_t ndict, pr.U32());
    if (ndict > pr.remaining() / 4) {
      return Status::SerializationError("string dict size exceeds payload");
    }
    std::vector<std::string_view> dict(ndict);
    for (uint32_t i = 0; i < ndict; ++i) {
      NEXUS_ASSIGN_OR_RETURN(uint32_t len, pr.U32());
      NEXUS_ASSIGN_OR_RETURN(dict[i], pr.Bytes(len));
    }
    NEXUS_ASSIGN_OR_RETURN(uint8_t code_width, pr.U8());
    if (code_width != 1 && code_width != 2 && code_width != 4) {
      return Status::SerializationError("string dict code width invalid");
    }
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint32_t code = 0;
      for (int b = 0; b < code_width; ++b) {
        NEXUS_ASSIGN_OR_RETURN(uint8_t byte, pr.U8());
        code |= static_cast<uint32_t>(byte) << (8 * b);
      }
      if (code >= ndict) {
        return Status::SerializationError("string dict code out of range");
      }
      v.emplace_back(dict[code]);
    }
    if (!pr.done()) {
      return Status::SerializationError("string dict payload has extra bytes");
    }
    return Column::FromString(std::move(v));
  }
  return Status::SerializationError("string column has unknown encoding");
}

Result<Column> DecodeColumn(ByteReader* r, DataType type, int64_t n) {
  NEXUS_ASSIGN_OR_RETURN(uint8_t has_nulls, r->U8());
  if (has_nulls > 1) {
    return Status::SerializationError("column null flag must be 0 or 1");
  }
  std::string_view null_bitmap;
  if (has_nulls != 0) {
    NEXUS_ASSIGN_OR_RETURN(null_bitmap,
                           r->Bytes(static_cast<size_t>((n + 7) / 8)));
  }
  NEXUS_ASSIGN_OR_RETURN(uint8_t enc, r->U8());
  NEXUS_ASSIGN_OR_RETURN(uint32_t payload_len, r->U32());
  NEXUS_ASSIGN_OR_RETURN(std::string_view payload, r->Bytes(payload_len));
  const size_t un = static_cast<size_t>(n);
  auto decode = [&]() -> Result<Column> {
    switch (type) {
      case DataType::kBool:
        return DecodeBoolPayload(payload, enc, un);
      case DataType::kInt64:
        return DecodeInt64Payload(payload, enc, un);
      case DataType::kFloat64:
        return DecodeFloat64Payload(payload, enc, un);
      case DataType::kString:
        return DecodeStringPayload(payload, enc, un);
    }
    return Status::SerializationError("unknown column type");
  };
  NEXUS_ASSIGN_OR_RETURN(Column out, decode());
  if (has_nulls != 0) {
    for (int64_t i = 0; i < n; ++i) {
      if ((static_cast<uint8_t>(null_bitmap[static_cast<size_t>(i >> 3)]) >>
           (i & 7)) &
          1) {
        out.SetNull(i);
      }
    }
  }
  return out;
}

Result<Dataset> DecodeNxb1(std::string_view wire) {
  ByteReader r(wire);
  NEXUS_ASSIGN_OR_RETURN(std::string_view magic, r.Bytes(4));
  if (std::memcmp(magic.data(), kNxb1Magic, 4) != 0) {
    return Status::SerializationError("bad NXB1 magic");
  }
  NEXUS_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kNxb1Version) {
    return Status::SerializationError(
        StrCat("unsupported NXB1 version ", version));
  }
  NEXUS_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
  if ((flags & ~kNxb1FlagArray) != 0) {
    return Status::SerializationError("unknown NXB1 flags");
  }
  const bool is_array = (flags & kNxb1FlagArray) != 0;
  NEXUS_ASSIGN_OR_RETURN(uint16_t nfields, r.U16());
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint16_t i = 0; i < nfields; ++i) {
    NEXUS_ASSIGN_OR_RETURN(uint8_t type_code, r.U8());
    if (type_code > static_cast<uint8_t>(DataType::kString)) {
      return Status::SerializationError("unknown NXB1 field type");
    }
    NEXUS_ASSIGN_OR_RETURN(uint8_t is_dim, r.U8());
    if (is_dim > 1) {
      return Status::SerializationError("field dim flag must be 0 or 1");
    }
    NEXUS_ASSIGN_OR_RETURN(uint16_t name_len, r.U16());
    NEXUS_ASSIGN_OR_RETURN(std::string_view name, r.Bytes(name_len));
    fields.push_back(Field{std::string(name), static_cast<DataType>(type_code),
                           is_dim != 0});
  }
  std::vector<int64_t> chunk_sizes;
  if (is_array) {
    NEXUS_ASSIGN_OR_RETURN(uint16_t ndims, r.U16());
    chunk_sizes.reserve(ndims);
    for (uint16_t i = 0; i < ndims; ++i) {
      NEXUS_ASSIGN_OR_RETURN(uint64_t c, r.U64());
      chunk_sizes.push_back(static_cast<int64_t>(c));
    }
  }
  NEXUS_ASSIGN_OR_RETURN(uint64_t nrows, r.U64());
  if (nrows > kMaxWireRows) {
    return Status::SerializationError("NXB1 row count exceeds sanity bound");
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  std::vector<Column> columns;
  columns.reserve(schema->num_fields());
  for (int c = 0; c < schema->num_fields(); ++c) {
    NEXUS_ASSIGN_OR_RETURN(
        Column col,
        DecodeColumn(&r, schema->field(c).type, static_cast<int64_t>(nrows)));
    columns.push_back(std::move(col));
  }
  if (!r.done()) {
    return Status::SerializationError("trailing bytes after NXB1 columns");
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr table,
                         Table::Make(schema, std::move(columns)));
  if (!is_array) return Dataset(table);
  std::vector<std::string> dim_names;
  for (int i : schema->DimensionIndices()) {
    dim_names.push_back(schema->field(i).name);
  }
  if (dim_names.size() != chunk_sizes.size()) {
    return Status::SerializationError("chunk list does not match dimensions");
  }
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> arr,
                         NDArray::FromTable(*table, dim_names, chunk_sizes));
  return Dataset(NDArrayPtr(std::move(arr)));
}

// ---------------------------------------------------------------------------
// Datasets.
// ---------------------------------------------------------------------------

Sexpr ValueToSexpr(const Value& v) {
  if (v.is_null()) return Sexpr::Sym("null");
  if (v.is_bool()) return Sexpr::Sym(v.AsBool() ? "true" : "false");
  if (v.is_int64()) return Sexpr::Int(v.AsInt64());
  if (v.is_float64()) return Sexpr::Float(v.AsFloat64());
  return Sexpr::Str(v.AsString());
}

Result<Value> ValueFromSexpr(const Sexpr& s, DataType want) {
  if (s.is_symbol()) {
    if (s.text == "null") return Value::Null();
    if (s.text == "true") return Value::Bool(true);
    if (s.text == "false") return Value::Bool(false);
    return Status::SerializationError(StrCat("bad value symbol: ", s.text));
  }
  if (s.is_int()) {
    return want == DataType::kFloat64 ? Value::Float64(static_cast<double>(s.i))
                                      : Value::Int64(s.i);
  }
  if (s.is_float()) return Value::Float64(s.f);
  if (s.is_string()) return Value::String(s.text);
  return Status::SerializationError("bad value");
}

Sexpr SchemaToSexpr(const Schema& schema) {
  std::vector<Sexpr> items = {Sexpr::Sym("schema")};
  for (const Field& f : schema.fields()) {
    std::vector<Sexpr> fitems = {Sexpr::Sym("field"), Sexpr::Str(f.name),
                                 Sexpr::Sym(DataTypeName(f.type))};
    if (f.is_dimension) fitems.push_back(Sexpr::Sym("dim"));
    items.push_back(Sexpr::List(std::move(fitems)));
  }
  return Sexpr::List(std::move(items));
}

Result<SchemaPtr> SchemaFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 1, "schema"));
  if (s.items[0].text != "schema") {
    return Status::SerializationError("expected (schema ...)");
  }
  std::vector<Field> fields;
  for (size_t i = 1; i < s.items.size(); ++i) {
    const Sexpr& f = s.items[i];
    NEXUS_RETURN_NOT_OK(Expect(f, 3, "field"));
    NEXUS_ASSIGN_OR_RETURN(std::string name, AsString(f.items[1], "field name"));
    if (!f.items[2].is_symbol()) {
      return Status::SerializationError("field type must be a symbol");
    }
    NEXUS_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(f.items[2].text));
    bool dim = f.items.size() > 3 && f.items[3].is_symbol() &&
               f.items[3].text == "dim";
    fields.push_back(Field{std::move(name), type, dim});
  }
  return Schema::Make(std::move(fields));
}

Sexpr DatasetToSexpr(const Dataset& data, WireFormat format) {
  if (format == WireFormat::kBinary) return Sexpr::Blob(EncodeNxb1(data));
  std::vector<Sexpr> items = {Sexpr::Sym("dataset")};
  TablePtr table = data.AsTable().ValueOrDie();
  items.push_back(SchemaToSexpr(*table->schema()));
  if (data.is_array()) {
    std::vector<Sexpr> chunks = {Sexpr::Sym("chunks")};
    for (const DimensionSpec& d : data.array()->dims()) {
      chunks.push_back(Sexpr::Int(d.chunk_size));
    }
    items.push_back(Sexpr::List(std::move(chunks)));
  }
  std::vector<Sexpr> rows = {Sexpr::Sym("rows")};
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Sexpr> row;
    row.reserve(static_cast<size_t>(table->num_columns()));
    for (int c = 0; c < table->num_columns(); ++c) {
      row.push_back(ValueToSexpr(table->At(r, c)));
    }
    rows.push_back(Sexpr::List(std::move(row)));
  }
  items.push_back(Sexpr::List(std::move(rows)));
  return Sexpr::List(std::move(items));
}

Result<Dataset> DatasetFromSexpr(const Sexpr& s) {
  if (s.is_blob()) return DecodeNxb1(s.text);
  NEXUS_RETURN_NOT_OK(Expect(s, 3, "dataset"));
  if (s.items[0].text != "dataset") {
    return Status::SerializationError("expected (dataset ...)");
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaFromSexpr(s.items[1]));
  size_t next = 2;
  std::vector<int64_t> chunk_sizes;
  bool is_array = false;
  if (s.items[next].is_list() && !s.items[next].items.empty() &&
      s.items[next].items[0].is_symbol() &&
      s.items[next].items[0].text == "chunks") {
    is_array = true;
    for (size_t i = 1; i < s.items[next].items.size(); ++i) {
      NEXUS_ASSIGN_OR_RETURN(int64_t c, AsInt(s.items[next].items[i], "chunk"));
      chunk_sizes.push_back(c);
    }
    ++next;
  }
  if (next >= s.items.size()) {
    return Status::SerializationError("dataset missing its rows section");
  }
  const Sexpr& rows = s.items[next];
  NEXUS_RETURN_NOT_OK(Expect(rows, 1, "rows"));
  if (rows.items[0].text != "rows") {
    return Status::SerializationError("expected (rows ...)");
  }
  TableBuilder builder(schema);
  std::vector<Value> row(static_cast<size_t>(schema->num_fields()));
  for (size_t r = 1; r < rows.items.size(); ++r) {
    const Sexpr& rs = rows.items[r];
    if (!rs.is_list() ||
        rs.items.size() != static_cast<size_t>(schema->num_fields())) {
      return Status::SerializationError(StrCat("row ", r, " has wrong arity"));
    }
    for (size_t c = 0; c < rs.items.size(); ++c) {
      NEXUS_ASSIGN_OR_RETURN(
          row[c], ValueFromSexpr(rs.items[c], schema->field(static_cast<int>(c)).type));
    }
    NEXUS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  if (!is_array) return Dataset(table);
  std::vector<std::string> dim_names;
  for (int i : schema->DimensionIndices()) {
    dim_names.push_back(schema->field(i).name);
  }
  if (dim_names.size() != chunk_sizes.size()) {
    return Status::SerializationError("chunk list does not match dimensions");
  }
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> arr,
                         NDArray::FromTable(*table, dim_names, chunk_sizes));
  return Dataset(NDArrayPtr(std::move(arr)));
}

// ---------------------------------------------------------------------------
// Plans.
// ---------------------------------------------------------------------------

Sexpr PlanToSexpr(const Plan& p, WireFormat format);

Sexpr OptionalExprToSexpr(const ExprPtr& e) {
  if (e == nullptr) return Sexpr::Sym("none");
  return ExprToSexpr(*e);
}

Sexpr PlanToSexpr(const Plan& p, WireFormat format) {
  std::vector<Sexpr> items = {Sexpr::Sym(OpKindName(p.kind()))};
  for (const PlanPtr& c : p.children()) {
    items.push_back(PlanToSexpr(*c, format));
  }
  switch (p.kind()) {
    case OpKind::kScan:
      items.push_back(Sexpr::Str(p.As<ScanOp>().table));
      break;
    case OpKind::kValues:
      items.push_back(DatasetToSexpr(p.As<ValuesOp>().data, format));
      break;
    case OpKind::kLoopVar:
      items.push_back(Sexpr::Sym(p.As<LoopVarOp>().previous ? "prev" : "curr"));
      break;
    case OpKind::kSelect:
      items.push_back(ExprToSexpr(*p.As<SelectOp>().predicate));
      break;
    case OpKind::kProject:
      for (const std::string& c : p.As<ProjectOp>().columns) {
        items.push_back(Sexpr::Str(c));
      }
      break;
    case OpKind::kExtend:
      for (const auto& [name, expr] : p.As<ExtendOp>().defs) {
        items.push_back(Sexpr::List(
            {Sexpr::Sym("def"), Sexpr::Str(name), ExprToSexpr(*expr)}));
      }
      break;
    case OpKind::kJoin: {
      const auto& op = p.As<JoinOp>();
      items.push_back(Sexpr::Sym(JoinTypeName(op.type)));
      std::vector<Sexpr> keys = {Sexpr::Sym("keys")};
      for (size_t i = 0; i < op.left_keys.size(); ++i) {
        keys.push_back(Sexpr::List(
            {Sexpr::Str(op.left_keys[i]), Sexpr::Str(op.right_keys[i])}));
      }
      items.push_back(Sexpr::List(std::move(keys)));
      items.push_back(OptionalExprToSexpr(op.residual));
      break;
    }
    case OpKind::kAggregate: {
      const auto& op = p.As<AggregateOp>();
      std::vector<Sexpr> by = {Sexpr::Sym("by")};
      for (const std::string& g : op.group_by) by.push_back(Sexpr::Str(g));
      items.push_back(Sexpr::List(std::move(by)));
      for (const AggSpec& a : op.aggs) {
        items.push_back(Sexpr::List({Sexpr::Sym("agg"),
                                     Sexpr::Sym(AggFuncName(a.func)),
                                     Sexpr::Str(a.output_name),
                                     OptionalExprToSexpr(a.input)}));
      }
      break;
    }
    case OpKind::kSort:
      for (const SortKey& k : p.As<SortOp>().keys) {
        items.push_back(Sexpr::List({Sexpr::Sym("key"), Sexpr::Str(k.column),
                                     Sexpr::Sym(k.ascending ? "asc" : "desc")}));
      }
      break;
    case OpKind::kLimit:
      items.push_back(Sexpr::Int(p.As<LimitOp>().limit));
      items.push_back(Sexpr::Int(p.As<LimitOp>().offset));
      break;
    case OpKind::kDistinct:
    case OpKind::kUnion:
    case OpKind::kUnbox:
      break;
    case OpKind::kRename:
      for (const auto& [from, to] : p.As<RenameOp>().mapping) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("map"), Sexpr::Str(from), Sexpr::Str(to)}));
      }
      break;
    case OpKind::kRebox: {
      const auto& op = p.As<ReboxOp>();
      items.push_back(Sexpr::Int(op.chunk_size));
      for (const std::string& d : op.dims) items.push_back(Sexpr::Str(d));
      break;
    }
    case OpKind::kSlice:
      for (const DimRange& r : p.As<SliceOp>().ranges) {
        items.push_back(Sexpr::List({Sexpr::Sym("range"), Sexpr::Str(r.dim),
                                     Sexpr::Int(r.lo), Sexpr::Int(r.hi)}));
      }
      break;
    case OpKind::kShift:
      for (const auto& [dim, delta] : p.As<ShiftOp>().offsets) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("off"), Sexpr::Str(dim), Sexpr::Int(delta)}));
      }
      break;
    case OpKind::kRegrid: {
      const auto& op = p.As<RegridOp>();
      items.push_back(Sexpr::Sym(AggFuncName(op.func)));
      for (const auto& [dim, f] : op.factors) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("factor"), Sexpr::Str(dim), Sexpr::Int(f)}));
      }
      break;
    }
    case OpKind::kTranspose:
      for (const std::string& d : p.As<TransposeOp>().dim_order) {
        items.push_back(Sexpr::Str(d));
      }
      break;
    case OpKind::kWindow: {
      const auto& op = p.As<WindowOp>();
      items.push_back(Sexpr::Sym(AggFuncName(op.func)));
      for (const auto& [dim, r] : op.radii) {
        items.push_back(
            Sexpr::List({Sexpr::Sym("radius"), Sexpr::Str(dim), Sexpr::Int(r)}));
      }
      break;
    }
    case OpKind::kElemWise:
      items.push_back(Sexpr::Sym(BinaryOpName(p.As<ElemWiseOpSpec>().op)));
      break;
    case OpKind::kMatMul:
      items.push_back(Sexpr::Str(p.As<MatMulOp>().result_attr));
      break;
    case OpKind::kPageRank: {
      const auto& op = p.As<PageRankOp>();
      items.push_back(Sexpr::Str(op.src_col));
      items.push_back(Sexpr::Str(op.dst_col));
      items.push_back(Sexpr::Float(op.damping));
      items.push_back(Sexpr::Int(op.max_iters));
      items.push_back(Sexpr::Float(op.epsilon));
      break;
    }
    case OpKind::kIterate: {
      const auto& op = p.As<IterateOp>();
      items.push_back(PlanToSexpr(*op.body, format));
      items.push_back(op.measure == nullptr ? Sexpr::Sym("none")
                                            : PlanToSexpr(*op.measure, format));
      items.push_back(Sexpr::Float(op.epsilon));
      items.push_back(Sexpr::Int(op.max_iters));
      break;
    }
    case OpKind::kExchange: {
      const auto& op = p.As<ExchangeOp>();
      items.push_back(Sexpr::Str(op.target_server));
      items.push_back(Sexpr::Sym(TransferModeName(op.mode)));
      break;
    }
  }
  return Sexpr::List(std::move(items));
}

Result<PlanPtr> PlanFromSexpr(const Sexpr& s);

Result<ExprPtr> OptionalExprFromSexpr(const Sexpr& s) {
  if (s.is_symbol() && s.text == "none") return ExprPtr(nullptr);
  return ExprFromSexpr(s);
}

// Number of leading child-plan items for each operator.
Result<int> ChildCount(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
    case OpKind::kValues:
    case OpKind::kLoopVar:
      return 0;
    case OpKind::kJoin:
    case OpKind::kUnion:
    case OpKind::kElemWise:
    case OpKind::kMatMul:
      return 2;
    default:
      return 1;
  }
}

// Minimum argument (non-child) items required by each operator.
int MinArgCount(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
    case OpKind::kValues:
    case OpKind::kLoopVar:
    case OpKind::kSelect:
    case OpKind::kRebox:
    case OpKind::kRegrid:
    case OpKind::kWindow:
    case OpKind::kElemWise:
    case OpKind::kMatMul:
    case OpKind::kAggregate:
      return 1;
    case OpKind::kLimit:
    case OpKind::kExchange:
      return 2;
    case OpKind::kJoin:
      return 3;
    case OpKind::kIterate:
      return 4;
    case OpKind::kPageRank:
      return 5;
    default:
      return 0;
  }
}

Result<PlanPtr> PlanFromSexpr(const Sexpr& s) {
  NEXUS_RETURN_NOT_OK(Expect(s, 1, "plan"));
  NEXUS_ASSIGN_OR_RETURN(OpKind kind, OpKindFromName(s.items[0].text));
  NEXUS_ASSIGN_OR_RETURN(int n_children, ChildCount(kind));
  if (static_cast<int>(s.items.size()) < 1 + n_children) {
    return Status::SerializationError(
        StrCat("operator ", OpKindName(kind), " missing children"));
  }
  std::vector<PlanPtr> children;
  for (int i = 0; i < n_children; ++i) {
    NEXUS_ASSIGN_OR_RETURN(PlanPtr c, PlanFromSexpr(s.items[static_cast<size_t>(1 + i)]));
    children.push_back(std::move(c));
  }
  size_t a = static_cast<size_t>(1 + n_children);  // first argument index
  size_t n_args = s.items.size() - a;
  if (n_args < static_cast<size_t>(MinArgCount(kind))) {
    return Status::SerializationError(
        StrCat("operator ", OpKindName(kind), " missing arguments"));
  }
  auto arg = [&](size_t i) -> const Sexpr& { return s.items[a + i]; };

  switch (kind) {
    case OpKind::kScan: {
      NEXUS_ASSIGN_OR_RETURN(std::string t, AsString(arg(0), "table"));
      return Plan::Scan(std::move(t));
    }
    case OpKind::kValues: {
      NEXUS_ASSIGN_OR_RETURN(Dataset d, DatasetFromSexpr(arg(0)));
      return Plan::Values(std::move(d));
    }
    case OpKind::kLoopVar:
      return Plan::LoopVar(arg(0).is_symbol() && arg(0).text == "prev");
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ExprFromSexpr(arg(0)));
      return Plan::Select(children[0], std::move(e));
    }
    case OpKind::kProject: {
      std::vector<std::string> cols;
      for (size_t i = 0; i < n_args; ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string c, AsString(arg(i), "column"));
        cols.push_back(std::move(c));
      }
      return Plan::Project(children[0], std::move(cols));
    }
    case OpKind::kExtend: {
      std::vector<std::pair<std::string, ExprPtr>> defs;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& d = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(d, 3, "extend def"));
        NEXUS_ASSIGN_OR_RETURN(std::string name, AsString(d.items[1], "def name"));
        NEXUS_ASSIGN_OR_RETURN(ExprPtr e, ExprFromSexpr(d.items[2]));
        defs.emplace_back(std::move(name), std::move(e));
      }
      return Plan::Extend(children[0], std::move(defs));
    }
    case OpKind::kJoin: {
      if (n_args < 3 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed join");
      }
      NEXUS_ASSIGN_OR_RETURN(JoinType type, JoinTypeFromName(arg(0).text));
      const Sexpr& keys = arg(1);
      NEXUS_RETURN_NOT_OK(Expect(keys, 1, "join keys"));
      std::vector<std::string> lk, rk;
      for (size_t i = 1; i < keys.items.size(); ++i) {
        const Sexpr& pair = keys.items[i];
        if (!pair.is_list() || pair.items.size() != 2) {
          return Status::SerializationError("malformed join key pair");
        }
        NEXUS_ASSIGN_OR_RETURN(std::string l, AsString(pair.items[0], "left key"));
        NEXUS_ASSIGN_OR_RETURN(std::string r, AsString(pair.items[1], "right key"));
        lk.push_back(std::move(l));
        rk.push_back(std::move(r));
      }
      NEXUS_ASSIGN_OR_RETURN(ExprPtr residual, OptionalExprFromSexpr(arg(2)));
      return Plan::Join(children[0], children[1], type, std::move(lk),
                        std::move(rk), std::move(residual));
    }
    case OpKind::kAggregate: {
      if (n_args < 1) return Status::SerializationError("malformed aggregate");
      const Sexpr& by = arg(0);
      NEXUS_RETURN_NOT_OK(Expect(by, 1, "group-by"));
      std::vector<std::string> group_by;
      for (size_t i = 1; i < by.items.size(); ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string g, AsString(by.items[i], "group key"));
        group_by.push_back(std::move(g));
      }
      std::vector<AggSpec> aggs;
      for (size_t i = 1; i < n_args; ++i) {
        const Sexpr& ag = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(ag, 4, "agg spec"));
        if (!ag.items[1].is_symbol()) {
          return Status::SerializationError("agg func must be a symbol");
        }
        AggSpec spec;
        NEXUS_ASSIGN_OR_RETURN(spec.func, AggFuncFromName(ag.items[1].text));
        NEXUS_ASSIGN_OR_RETURN(spec.output_name,
                               AsString(ag.items[2], "agg output"));
        NEXUS_ASSIGN_OR_RETURN(spec.input, OptionalExprFromSexpr(ag.items[3]));
        aggs.push_back(std::move(spec));
      }
      return Plan::Aggregate(children[0], std::move(group_by), std::move(aggs));
    }
    case OpKind::kSort: {
      std::vector<SortKey> keys;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& k = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(k, 3, "sort key"));
        SortKey key;
        NEXUS_ASSIGN_OR_RETURN(key.column, AsString(k.items[1], "sort column"));
        key.ascending = !(k.items[2].is_symbol() && k.items[2].text == "desc");
        keys.push_back(std::move(key));
      }
      return Plan::Sort(children[0], std::move(keys));
    }
    case OpKind::kLimit: {
      NEXUS_ASSIGN_OR_RETURN(int64_t limit, AsInt(arg(0), "limit"));
      NEXUS_ASSIGN_OR_RETURN(int64_t offset, AsInt(arg(1), "offset"));
      return Plan::Limit(children[0], limit, offset);
    }
    case OpKind::kDistinct:
      return Plan::Distinct(children[0]);
    case OpKind::kUnion:
      return Plan::Union(children[0], children[1]);
    case OpKind::kUnbox:
      return Plan::Unbox(children[0]);
    case OpKind::kRename: {
      std::vector<std::pair<std::string, std::string>> mapping;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& m = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(m, 3, "rename map"));
        NEXUS_ASSIGN_OR_RETURN(std::string from, AsString(m.items[1], "from"));
        NEXUS_ASSIGN_OR_RETURN(std::string to, AsString(m.items[2], "to"));
        mapping.emplace_back(std::move(from), std::move(to));
      }
      return Plan::Rename(children[0], std::move(mapping));
    }
    case OpKind::kRebox: {
      NEXUS_ASSIGN_OR_RETURN(int64_t chunk, AsInt(arg(0), "chunk size"));
      std::vector<std::string> dims;
      for (size_t i = 1; i < n_args; ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, AsString(arg(i), "dim"));
        dims.push_back(std::move(d));
      }
      return Plan::Rebox(children[0], std::move(dims), chunk);
    }
    case OpKind::kSlice: {
      std::vector<DimRange> ranges;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& r = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(r, 4, "slice range"));
        DimRange range;
        NEXUS_ASSIGN_OR_RETURN(range.dim, AsString(r.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(range.lo, AsInt(r.items[2], "lo"));
        NEXUS_ASSIGN_OR_RETURN(range.hi, AsInt(r.items[3], "hi"));
        ranges.push_back(std::move(range));
      }
      return Plan::Slice(children[0], std::move(ranges));
    }
    case OpKind::kShift: {
      std::vector<std::pair<std::string, int64_t>> offsets;
      for (size_t i = 0; i < n_args; ++i) {
        const Sexpr& o = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(o, 3, "shift offset"));
        NEXUS_ASSIGN_OR_RETURN(std::string dim, AsString(o.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(int64_t delta, AsInt(o.items[2], "delta"));
        offsets.emplace_back(std::move(dim), delta);
      }
      return Plan::Shift(children[0], std::move(offsets));
    }
    case OpKind::kRegrid: {
      if (n_args < 1 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed regrid");
      }
      NEXUS_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(arg(0).text));
      std::vector<std::pair<std::string, int64_t>> factors;
      for (size_t i = 1; i < n_args; ++i) {
        const Sexpr& f = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(f, 3, "regrid factor"));
        NEXUS_ASSIGN_OR_RETURN(std::string dim, AsString(f.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(int64_t factor, AsInt(f.items[2], "factor"));
        factors.emplace_back(std::move(dim), factor);
      }
      return Plan::Regrid(children[0], std::move(factors), func);
    }
    case OpKind::kTranspose: {
      std::vector<std::string> order;
      for (size_t i = 0; i < n_args; ++i) {
        NEXUS_ASSIGN_OR_RETURN(std::string d, AsString(arg(i), "dim"));
        order.push_back(std::move(d));
      }
      return Plan::Transpose(children[0], std::move(order));
    }
    case OpKind::kWindow: {
      if (n_args < 1 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed window");
      }
      NEXUS_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(arg(0).text));
      std::vector<std::pair<std::string, int64_t>> radii;
      for (size_t i = 1; i < n_args; ++i) {
        const Sexpr& r = arg(i);
        NEXUS_RETURN_NOT_OK(Expect(r, 3, "window radius"));
        NEXUS_ASSIGN_OR_RETURN(std::string dim, AsString(r.items[1], "dim"));
        NEXUS_ASSIGN_OR_RETURN(int64_t radius, AsInt(r.items[2], "radius"));
        radii.emplace_back(std::move(dim), radius);
      }
      return Plan::Window(children[0], std::move(radii), func);
    }
    case OpKind::kElemWise: {
      if (n_args < 1 || !arg(0).is_symbol()) {
        return Status::SerializationError("malformed elemwise");
      }
      NEXUS_ASSIGN_OR_RETURN(BinaryOp op, BinaryOpFromName(arg(0).text));
      return Plan::ElemWise(children[0], children[1], op);
    }
    case OpKind::kMatMul: {
      NEXUS_ASSIGN_OR_RETURN(std::string attr, AsString(arg(0), "result attr"));
      return Plan::MatMul(children[0], children[1], std::move(attr));
    }
    case OpKind::kPageRank: {
      PageRankOp op;
      NEXUS_ASSIGN_OR_RETURN(op.src_col, AsString(arg(0), "src col"));
      NEXUS_ASSIGN_OR_RETURN(op.dst_col, AsString(arg(1), "dst col"));
      if (!arg(2).is_float() && !arg(2).is_int()) {
        return Status::SerializationError("pagerank damping must be numeric");
      }
      op.damping = arg(2).as_number();
      NEXUS_ASSIGN_OR_RETURN(op.max_iters, AsInt(arg(3), "max iters"));
      if (!arg(4).is_float() && !arg(4).is_int()) {
        return Status::SerializationError("pagerank epsilon must be numeric");
      }
      op.epsilon = arg(4).as_number();
      return Plan::PageRank(children[0], std::move(op));
    }
    case OpKind::kIterate: {
      IterateOp op;
      NEXUS_ASSIGN_OR_RETURN(op.body, PlanFromSexpr(arg(0)));
      if (arg(1).is_symbol() && arg(1).text == "none") {
        op.measure = nullptr;
      } else {
        NEXUS_ASSIGN_OR_RETURN(op.measure, PlanFromSexpr(arg(1)));
      }
      if (!arg(2).is_float() && !arg(2).is_int()) {
        return Status::SerializationError("iterate epsilon must be numeric");
      }
      op.epsilon = arg(2).as_number();
      NEXUS_ASSIGN_OR_RETURN(op.max_iters, AsInt(arg(3), "max iters"));
      return Plan::Iterate(children[0], std::move(op));
    }
    case OpKind::kExchange: {
      NEXUS_ASSIGN_OR_RETURN(std::string server, AsString(arg(0), "server"));
      if (!arg(1).is_symbol()) {
        return Status::SerializationError("malformed transfer mode");
      }
      TransferMode mode = arg(1).text == "relay" ? TransferMode::kRelay
                                                 : TransferMode::kDirect;
      return Plan::Exchange(children[0], std::move(server), mode);
    }
  }
  return Status::Internal("unhandled operator in plan parser");
}

}  // namespace

std::string SerializePlan(const Plan& plan) {
  return SerializePlanWire(plan, WireFormat::kText);
}

std::string SerializePlanWire(const Plan& plan, WireFormat format) {
  std::string out;
  WriteSexpr(PlanToSexpr(plan, format), &out);
  return out;
}

Result<PlanPtr> ParsePlan(std::string_view wire) {
  SexprParser parser(wire);
  NEXUS_ASSIGN_OR_RETURN(Sexpr s, parser.Parse());
  return PlanFromSexpr(s);
}

std::string SerializeExpr(const Expr& expr) {
  std::string out;
  WriteSexpr(ExprToSexpr(expr), &out);
  return out;
}

Result<ExprPtr> ParseExpr(std::string_view wire) {
  SexprParser parser(wire);
  NEXUS_ASSIGN_OR_RETURN(Sexpr s, parser.Parse());
  return ExprFromSexpr(s);
}

std::string SerializeDataset(const Dataset& data) {
  std::string out;
  WriteSexpr(DatasetToSexpr(data, WireFormat::kText), &out);
  return out;
}

Result<Dataset> ParseDataset(std::string_view wire) {
  SexprParser parser(wire);
  NEXUS_ASSIGN_OR_RETURN(Sexpr s, parser.Parse());
  return DatasetFromSexpr(s);
}

std::string SerializeDatasetWire(const Dataset& data, WireFormat format) {
  if (format == WireFormat::kBinary) return EncodeNxb1(data);
  return SerializeDataset(data);
}

Result<Dataset> ParseDatasetWire(std::string_view wire) {
  if (wire.size() >= 4 && std::memcmp(wire.data(), kNxb1Magic, 4) == 0) {
    return DecodeNxb1(wire);
  }
  return ParseDataset(wire);
}

uint64_t FingerprintWire(std::string_view wire) {
  uint64_t fp = HashInt64(HashBytes(wire.data(), wire.size()));
  return fp == 0 ? 1 : fp;
}

// ---------------------------------------------------------------------------
// Plan-cache envelope.
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kPlanTag = "%NXB1-PLAN ";
constexpr std::string_view kExecTag = "%NXB1-EXEC ";

void AppendNetstring(std::string_view bytes, std::string* out) {
  out->append(StrCat(static_cast<int64_t>(bytes.size())));
  out->push_back(':');
  out->append(bytes);
}

// Parses "<len>:<bytes>" at the reader position.
Result<std::string_view> ParseNetstring(std::string_view in, size_t* pos) {
  size_t start = *pos;
  while (*pos < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[*pos]))) {
    ++*pos;
  }
  if (*pos == start || *pos >= in.size() || in[*pos] != ':') {
    return Status::SerializationError("malformed envelope length prefix");
  }
  unsigned long long len = std::strtoull(
      std::string(in.substr(start, *pos - start)).c_str(), nullptr, 10);
  ++*pos;  // ':'
  if (len > in.size() - *pos) {
    return Status::SerializationError("envelope segment exceeds input");
  }
  std::string_view v = in.substr(*pos, len);
  *pos += len;
  return v;
}

}  // namespace

std::string BuildWireEnvelope(
    WireEnvelope::Kind kind, uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::string>>& bindings,
    std::string_view plan_wire) {
  if (kind == WireEnvelope::Kind::kNone) return std::string(plan_wire);
  std::string out;
  size_t reserve = 48 + plan_wire.size();
  for (const auto& [name, wire] : bindings) {
    reserve += name.size() + wire.size() + 24;
  }
  out.reserve(reserve);
  out.append(kind == WireEnvelope::Kind::kPlanStore ? kPlanTag : kExecTag);
  out.append(std::to_string(fingerprint));
  out.push_back(' ');
  out.append(StrCat(static_cast<int64_t>(bindings.size())));
  out.push_back('\n');
  for (const auto& [name, wire] : bindings) {
    AppendNetstring(name, &out);
    AppendNetstring(wire, &out);
  }
  if (kind == WireEnvelope::Kind::kPlanStore) out.append(plan_wire);
  return out;
}

Result<WireEnvelope> ParseWireEnvelope(std::string_view wire) {
  WireEnvelope env;
  if (wire.substr(0, kPlanTag.size()) == kPlanTag) {
    env.kind = WireEnvelope::Kind::kPlanStore;
  } else if (wire.substr(0, kExecTag.size()) == kExecTag) {
    env.kind = WireEnvelope::Kind::kExecCached;
  } else {
    env.plan_wire = wire;
    return env;
  }
  size_t pos = kPlanTag.size();
  size_t start = pos;
  while (pos < wire.size() &&
         std::isdigit(static_cast<unsigned char>(wire[pos]))) {
    ++pos;
  }
  if (pos == start || pos >= wire.size() || wire[pos] != ' ') {
    return Status::SerializationError("malformed envelope fingerprint");
  }
  env.fingerprint = std::strtoull(
      std::string(wire.substr(start, pos - start)).c_str(), nullptr, 10);
  ++pos;  // ' '
  start = pos;
  while (pos < wire.size() &&
         std::isdigit(static_cast<unsigned char>(wire[pos]))) {
    ++pos;
  }
  if (pos == start || pos >= wire.size() || wire[pos] != '\n') {
    return Status::SerializationError("malformed envelope binding count");
  }
  unsigned long long nbind = std::strtoull(
      std::string(wire.substr(start, pos - start)).c_str(), nullptr, 10);
  ++pos;  // '\n'
  env.bindings.reserve(nbind);
  for (unsigned long long i = 0; i < nbind; ++i) {
    NEXUS_ASSIGN_OR_RETURN(std::string_view name, ParseNetstring(wire, &pos));
    NEXUS_ASSIGN_OR_RETURN(std::string_view data, ParseNetstring(wire, &pos));
    env.bindings.emplace_back(name, data);
  }
  env.plan_wire = wire.substr(pos);
  if (env.kind == WireEnvelope::Kind::kExecCached && !env.plan_wire.empty()) {
    return Status::SerializationError("exec envelope carries trailing bytes");
  }
  if (env.kind == WireEnvelope::Kind::kPlanStore && env.plan_wire.empty()) {
    return Status::SerializationError("plan envelope is missing its plan");
  }
  return env;
}

// ---------------------------------------------------------------------------
// Delta bindings.
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kDeltaTag = "%NXB1-DELTA ";

// Parses the run of digits at *pos into `out`; returns false on no digits.
bool ParseU64At(std::string_view in, size_t* pos, unsigned long long* out) {
  size_t start = *pos;
  while (*pos < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[*pos]))) {
    ++*pos;
  }
  if (*pos == start) return false;
  *out = std::strtoull(std::string(in.substr(start, *pos - start)).c_str(),
                       nullptr, 10);
  return true;
}

}  // namespace

std::string BuildDeltaBindingWire(int64_t base_rows, uint64_t chain_fp,
                                  std::string_view tail_wire) {
  std::string out;
  out.reserve(kDeltaTag.size() + 48 + tail_wire.size());
  out.append(kDeltaTag);
  out.append(StrCat(base_rows));
  out.push_back(' ');
  out.append(std::to_string(chain_fp));
  out.push_back('\n');
  out.append(tail_wire);
  return out;
}

bool IsDeltaBindingWire(std::string_view wire) {
  return wire.substr(0, kDeltaTag.size()) == kDeltaTag;
}

Result<DeltaBindingView> ParseDeltaBindingWire(std::string_view wire) {
  if (!IsDeltaBindingWire(wire)) {
    return Status::SerializationError("not a delta binding wire");
  }
  size_t pos = kDeltaTag.size();
  unsigned long long base_rows = 0, chain_fp = 0;
  if (!ParseU64At(wire, &pos, &base_rows) || pos >= wire.size() ||
      wire[pos] != ' ') {
    return Status::SerializationError("malformed delta binding base rows");
  }
  ++pos;  // ' '
  if (!ParseU64At(wire, &pos, &chain_fp) || pos >= wire.size() ||
      wire[pos] != '\n') {
    return Status::SerializationError("malformed delta binding chain");
  }
  ++pos;  // '\n'
  DeltaBindingView view;
  view.base_rows = static_cast<int64_t>(base_rows);
  view.chain_fp = chain_fp;
  view.tail_wire = wire.substr(pos);
  return view;
}

uint64_t ChainFingerprint(uint64_t prev, std::string_view wire) {
  uint64_t fp = HashInt64(prev ^ FingerprintWire(wire));
  return fp == 0 ? 1 : fp;
}

}  // namespace nexus
