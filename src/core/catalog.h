// Catalog: name → collection binding. Every server hosts one; the planner
// consults schemas through it, and Scan leaves resolve against it.
#ifndef NEXUS_CORE_CATALOG_H_
#define NEXUS_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "optimizer/stats.h"
#include "types/dataset.h"

namespace nexus {

/// Append-tail bookkeeping of one catalog table (see InMemoryCatalog::Append).
struct TableTail {
  /// Number of Append batches since the table was last Put. The watermark a
  /// change-log reader holds onto between refreshes.
  int64_t epoch = 0;
  /// Bumped every time Put replaces the collection wholesale. A reader whose
  /// remembered generation no longer matches cannot trust its retained
  /// state: the table it incrementalized over is gone.
  uint64_t generation = 0;
  /// Current row count.
  int64_t row_count = 0;
};

/// Read-only schema lookup used by schema inference and planning.
class Catalog {
 public:
  virtual ~Catalog() = default;

  /// Schema of the named collection.
  virtual Result<SchemaPtr> GetSchema(const std::string& name) const = 0;

  /// True when the collection exists.
  virtual bool Contains(const std::string& name) const = 0;

  /// Statistics of the named collection, for cost-based planning. The base
  /// implementation reports none; catalogs that store data override it.
  virtual Result<TableStats> GetStats(const std::string& name) const;
};

/// Catalog backed by an in-memory map, also storing the data itself. This is
/// what each simulated server uses as its storage layer.
///
/// Thread-safe: the coordinator may execute sibling fragments concurrently,
/// so lookups and temp registrations on one server's catalog can overlap.
class InMemoryCatalog : public Catalog {
 public:
  /// Registers or replaces a named collection. Statistics are computed here
  /// (one scan, NDV from a bounded sample) so every registered collection —
  /// including the coordinator's fragment temps — is immediately plannable
  /// with real numbers.
  Status Put(const std::string& name, Dataset data);

  /// The stored collection.
  Result<Dataset> Get(const std::string& name) const;

  /// Appends `delta`'s rows to the tail of an existing table collection
  /// (schemas must be equal), advancing the table's epoch. Statistics are
  /// maintained incrementally: the first Append seeds a per-column
  /// accumulator (KMV sketch + running min/max/null-count) from the current
  /// rows, and every Append after that folds only the delta in — O(|Δ|),
  /// not O(|table|) — so the estimator never plans on stale cardinalities.
  Status Append(const std::string& name, const Dataset& delta);

  /// Epoch/generation/row-count of the named table — the watermark triple an
  /// incremental reader snapshots per refresh.
  Result<TableTail> Tail(const std::string& name) const;

  /// Change-log retrieval: the rows appended after `epoch`, in append order.
  /// O(|Δ|) — a slice of the tail, never a rescan. epoch == current returns
  /// an empty table; an epoch from a previous generation is an error (the
  /// boundary row counts died with the old table).
  Result<TablePtr> DeltaSince(const std::string& name, int64_t epoch) const;

  Status Drop(const std::string& name);

  Result<SchemaPtr> GetSchema(const std::string& name) const override;
  bool Contains(const std::string& name) const override;
  Result<TableStats> GetStats(const std::string& name) const override;

  /// Recomputes statistics for the named collection from its current data.
  Status RefreshStats(const std::string& name);

  /// Replaces the stored statistics wholesale (tests and what-if planning;
  /// the next Put or RefreshStats of the name overwrites it again).
  Status OverrideStats(const std::string& name, TableStats stats);

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  /// Total bytes across all stored collections.
  int64_t TotalBytes() const;

 private:
  /// Tail state of one entry. Exists for every Put collection (generation
  /// tracking is what tells incremental readers "this name was replaced");
  /// the stats accumulator is built lazily on the first Append so the Put
  /// path keeps its sampled one-scan behaviour byte-for-byte.
  struct TailState {
    int64_t epoch = 0;
    uint64_t generation = 0;
    /// rows_at_epoch[e] = row count after epoch e; [0] is the Put-time count.
    std::vector<int64_t> rows_at_epoch;
    std::unique_ptr<TableStatsAccumulator> acc;
  };

  mutable std::shared_mutex mu_;
  std::map<std::string, Dataset> entries_;
  std::map<std::string, TableStats> stats_;
  std::map<std::string, TailState> tails_;
  uint64_t generation_seq_ = 0;  // process-unique per catalog, never reused
};

}  // namespace nexus

#endif  // NEXUS_CORE_CATALOG_H_
