// Catalog: name → collection binding. Every server hosts one; the planner
// consults schemas through it, and Scan leaves resolve against it.
#ifndef NEXUS_CORE_CATALOG_H_
#define NEXUS_CORE_CATALOG_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "optimizer/stats.h"
#include "types/dataset.h"

namespace nexus {

/// Read-only schema lookup used by schema inference and planning.
class Catalog {
 public:
  virtual ~Catalog() = default;

  /// Schema of the named collection.
  virtual Result<SchemaPtr> GetSchema(const std::string& name) const = 0;

  /// True when the collection exists.
  virtual bool Contains(const std::string& name) const = 0;

  /// Statistics of the named collection, for cost-based planning. The base
  /// implementation reports none; catalogs that store data override it.
  virtual Result<TableStats> GetStats(const std::string& name) const;
};

/// Catalog backed by an in-memory map, also storing the data itself. This is
/// what each simulated server uses as its storage layer.
///
/// Thread-safe: the coordinator may execute sibling fragments concurrently,
/// so lookups and temp registrations on one server's catalog can overlap.
class InMemoryCatalog : public Catalog {
 public:
  /// Registers or replaces a named collection. Statistics are computed here
  /// (one scan, NDV from a bounded sample) so every registered collection —
  /// including the coordinator's fragment temps — is immediately plannable
  /// with real numbers.
  Status Put(const std::string& name, Dataset data);

  /// The stored collection.
  Result<Dataset> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  Result<SchemaPtr> GetSchema(const std::string& name) const override;
  bool Contains(const std::string& name) const override;
  Result<TableStats> GetStats(const std::string& name) const override;

  /// Recomputes statistics for the named collection from its current data.
  Status RefreshStats(const std::string& name);

  /// Replaces the stored statistics wholesale (tests and what-if planning;
  /// the next Put or RefreshStats of the name overwrites it again).
  Status OverrideStats(const std::string& name, TableStats stats);

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  /// Total bytes across all stored collections.
  int64_t TotalBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, Dataset> entries_;
  std::map<std::string, TableStats> stats_;
};

}  // namespace nexus

#endif  // NEXUS_CORE_CATALOG_H_
