// Expansions of intent-carrying operators into the base algebra.
//
// Desideratum 3 (Intent Preservation) cuts both ways: MatMul and PageRank
// stay first-class nodes so capable providers can claim them natively, but
// every intent op also has a defined expansion into base operators so that
// *any* provider combination can evaluate it (desideratum 2). The optimizer's
// recognition rules (optimizer/rules.h) invert ExpandMatMul.
#ifndef NEXUS_CORE_EXPANSION_H_
#define NEXUS_CORE_EXPANSION_H_

#include "core/plan.h"
#include "types/schema.h"

namespace nexus {

/// Rewrites a MatMul node into Join → Extend(product) → Aggregate(sum) →
/// Select(≠0) → Rebox, given the input schemas. The result type-checks to the
/// same schema as the MatMul node.
Result<PlanPtr> ExpandMatMul(const PlanPtr& left, const PlanPtr& right,
                             const MatMulOp& op, const Schema& left_schema,
                             const Schema& right_schema);

/// Rewrites a PageRank node into an Iterate over base relational operators:
/// out-degree and node tables are precomputed as subplans; each iteration
/// joins ranks to edges, redistributes dangling mass, and applies damping;
/// the measure is the L1 delta between successive rank vectors. Matches the
/// native implementation's semantics (ranks sum to 1).
Result<PlanPtr> ExpandPageRank(const PlanPtr& edges, const PageRankOp& op,
                               const Schema& edge_schema);

/// Expands every intent op in `plan` (recursively, including Iterate
/// bodies), leaving other nodes untouched. Needs input schemas, hence a
/// catalog. Used when a plan must run on providers with no native intent
/// support, and by E3's ablation arm.
class Catalog;
Result<PlanPtr> ExpandIntentOps(const PlanPtr& plan, const Catalog& catalog);

}  // namespace nexus

#endif  // NEXUS_CORE_EXPANSION_H_
