#include "core/expansion.h"

#include <functional>

#include "common/str_util.h"
#include "core/schema_inference.h"
#include "expr/builder.h"

namespace nexus {

using namespace nexus::exprs;  // NOLINT

Result<PlanPtr> ExpandMatMul(const PlanPtr& left, const PlanPtr& right,
                             const MatMulOp& op, const Schema& left_schema,
                             const Schema& right_schema) {
  std::vector<int> ld = left_schema.DimensionIndices();
  std::vector<int> rd = right_schema.DimensionIndices();
  std::vector<int> la = left_schema.AttributeIndices();
  std::vector<int> ra = right_schema.AttributeIndices();
  if (ld.size() != 2 || rd.size() != 2 || la.size() != 1 || ra.size() != 1) {
    return Status::PlanError("matmul expansion requires 2-d single-attribute inputs");
  }
  const std::string row = left_schema.field(ld[0]).name;
  const std::string contract = left_schema.field(ld[1]).name;
  std::string col = right_schema.field(rd[1]).name;
  if (col == row) col += "_2";
  const std::string lattr = left_schema.field(la[0]).name;

  // Rename the right side into reserved temporaries so the join cannot
  // collide with left-side names regardless of the input schemas.
  PlanPtr r = Plan::Rename(right, {{right_schema.field(rd[0]).name, "__mm_k"},
                                   {right_schema.field(rd[1]).name, "__mm_c"},
                                   {right_schema.field(ra[0]).name, "__mm_bv"}});
  PlanPtr joined =
      Plan::Join(left, r, JoinType::kInner, {contract}, {"__mm_k"});
  PlanPtr prod =
      Plan::Extend(joined, {{"__mm_p", Mul(Col(lattr), Col("__mm_bv"))}});
  PlanPtr agg = Plan::Aggregate(
      prod, {row, "__mm_c"},
      {AggSpec{AggFunc::kSum, Col("__mm_p"), op.result_attr}});
  // MatMul output is sparse: drop zero-valued sums.
  PlanPtr nonzero = Plan::Select(agg, Ne(Col(op.result_attr), Lit(0)));
  PlanPtr named = Plan::Rename(nonzero, {{"__mm_c", col}});
  return Plan::Rebox(named, {row, col}, 64);
}

Result<PlanPtr> ExpandPageRank(const PlanPtr& edges_in, const PageRankOp& op,
                               const Schema& edge_schema) {
  NEXUS_RETURN_NOT_OK(edge_schema.FindFieldOrError(op.src_col).status());
  NEXUS_RETURN_NOT_OK(edge_schema.FindFieldOrError(op.dst_col).status());
  // Work on a minimal, untagged (src, dst) projection.
  PlanPtr edges = Plan::Unbox(Plan::Project(edges_in, {op.src_col, op.dst_col}));
  if (op.src_col != "__pr_src" || op.dst_col != "__pr_dst") {
    edges = Plan::Rename(edges,
                         {{op.src_col, "__pr_src"}, {op.dst_col, "__pr_dst"}});
  }

  // nodes: every endpoint, once.  {node}
  PlanPtr nodes = Plan::Distinct(Plan::Union(
      Plan::Rename(Plan::Project(edges, {"__pr_src"}), {{"__pr_src", "node"}}),
      Plan::Rename(Plan::Project(edges, {"__pr_dst"}), {{"__pr_dst", "node"}})));

  // out-degree per source.  {__pr_s, __pr_deg}
  PlanPtr deg = Plan::Rename(
      Plan::Aggregate(edges, {"__pr_src"},
                      {AggSpec{AggFunc::kCount, nullptr, "__pr_deg"}}),
      {{"__pr_src", "__pr_s"}});

  // node count as a 1-row scalar.  {__pr_n}
  PlanPtr n_scalar = Plan::Aggregate(
      nodes, {}, {AggSpec{AggFunc::kCount, nullptr, "__pr_n"}});

  // init: rank = 1/N for every node.  {node*, rank}
  PlanPtr init = Plan::Rebox(
      Plan::Project(
          Plan::Extend(
              Plan::Join(nodes, n_scalar, JoinType::kInner, {}, {}, Lit(true)),
              {{"rank", Div(Lit(1.0), Col("__pr_n"))}}),
          {"node", "rank"}),
      {"node"}, 64);

  // --- body: one power-iteration step over LoopVar (the current ranks) ---
  PlanPtr state = Plan::LoopVar();
  // rank and out-degree joined onto each edge.
  PlanPtr ranked = Plan::Join(edges, state, JoinType::kInner, {"__pr_src"},
                              {"node"});
  ranked = Plan::Join(ranked, deg, JoinType::kInner, {"__pr_src"}, {"__pr_s"});
  // damped contribution along each edge.
  PlanPtr contrib = Plan::Extend(
      ranked,
      {{"__pr_c", Mul(Lit(op.damping), Div(Col("rank"), Col("__pr_deg")))}});
  // inbound mass per destination.  {__pr_dst, __pr_in}
  PlanPtr incoming = Plan::Aggregate(
      contrib, {"__pr_dst"}, {AggSpec{AggFunc::kSum, Col("__pr_c"), "__pr_in"}});
  // dangling mass: total rank held by nodes with no outgoing edges.
  PlanPtr dangling = Plan::Aggregate(
      Plan::Join(state, deg, JoinType::kAnti, {"node"}, {"__pr_s"}), {},
      {AggSpec{AggFunc::kSum, Col("rank"), "__pr_dm"}});
  // next rank per node.
  PlanPtr base = Plan::Join(Plan::Project(state, {"node"}), incoming,
                            JoinType::kLeft, {"node"}, {"__pr_dst"});
  base = Plan::Join(base, n_scalar, JoinType::kInner, {}, {}, Lit(true));
  base = Plan::Join(base, dangling, JoinType::kInner, {}, {}, Lit(true));
  ExprPtr teleport = Div(Lit(1.0 - op.damping), Col("__pr_n"));
  ExprPtr dangling_share =
      Mul(Lit(op.damping),
          Div(Func("coalesce", {Col("__pr_dm"), Lit(0.0)}), Col("__pr_n")));
  ExprPtr inbound = Func("coalesce", {Col("__pr_in"), Lit(0.0)});
  PlanPtr body = Plan::Rename(
      Plan::Project(
          Plan::Extend(base, {{"__pr_new",
                               Add(Add(teleport, dangling_share), inbound)}}),
          {"node", "__pr_new"}),
      {{"__pr_new", "rank"}});

  // --- measure: L1 distance between successive rank vectors ---
  PlanPtr prev = Plan::Unbox(Plan::LoopVar(true));
  PlanPtr curr = Plan::Rename(
      Plan::Unbox(Plan::Project(Plan::LoopVar(false), {"node", "rank"})),
      {{"rank", "__pr_r2"}, {"node", "__pr_n2"}});
  PlanPtr paired =
      Plan::Join(prev, curr, JoinType::kInner, {"node"}, {"__pr_n2"});
  PlanPtr measure = Plan::Aggregate(
      Plan::Extend(paired,
                   {{"__pr_d", Func("abs", {Sub(Col("rank"), Col("__pr_r2"))})}}),
      {}, {AggSpec{AggFunc::kSum, Col("__pr_d"), "__pr_delta"}});

  IterateOp it;
  it.body = body;
  it.measure = measure;
  it.epsilon = op.epsilon;
  it.max_iters = op.max_iters;
  return Plan::Iterate(init, it);
}

Result<PlanPtr> ExpandIntentOps(const PlanPtr& plan, const Catalog& catalog) {
  InferContext ctx;
  ctx.catalog = &catalog;

  // Recursive expansion with the inference context threaded through so
  // LoopVar leaves inside Iterate bodies resolve.
  std::function<Result<PlanPtr>(const PlanPtr&)> walk =
      [&](const PlanPtr& node) -> Result<PlanPtr> {
    std::vector<PlanPtr> new_children;
    new_children.reserve(node->children().size());
    for (const PlanPtr& c : node->children()) {
      NEXUS_ASSIGN_OR_RETURN(PlanPtr nc, walk(c));
      new_children.push_back(std::move(nc));
    }
    switch (node->kind()) {
      case OpKind::kMatMul: {
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr ls, InferSchema(*new_children[0], &ctx));
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr rs, InferSchema(*new_children[1], &ctx));
        return ExpandMatMul(new_children[0], new_children[1],
                            node->As<MatMulOp>(), *ls, *rs);
      }
      case OpKind::kPageRank: {
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr es, InferSchema(*new_children[0], &ctx));
        return ExpandPageRank(new_children[0], node->As<PageRankOp>(), *es);
      }
      case OpKind::kIterate: {
        IterateOp op = node->As<IterateOp>();
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr init_schema,
                               InferSchema(*new_children[0], &ctx));
        ctx.loop_stack.push_back(init_schema);
        auto body = walk(op.body);
        Result<PlanPtr> measure = PlanPtr(nullptr);
        if (body.ok() && op.measure != nullptr) measure = walk(op.measure);
        ctx.loop_stack.pop_back();
        NEXUS_ASSIGN_OR_RETURN(op.body, body);
        if (op.measure != nullptr) {
          NEXUS_ASSIGN_OR_RETURN(op.measure, measure);
        }
        return Plan::Iterate(new_children[0], std::move(op));
      }
      default:
        return node->WithChildren(std::move(new_children));
    }
  };
  return walk(plan);
}

}  // namespace nexus
