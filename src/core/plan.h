// The Big Data Algebra: the paper's "algebraic intermediate form" that acts
// as the nexus between client languages and back-end providers.
//
// A Plan is an immutable expression tree over collections in the fused
// tabular/array model. It spans:
//   - standard relational operators (select, project, join, aggregate, …),
//   - dimension-aware array operators (slice, regrid, transpose, window, …),
//   - *intent-carrying* operators (MatMul, PageRank) whose relational
//     expansions exist (core/expansion.h) but whose identity is preserved so
//     a provider with a native implementation can claim them
//     (desideratum 3, Intent Preservation),
//   - Iterate, the control-iteration operator ("repeated execution of an
//     expression until some convergence criterion is met"),
//   - Exchange, the physical operator the federated planner inserts at
//     server boundaries (desideratum 4, Server Interoperation).
#ifndef NEXUS_CORE_PLAN_H_
#define NEXUS_CORE_PLAN_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/dataset.h"

namespace nexus {

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/// Every operator of the algebra.
enum class OpKind : int {
  // Leaves.
  kScan,     ///< named collection from the catalog
  kValues,   ///< inline literal collection
  kLoopVar,  ///< the loop variable inside an Iterate body/measure
  // Relational core.
  kSelect,
  kProject,
  kExtend,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kUnion,
  kRename,
  // Model fusion.
  kRebox,  ///< tag columns as dimensions (table → array view)
  kUnbox,  ///< clear dimension tags (array → table view)
  // Dimension-aware array operators.
  kSlice,
  kShift,
  kRegrid,
  kTranspose,
  kWindow,
  kElemWise,
  // Intent-carrying analytics operators.
  kMatMul,
  kPageRank,
  // Control iteration.
  kIterate,
  // Physical (planner-inserted).
  kExchange,
};

const char* OpKindName(OpKind kind);
Result<OpKind> OpKindFromName(const std::string& name);

/// All operator kinds, for coverage enumeration.
std::vector<OpKind> AllOpKinds();

enum class JoinType : int { kInner, kLeft, kSemi, kAnti };
const char* JoinTypeName(JoinType t);
Result<JoinType> JoinTypeFromName(const std::string& name);

enum class AggFunc : int { kSum, kCount, kMin, kMax, kAvg };
const char* AggFuncName(AggFunc f);
Result<AggFunc> AggFuncFromName(const std::string& name);

/// How an Exchange moves its payload (desideratum 4): directly between the
/// producing and consuming servers, or relayed through the client tier.
enum class TransferMode : int { kDirect, kRelay };
const char* TransferModeName(TransferMode m);

// ---------------------------------------------------------------------------
// Per-operator payloads.
// ---------------------------------------------------------------------------

struct ScanOp {
  std::string table;
};
struct ValuesOp {
  Dataset data;
};
struct LoopVarOp {
  bool previous = false;  ///< refer to the pre-iteration value (measure only)
};
struct SelectOp {
  ExprPtr predicate;
};
struct ProjectOp {
  std::vector<std::string> columns;
};
struct ExtendOp {
  std::vector<std::pair<std::string, ExprPtr>> defs;
};
struct JoinOp {
  JoinType type = JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  ExprPtr residual;  ///< optional extra predicate over the joined row; may be null
};
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr input;  ///< null means count(*) (only valid for kCount)
  std::string output_name;
};
struct AggregateOp {
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
};
struct SortKey {
  std::string column;
  bool ascending = true;
};
struct SortOp {
  std::vector<SortKey> keys;
};
struct LimitOp {
  int64_t limit = 0;
  int64_t offset = 0;
};
struct DistinctOp {};
struct UnionOp {};
struct RenameOp {
  std::vector<std::pair<std::string, std::string>> mapping;  ///< old → new
};
struct ReboxOp {
  std::vector<std::string> dims;  ///< exactly these become the dimensions
  int64_t chunk_size = 64;        ///< chunking hint for array providers
};
struct UnboxOp {};
/// Half-open coordinate range on one dimension.
struct DimRange {
  std::string dim;
  int64_t lo = 0;
  int64_t hi = 0;
};
struct SliceOp {
  std::vector<DimRange> ranges;
};
struct ShiftOp {
  std::vector<std::pair<std::string, int64_t>> offsets;  ///< dim → delta
};
struct RegridOp {
  std::vector<std::pair<std::string, int64_t>> factors;  ///< dim → block size
  AggFunc func = AggFunc::kAvg;  ///< applied to every numeric attribute
};
struct TransposeOp {
  std::vector<std::string> dim_order;
};
struct WindowOp {
  std::vector<std::pair<std::string, int64_t>> radii;  ///< dim → radius
  AggFunc func = AggFunc::kAvg;
};
struct ElemWiseOpSpec {
  BinaryOp op = BinaryOp::kAdd;  ///< one of + - * /
};
struct MatMulOp {
  std::string result_attr = "value";
};
struct PageRankOp {
  std::string src_col = "src";
  std::string dst_col = "dst";
  double damping = 0.85;
  int64_t max_iters = 50;
  double epsilon = 1e-9;  ///< L1 convergence threshold
};
struct IterateOp {
  PlanPtr body;     ///< references LoopVar(current); same schema as init
  PlanPtr measure;  ///< optional: 1×1 float64 over LoopVar(prev/current)
  double epsilon = 0.0;
  int64_t max_iters = 1;
};
struct ExchangeOp {
  std::string target_server;
  TransferMode mode = TransferMode::kDirect;
};

using OpPayload =
    std::variant<ScanOp, ValuesOp, LoopVarOp, SelectOp, ProjectOp, ExtendOp,
                 JoinOp, AggregateOp, SortOp, LimitOp, DistinctOp, UnionOp,
                 RenameOp, ReboxOp, UnboxOp, SliceOp, ShiftOp, RegridOp,
                 TransposeOp, WindowOp, ElemWiseOpSpec, MatMulOp, PageRankOp,
                 IterateOp, ExchangeOp>;

// ---------------------------------------------------------------------------
// Plan node.
// ---------------------------------------------------------------------------

/// Immutable algebra node: a kind, typed payload, and child plans.
class Plan {
 public:
  // Factories — the only way to build nodes. Structural invariants beyond
  // child counts are enforced by schema inference (core/schema_inference.h).
  static PlanPtr Scan(std::string table);
  static PlanPtr Values(Dataset data);
  static PlanPtr LoopVar(bool previous = false);
  static PlanPtr Select(PlanPtr input, ExprPtr predicate);
  static PlanPtr Project(PlanPtr input, std::vector<std::string> columns);
  static PlanPtr Extend(PlanPtr input,
                        std::vector<std::pair<std::string, ExprPtr>> defs);
  static PlanPtr Join(PlanPtr left, PlanPtr right, JoinType type,
                      std::vector<std::string> left_keys,
                      std::vector<std::string> right_keys,
                      ExprPtr residual = nullptr);
  static PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                           std::vector<AggSpec> aggs);
  static PlanPtr Sort(PlanPtr input, std::vector<SortKey> keys);
  static PlanPtr Limit(PlanPtr input, int64_t limit, int64_t offset = 0);
  static PlanPtr Distinct(PlanPtr input);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Rename(PlanPtr input,
                        std::vector<std::pair<std::string, std::string>> mapping);
  static PlanPtr Rebox(PlanPtr input, std::vector<std::string> dims,
                       int64_t chunk_size = 64);
  static PlanPtr Unbox(PlanPtr input);
  static PlanPtr Slice(PlanPtr input, std::vector<DimRange> ranges);
  static PlanPtr Shift(PlanPtr input,
                       std::vector<std::pair<std::string, int64_t>> offsets);
  static PlanPtr Regrid(PlanPtr input,
                        std::vector<std::pair<std::string, int64_t>> factors,
                        AggFunc func);
  static PlanPtr Transpose(PlanPtr input, std::vector<std::string> dim_order);
  static PlanPtr Window(PlanPtr input,
                        std::vector<std::pair<std::string, int64_t>> radii,
                        AggFunc func);
  static PlanPtr ElemWise(PlanPtr left, PlanPtr right, BinaryOp op);
  static PlanPtr MatMul(PlanPtr left, PlanPtr right,
                        std::string result_attr = "value");
  static PlanPtr PageRank(PlanPtr edges, PageRankOp spec);
  static PlanPtr Iterate(PlanPtr init, IterateOp spec);
  static PlanPtr Exchange(PlanPtr input, std::string target_server,
                          TransferMode mode);

  OpKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  int num_children() const { return static_cast<int>(children_.size()); }
  const PlanPtr& child(int i) const { return children_[static_cast<size_t>(i)]; }

  /// Typed payload access; precondition: matching kind.
  template <typename T>
  const T& As() const {
    return std::get<T>(payload_);
  }
  const OpPayload& payload() const { return payload_; }

  /// Rebuilds this node with different children (payload preserved).
  PlanPtr WithChildren(std::vector<PlanPtr> children) const;

  /// Multi-line indented tree rendering.
  std::string ToString() const;
  /// Single-line rendering of just this node ("join[inner, a=b]").
  std::string NodeLabel() const;

  /// Structural equality / hash over the whole tree (including nested
  /// Iterate bodies). Used by the optimizer's memo and by tests.
  bool Equals(const Plan& other) const;
  uint64_t Hash() const;

  /// Total node count including nested Iterate body/measure plans.
  int64_t TreeSize() const;

 protected:
  Plan(OpKind kind, OpPayload payload, std::vector<PlanPtr> children)
      : kind_(kind), payload_(std::move(payload)), children_(std::move(children)) {}

 private:
  OpKind kind_;
  OpPayload payload_;
  std::vector<PlanPtr> children_;
};

}  // namespace nexus

#endif  // NEXUS_CORE_PLAN_H_
