#include "core/plan.h"

#include "common/hash.h"
#include "common/str_util.h"

namespace nexus {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "scan";
    case OpKind::kValues:
      return "values";
    case OpKind::kLoopVar:
      return "loopvar";
    case OpKind::kSelect:
      return "select";
    case OpKind::kProject:
      return "project";
    case OpKind::kExtend:
      return "extend";
    case OpKind::kJoin:
      return "join";
    case OpKind::kAggregate:
      return "aggregate";
    case OpKind::kSort:
      return "sort";
    case OpKind::kLimit:
      return "limit";
    case OpKind::kDistinct:
      return "distinct";
    case OpKind::kUnion:
      return "union";
    case OpKind::kRename:
      return "rename";
    case OpKind::kRebox:
      return "rebox";
    case OpKind::kUnbox:
      return "unbox";
    case OpKind::kSlice:
      return "slice";
    case OpKind::kShift:
      return "shift";
    case OpKind::kRegrid:
      return "regrid";
    case OpKind::kTranspose:
      return "transpose";
    case OpKind::kWindow:
      return "window";
    case OpKind::kElemWise:
      return "elemwise";
    case OpKind::kMatMul:
      return "matmul";
    case OpKind::kPageRank:
      return "pagerank";
    case OpKind::kIterate:
      return "iterate";
    case OpKind::kExchange:
      return "exchange";
  }
  return "?";
}

std::vector<OpKind> AllOpKinds() {
  return {OpKind::kScan,     OpKind::kValues,   OpKind::kLoopVar,
          OpKind::kSelect,   OpKind::kProject,  OpKind::kExtend,
          OpKind::kJoin,     OpKind::kAggregate, OpKind::kSort,
          OpKind::kLimit,    OpKind::kDistinct, OpKind::kUnion,
          OpKind::kRename,   OpKind::kRebox,    OpKind::kUnbox,
          OpKind::kSlice,    OpKind::kShift,    OpKind::kRegrid,
          OpKind::kTranspose, OpKind::kWindow,  OpKind::kElemWise,
          OpKind::kMatMul,   OpKind::kPageRank, OpKind::kIterate,
          OpKind::kExchange};
}

Result<OpKind> OpKindFromName(const std::string& name) {
  for (OpKind k : AllOpKinds()) {
    if (name == OpKindName(k)) return k;
  }
  return Status::SerializationError(StrCat("unknown operator: ", name));
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeft:
      return "left";
    case JoinType::kSemi:
      return "semi";
    case JoinType::kAnti:
      return "anti";
  }
  return "?";
}

Result<JoinType> JoinTypeFromName(const std::string& name) {
  if (name == "inner") return JoinType::kInner;
  if (name == "left") return JoinType::kLeft;
  if (name == "semi") return JoinType::kSemi;
  if (name == "anti") return JoinType::kAnti;
  return Status::SerializationError(StrCat("unknown join type: ", name));
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

Result<AggFunc> AggFuncFromName(const std::string& name) {
  if (name == "sum") return AggFunc::kSum;
  if (name == "count") return AggFunc::kCount;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg") return AggFunc::kAvg;
  return Status::SerializationError(StrCat("unknown aggregate: ", name));
}

const char* TransferModeName(TransferMode m) {
  return m == TransferMode::kDirect ? "direct" : "relay";
}

namespace {
PlanPtr MakePlan(OpKind kind, OpPayload payload, std::vector<PlanPtr> children) {
  struct Access : Plan {
    Access(OpKind k, OpPayload p, std::vector<PlanPtr> c)
        : Plan(k, std::move(p), std::move(c)) {}
  };
  // Plan's constructor is private; expose it via a local subclass so the
  // factories below stay the single construction path.
  return std::make_shared<const Access>(kind, std::move(payload),
                                        std::move(children));
}
}  // namespace

PlanPtr Plan::Scan(std::string table) {
  return MakePlan(OpKind::kScan, ScanOp{std::move(table)}, {});
}
PlanPtr Plan::Values(Dataset data) {
  return MakePlan(OpKind::kValues, ValuesOp{std::move(data)}, {});
}
PlanPtr Plan::LoopVar(bool previous) {
  return MakePlan(OpKind::kLoopVar, LoopVarOp{previous}, {});
}
PlanPtr Plan::Select(PlanPtr input, ExprPtr predicate) {
  return MakePlan(OpKind::kSelect, SelectOp{std::move(predicate)},
                  {std::move(input)});
}
PlanPtr Plan::Project(PlanPtr input, std::vector<std::string> columns) {
  return MakePlan(OpKind::kProject, ProjectOp{std::move(columns)},
                  {std::move(input)});
}
PlanPtr Plan::Extend(PlanPtr input,
                     std::vector<std::pair<std::string, ExprPtr>> defs) {
  return MakePlan(OpKind::kExtend, ExtendOp{std::move(defs)}, {std::move(input)});
}
PlanPtr Plan::Join(PlanPtr left, PlanPtr right, JoinType type,
                   std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys, ExprPtr residual) {
  return MakePlan(OpKind::kJoin,
                  JoinOp{type, std::move(left_keys), std::move(right_keys),
                         std::move(residual)},
                  {std::move(left), std::move(right)});
}
PlanPtr Plan::Aggregate(PlanPtr input, std::vector<std::string> group_by,
                        std::vector<AggSpec> aggs) {
  return MakePlan(OpKind::kAggregate,
                  AggregateOp{std::move(group_by), std::move(aggs)},
                  {std::move(input)});
}
PlanPtr Plan::Sort(PlanPtr input, std::vector<SortKey> keys) {
  return MakePlan(OpKind::kSort, SortOp{std::move(keys)}, {std::move(input)});
}
PlanPtr Plan::Limit(PlanPtr input, int64_t limit, int64_t offset) {
  return MakePlan(OpKind::kLimit, LimitOp{limit, offset}, {std::move(input)});
}
PlanPtr Plan::Distinct(PlanPtr input) {
  return MakePlan(OpKind::kDistinct, DistinctOp{}, {std::move(input)});
}
PlanPtr Plan::Union(PlanPtr left, PlanPtr right) {
  return MakePlan(OpKind::kUnion, UnionOp{}, {std::move(left), std::move(right)});
}
PlanPtr Plan::Rename(PlanPtr input,
                     std::vector<std::pair<std::string, std::string>> mapping) {
  return MakePlan(OpKind::kRename, RenameOp{std::move(mapping)},
                  {std::move(input)});
}
PlanPtr Plan::Rebox(PlanPtr input, std::vector<std::string> dims,
                    int64_t chunk_size) {
  return MakePlan(OpKind::kRebox, ReboxOp{std::move(dims), chunk_size},
                  {std::move(input)});
}
PlanPtr Plan::Unbox(PlanPtr input) {
  return MakePlan(OpKind::kUnbox, UnboxOp{}, {std::move(input)});
}
PlanPtr Plan::Slice(PlanPtr input, std::vector<DimRange> ranges) {
  return MakePlan(OpKind::kSlice, SliceOp{std::move(ranges)}, {std::move(input)});
}
PlanPtr Plan::Shift(PlanPtr input,
                    std::vector<std::pair<std::string, int64_t>> offsets) {
  return MakePlan(OpKind::kShift, ShiftOp{std::move(offsets)}, {std::move(input)});
}
PlanPtr Plan::Regrid(PlanPtr input,
                     std::vector<std::pair<std::string, int64_t>> factors,
                     AggFunc func) {
  return MakePlan(OpKind::kRegrid, RegridOp{std::move(factors), func},
                  {std::move(input)});
}
PlanPtr Plan::Transpose(PlanPtr input, std::vector<std::string> dim_order) {
  return MakePlan(OpKind::kTranspose, TransposeOp{std::move(dim_order)},
                  {std::move(input)});
}
PlanPtr Plan::Window(PlanPtr input,
                     std::vector<std::pair<std::string, int64_t>> radii,
                     AggFunc func) {
  return MakePlan(OpKind::kWindow, WindowOp{std::move(radii), func},
                  {std::move(input)});
}
PlanPtr Plan::ElemWise(PlanPtr left, PlanPtr right, BinaryOp op) {
  return MakePlan(OpKind::kElemWise, ElemWiseOpSpec{op},
                  {std::move(left), std::move(right)});
}
PlanPtr Plan::MatMul(PlanPtr left, PlanPtr right, std::string result_attr) {
  return MakePlan(OpKind::kMatMul, MatMulOp{std::move(result_attr)},
                  {std::move(left), std::move(right)});
}
PlanPtr Plan::PageRank(PlanPtr edges, PageRankOp spec) {
  return MakePlan(OpKind::kPageRank, std::move(spec), {std::move(edges)});
}
PlanPtr Plan::Iterate(PlanPtr init, IterateOp spec) {
  return MakePlan(OpKind::kIterate, std::move(spec), {std::move(init)});
}
PlanPtr Plan::Exchange(PlanPtr input, std::string target_server,
                       TransferMode mode) {
  return MakePlan(OpKind::kExchange, ExchangeOp{std::move(target_server), mode},
                  {std::move(input)});
}

PlanPtr Plan::WithChildren(std::vector<PlanPtr> children) const {
  return MakePlan(kind_, payload_, std::move(children));
}

std::string Plan::NodeLabel() const {
  switch (kind_) {
    case OpKind::kScan:
      return StrCat("scan[", As<ScanOp>().table, "]");
    case OpKind::kValues:
      return StrCat("values[", As<ValuesOp>().data.num_rows(), " rows]");
    case OpKind::kLoopVar:
      return As<LoopVarOp>().previous ? "loopvar[prev]" : "loopvar";
    case OpKind::kSelect:
      return StrCat("select[", As<SelectOp>().predicate->ToString(), "]");
    case OpKind::kProject: {
      return StrCat("project[", nexus::Join(As<ProjectOp>().columns, ", "), "]");
    }
    case OpKind::kExtend: {
      std::vector<std::string> parts;
      for (const auto& [name, expr] : As<ExtendOp>().defs) {
        parts.push_back(StrCat(name, " := ", expr->ToString()));
      }
      return StrCat("extend[", nexus::Join(parts, ", "), "]");
    }
    case OpKind::kJoin: {
      const auto& op = As<JoinOp>();
      std::vector<std::string> keys;
      for (size_t i = 0; i < op.left_keys.size(); ++i) {
        keys.push_back(StrCat(op.left_keys[i], "=", op.right_keys[i]));
      }
      std::string label =
          StrCat("join[", JoinTypeName(op.type), ", ", nexus::Join(keys, ", "));
      if (op.residual != nullptr) {
        label += StrCat(", if ", op.residual->ToString());
      }
      return label + "]";
    }
    case OpKind::kAggregate: {
      const auto& op = As<AggregateOp>();
      std::vector<std::string> parts;
      for (const AggSpec& a : op.aggs) {
        parts.push_back(StrCat(a.output_name, " := ", AggFuncName(a.func), "(",
                               a.input == nullptr ? "*" : a.input->ToString(),
                               ")"));
      }
      return StrCat("aggregate[by ", nexus::Join(op.group_by, ", "), "; ",
                    nexus::Join(parts, ", "), "]");
    }
    case OpKind::kSort: {
      std::vector<std::string> parts;
      for (const SortKey& k : As<SortOp>().keys) {
        parts.push_back(StrCat(k.column, k.ascending ? " asc" : " desc"));
      }
      return StrCat("sort[", nexus::Join(parts, ", "), "]");
    }
    case OpKind::kLimit: {
      const auto& op = As<LimitOp>();
      return op.offset == 0
                 ? StrCat("limit[", op.limit, "]")
                 : StrCat("limit[", op.limit, " offset ", op.offset, "]");
    }
    case OpKind::kDistinct:
      return "distinct";
    case OpKind::kUnion:
      return "union";
    case OpKind::kRename: {
      std::vector<std::string> parts;
      for (const auto& [from, to] : As<RenameOp>().mapping) {
        parts.push_back(StrCat(from, " -> ", to));
      }
      return StrCat("rename[", nexus::Join(parts, ", "), "]");
    }
    case OpKind::kRebox:
      return StrCat("rebox[", nexus::Join(As<ReboxOp>().dims, ", "), " chunk ",
                    As<ReboxOp>().chunk_size, "]");
    case OpKind::kUnbox:
      return "unbox";
    case OpKind::kSlice: {
      std::vector<std::string> parts;
      for (const DimRange& r : As<SliceOp>().ranges) {
        parts.push_back(StrCat(r.dim, " in [", r.lo, ", ", r.hi, ")"));
      }
      return StrCat("slice[", nexus::Join(parts, ", "), "]");
    }
    case OpKind::kShift: {
      std::vector<std::string> parts;
      for (const auto& [dim, delta] : As<ShiftOp>().offsets) {
        parts.push_back(StrCat(dim, delta >= 0 ? "+" : "", delta));
      }
      return StrCat("shift[", nexus::Join(parts, ", "), "]");
    }
    case OpKind::kRegrid: {
      const auto& op = As<RegridOp>();
      std::vector<std::string> parts;
      for (const auto& [dim, f] : op.factors) parts.push_back(StrCat(dim, "/", f));
      return StrCat("regrid[", nexus::Join(parts, ", "), " ", AggFuncName(op.func), "]");
    }
    case OpKind::kTranspose:
      return StrCat("transpose[", nexus::Join(As<TransposeOp>().dim_order, ", "), "]");
    case OpKind::kWindow: {
      const auto& op = As<WindowOp>();
      std::vector<std::string> parts;
      for (const auto& [dim, r] : op.radii) parts.push_back(StrCat(dim, "±", r));
      return StrCat("window[", nexus::Join(parts, ", "), " ", AggFuncName(op.func), "]");
    }
    case OpKind::kElemWise:
      return StrCat("elemwise[", BinaryOpName(As<ElemWiseOpSpec>().op), "]");
    case OpKind::kMatMul:
      return StrCat("matmul[-> ", As<MatMulOp>().result_attr, "]");
    case OpKind::kPageRank: {
      const auto& op = As<PageRankOp>();
      return StrCat("pagerank[", op.src_col, " -> ", op.dst_col, ", d=",
                    FormatDouble(op.damping), ", iters<=", op.max_iters, "]");
    }
    case OpKind::kIterate: {
      const auto& op = As<IterateOp>();
      return StrCat("iterate[<=", op.max_iters, " iters, eps=",
                    FormatDouble(op.epsilon), "]");
    }
    case OpKind::kExchange: {
      const auto& op = As<ExchangeOp>();
      return StrCat("exchange[to ", op.target_server, ", ",
                    TransferModeName(op.mode), "]");
    }
  }
  return "?";
}

namespace {
void PrintTree(const Plan& plan, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(plan.NodeLabel());
  out->push_back('\n');
  for (const PlanPtr& c : plan.children()) PrintTree(*c, indent + 1, out);
  if (plan.kind() == OpKind::kIterate) {
    const auto& op = plan.As<IterateOp>();
    out->append(static_cast<size_t>(indent + 1) * 2, ' ');
    out->append("body:\n");
    PrintTree(*op.body, indent + 2, out);
    if (op.measure != nullptr) {
      out->append(static_cast<size_t>(indent + 1) * 2, ' ');
      out->append("measure:\n");
      PrintTree(*op.measure, indent + 2, out);
    }
  }
}
}  // namespace

std::string Plan::ToString() const {
  std::string out;
  PrintTree(*this, 0, &out);
  return out;
}

bool Plan::Equals(const Plan& other) const {
  if (kind_ != other.kind_ || children_.size() != other.children_.size()) {
    return false;
  }
  auto expr_eq = [](const ExprPtr& a, const ExprPtr& b) {
    if ((a == nullptr) != (b == nullptr)) return false;
    return a == nullptr || a->Equals(*b);
  };
  switch (kind_) {
    case OpKind::kScan:
      if (As<ScanOp>().table != other.As<ScanOp>().table) return false;
      break;
    case OpKind::kValues:
      if (!As<ValuesOp>().data.LogicallyEquals(other.As<ValuesOp>().data)) {
        return false;
      }
      break;
    case OpKind::kLoopVar:
      if (As<LoopVarOp>().previous != other.As<LoopVarOp>().previous) return false;
      break;
    case OpKind::kSelect:
      if (!expr_eq(As<SelectOp>().predicate, other.As<SelectOp>().predicate)) {
        return false;
      }
      break;
    case OpKind::kProject:
      if (As<ProjectOp>().columns != other.As<ProjectOp>().columns) return false;
      break;
    case OpKind::kExtend: {
      const auto& a = As<ExtendOp>().defs;
      const auto& b = other.As<ExtendOp>().defs;
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first || !expr_eq(a[i].second, b[i].second)) {
          return false;
        }
      }
      break;
    }
    case OpKind::kJoin: {
      const auto& a = As<JoinOp>();
      const auto& b = other.As<JoinOp>();
      if (a.type != b.type || a.left_keys != b.left_keys ||
          a.right_keys != b.right_keys || !expr_eq(a.residual, b.residual)) {
        return false;
      }
      break;
    }
    case OpKind::kAggregate: {
      const auto& a = As<AggregateOp>();
      const auto& b = other.As<AggregateOp>();
      if (a.group_by != b.group_by || a.aggs.size() != b.aggs.size()) return false;
      for (size_t i = 0; i < a.aggs.size(); ++i) {
        if (a.aggs[i].func != b.aggs[i].func ||
            a.aggs[i].output_name != b.aggs[i].output_name ||
            !expr_eq(a.aggs[i].input, b.aggs[i].input)) {
          return false;
        }
      }
      break;
    }
    case OpKind::kSort: {
      const auto& a = As<SortOp>().keys;
      const auto& b = other.As<SortOp>().keys;
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].column != b[i].column || a[i].ascending != b[i].ascending) {
          return false;
        }
      }
      break;
    }
    case OpKind::kLimit:
      if (As<LimitOp>().limit != other.As<LimitOp>().limit ||
          As<LimitOp>().offset != other.As<LimitOp>().offset) {
        return false;
      }
      break;
    case OpKind::kDistinct:
    case OpKind::kUnion:
    case OpKind::kUnbox:
      break;
    case OpKind::kRename:
      if (As<RenameOp>().mapping != other.As<RenameOp>().mapping) return false;
      break;
    case OpKind::kRebox:
      if (As<ReboxOp>().dims != other.As<ReboxOp>().dims ||
          As<ReboxOp>().chunk_size != other.As<ReboxOp>().chunk_size) {
        return false;
      }
      break;
    case OpKind::kSlice: {
      const auto& a = As<SliceOp>().ranges;
      const auto& b = other.As<SliceOp>().ranges;
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].dim != b[i].dim || a[i].lo != b[i].lo || a[i].hi != b[i].hi) {
          return false;
        }
      }
      break;
    }
    case OpKind::kShift:
      if (As<ShiftOp>().offsets != other.As<ShiftOp>().offsets) return false;
      break;
    case OpKind::kRegrid:
      if (As<RegridOp>().factors != other.As<RegridOp>().factors ||
          As<RegridOp>().func != other.As<RegridOp>().func) {
        return false;
      }
      break;
    case OpKind::kTranspose:
      if (As<TransposeOp>().dim_order != other.As<TransposeOp>().dim_order) {
        return false;
      }
      break;
    case OpKind::kWindow:
      if (As<WindowOp>().radii != other.As<WindowOp>().radii ||
          As<WindowOp>().func != other.As<WindowOp>().func) {
        return false;
      }
      break;
    case OpKind::kElemWise:
      if (As<ElemWiseOpSpec>().op != other.As<ElemWiseOpSpec>().op) return false;
      break;
    case OpKind::kMatMul:
      if (As<MatMulOp>().result_attr != other.As<MatMulOp>().result_attr) {
        return false;
      }
      break;
    case OpKind::kPageRank: {
      const auto& a = As<PageRankOp>();
      const auto& b = other.As<PageRankOp>();
      if (a.src_col != b.src_col || a.dst_col != b.dst_col ||
          a.damping != b.damping || a.max_iters != b.max_iters ||
          a.epsilon != b.epsilon) {
        return false;
      }
      break;
    }
    case OpKind::kIterate: {
      const auto& a = As<IterateOp>();
      const auto& b = other.As<IterateOp>();
      if (a.epsilon != b.epsilon || a.max_iters != b.max_iters) return false;
      if (!a.body->Equals(*b.body)) return false;
      if ((a.measure == nullptr) != (b.measure == nullptr)) return false;
      if (a.measure != nullptr && !a.measure->Equals(*b.measure)) return false;
      break;
    }
    case OpKind::kExchange:
      if (As<ExchangeOp>().target_server != other.As<ExchangeOp>().target_server ||
          As<ExchangeOp>().mode != other.As<ExchangeOp>().mode) {
        return false;
      }
      break;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

uint64_t Plan::Hash() const {
  // Label-based: NodeLabel captures every payload field that Equals checks,
  // except Values data (hashed by cardinality, which the label includes).
  uint64_t h = HashString(NodeLabel());
  h = HashCombine(h, HashInt64(static_cast<uint64_t>(kind_)));
  for (const PlanPtr& c : children_) h = HashCombine(h, c->Hash());
  if (kind_ == OpKind::kIterate) {
    const auto& op = As<IterateOp>();
    h = HashCombine(h, op.body->Hash());
    if (op.measure != nullptr) h = HashCombine(h, op.measure->Hash());
  }
  return h;
}

int64_t Plan::TreeSize() const {
  int64_t n = 1;
  for (const PlanPtr& c : children_) n += c->TreeSize();
  if (kind_ == OpKind::kIterate) {
    const auto& op = As<IterateOp>();
    n += op.body->TreeSize();
    if (op.measure != nullptr) n += op.measure->TreeSize();
  }
  return n;
}

}  // namespace nexus
