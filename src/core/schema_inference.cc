#include "core/schema_inference.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace nexus {

Result<DataType> AggResultType(AggFunc func, DataType in) {
  switch (func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
      if (!IsNumeric(in)) return Status::TypeError("sum expects numeric input");
      return in;
    case AggFunc::kAvg:
      if (!IsNumeric(in)) return Status::TypeError("avg expects numeric input");
      return DataType::kFloat64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (in == DataType::kBool) {
        return Status::TypeError("min/max of bool is not defined");
      }
      return in;
  }
  return Status::Internal("unhandled aggregate");
}

namespace {

Status NoDuplicates(const std::vector<Field>& fields) {
  std::set<std::string> seen;
  for (const Field& f : fields) {
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument(StrCat("duplicate output field: ", f.name));
    }
  }
  return Status::OK();
}

Result<SchemaPtr> InferJoin(const JoinOp& op, const SchemaPtr& left,
                            const SchemaPtr& right) {
  if (op.left_keys.size() != op.right_keys.size()) {
    return Status::PlanError("join key lists differ in length");
  }
  if (op.left_keys.empty() && op.residual == nullptr) {
    return Status::PlanError("join requires keys or a residual predicate");
  }
  for (size_t i = 0; i < op.left_keys.size(); ++i) {
    NEXUS_ASSIGN_OR_RETURN(int li, left->FindFieldOrError(op.left_keys[i]));
    NEXUS_ASSIGN_OR_RETURN(int ri, right->FindFieldOrError(op.right_keys[i]));
    DataType lt = left->field(li).type, rt = right->field(ri).type;
    if (lt != rt && !(IsNumeric(lt) && IsNumeric(rt))) {
      return Status::TypeError(StrCat("join key type mismatch: ",
                                      op.left_keys[i], ":", DataTypeName(lt),
                                      " vs ", op.right_keys[i], ":",
                                      DataTypeName(rt)));
    }
  }
  if (op.type == JoinType::kSemi || op.type == JoinType::kAnti) {
    // Residual needs the combined schema, which semi/anti do not expose.
    if (op.residual != nullptr) {
      return Status::PlanError("semi/anti join cannot carry a residual predicate");
    }
    return left;
  }
  std::vector<Field> fields = left->fields();
  for (const Field& f : right->fields()) {
    if (std::find(op.right_keys.begin(), op.right_keys.end(), f.name) !=
        op.right_keys.end()) {
      continue;  // right key columns are redundant with the left keys
    }
    Field attr = f;
    attr.is_dimension = false;  // only the left input's coordinate system survives
    fields.push_back(attr);
  }
  NEXUS_RETURN_NOT_OK(NoDuplicates(fields));
  if (op.residual != nullptr) {
    // The residual sees left fields plus all right fields (including keys).
    std::vector<Field> combined = left->fields();
    for (const Field& f : right->fields()) {
      if (left->FindField(f.name) >= 0 &&
          std::find(op.right_keys.begin(), op.right_keys.end(), f.name) ==
              op.right_keys.end()) {
        return Status::PlanError(
            StrCat("ambiguous field in join residual scope: ", f.name));
      }
      if (left->FindField(f.name) < 0) combined.push_back(f);
    }
    Schema combined_schema(std::move(combined));
    NEXUS_ASSIGN_OR_RETURN(DataType t,
                           InferExprType(*op.residual, combined_schema));
    if (t != DataType::kBool) {
      return Status::TypeError("join residual must be boolean");
    }
  }
  return Schema::Make(std::move(fields));
}

Result<SchemaPtr> InferMatMulInput(const SchemaPtr& s, const char* side) {
  std::vector<int> dims = s->DimensionIndices();
  std::vector<int> attrs = s->AttributeIndices();
  if (dims.size() != 2 || attrs.size() != 1) {
    return Status::PlanError(
        StrCat("matmul ", side,
               " input must have exactly 2 dimensions and 1 attribute, got ",
               s->ToString()));
  }
  if (!IsNumeric(s->field(attrs[0]).type)) {
    return Status::TypeError(StrCat("matmul ", side, " attribute must be numeric"));
  }
  return s;
}

}  // namespace

Result<SchemaPtr> InferSchema(const Plan& plan, InferContext* ctx) {
  // Infer children first (Iterate handles its nested plans itself).
  std::vector<SchemaPtr> in;
  in.reserve(plan.children().size());
  for (const PlanPtr& c : plan.children()) {
    NEXUS_ASSIGN_OR_RETURN(SchemaPtr s, InferSchema(*c, ctx));
    in.push_back(std::move(s));
  }

  switch (plan.kind()) {
    case OpKind::kScan: {
      if (ctx->catalog == nullptr) {
        return Status::PlanError("scan requires a catalog for inference");
      }
      return ctx->catalog->GetSchema(plan.As<ScanOp>().table);
    }
    case OpKind::kValues:
      return plan.As<ValuesOp>().data.schema();
    case OpKind::kLoopVar: {
      if (ctx->loop_stack.empty()) {
        return Status::PlanError("loopvar outside of an iterate body");
      }
      return ctx->loop_stack.back();
    }
    case OpKind::kSelect: {
      NEXUS_ASSIGN_OR_RETURN(DataType t,
                             InferExprType(*plan.As<SelectOp>().predicate, *in[0]));
      if (t != DataType::kBool) {
        return Status::TypeError(
            StrCat("select predicate must be boolean, got ", DataTypeName(t)));
      }
      return in[0];
    }
    case OpKind::kProject: {
      std::vector<Field> fields;
      for (const std::string& name : plan.As<ProjectOp>().columns) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(name));
        fields.push_back(in[0]->field(i));
      }
      return Schema::Make(std::move(fields));
    }
    case OpKind::kExtend: {
      std::vector<Field> fields = in[0]->fields();
      Schema working(fields);
      for (const auto& [name, expr] : plan.As<ExtendOp>().defs) {
        if (working.FindField(name) >= 0) {
          return Status::InvalidArgument(
              StrCat("extend output '", name, "' already exists"));
        }
        NEXUS_ASSIGN_OR_RETURN(DataType t, InferExprType(*expr, working));
        fields.push_back(Field::Attr(name, t));
        working = Schema(fields);
      }
      return Schema::Make(std::move(fields));
    }
    case OpKind::kJoin:
      return InferJoin(plan.As<JoinOp>(), in[0], in[1]);
    case OpKind::kAggregate: {
      const auto& op = plan.As<AggregateOp>();
      std::vector<Field> fields;
      for (const std::string& g : op.group_by) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(g));
        fields.push_back(in[0]->field(i));
      }
      for (const AggSpec& a : op.aggs) {
        if (a.output_name.empty()) {
          return Status::InvalidArgument("aggregate output needs a name");
        }
        DataType input_type = DataType::kInt64;
        if (a.input != nullptr) {
          NEXUS_ASSIGN_OR_RETURN(input_type, InferExprType(*a.input, *in[0]));
        } else if (a.func != AggFunc::kCount) {
          return Status::PlanError(
              StrCat(AggFuncName(a.func), " requires an input expression"));
        }
        NEXUS_ASSIGN_OR_RETURN(DataType out, AggResultType(a.func, input_type));
        fields.push_back(Field::Attr(a.output_name, out));
      }
      NEXUS_RETURN_NOT_OK(NoDuplicates(fields));
      if (op.aggs.empty()) {
        return Status::PlanError("aggregate requires at least one aggregate");
      }
      return Schema::Make(std::move(fields));
    }
    case OpKind::kSort: {
      const auto& keys = plan.As<SortOp>().keys;
      if (keys.empty()) return Status::PlanError("sort requires keys");
      for (const SortKey& k : keys) {
        NEXUS_RETURN_NOT_OK(in[0]->FindFieldOrError(k.column).status());
      }
      return in[0];
    }
    case OpKind::kLimit: {
      const auto& op = plan.As<LimitOp>();
      if (op.limit < 0 || op.offset < 0) {
        return Status::InvalidArgument("limit/offset must be non-negative");
      }
      return in[0];
    }
    case OpKind::kDistinct:
      return in[0];
    case OpKind::kUnion: {
      if (!in[0]->Equals(*in[1])) {
        return Status::TypeError(StrCat("union schema mismatch: ",
                                        in[0]->ToString(), " vs ",
                                        in[1]->ToString()));
      }
      return in[0];
    }
    case OpKind::kRename: {
      std::vector<Field> fields = in[0]->fields();
      for (const auto& [from, to] : plan.As<RenameOp>().mapping) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(from));
        fields[static_cast<size_t>(i)].name = to;
      }
      NEXUS_RETURN_NOT_OK(NoDuplicates(fields));
      return Schema::Make(std::move(fields));
    }
    case OpKind::kRebox: {
      const auto& op = plan.As<ReboxOp>();
      if (op.dims.empty()) {
        return Status::PlanError("rebox requires at least one dimension");
      }
      if (op.chunk_size <= 0) {
        return Status::InvalidArgument("rebox chunk size must be positive");
      }
      std::vector<Field> fields = in[0]->fields();
      for (Field& f : fields) f.is_dimension = false;
      for (const std::string& d : op.dims) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(d));
        if (fields[static_cast<size_t>(i)].type != DataType::kInt64) {
          return Status::TypeError(StrCat("rebox dimension ", d, " must be int64"));
        }
        fields[static_cast<size_t>(i)].is_dimension = true;
      }
      return Schema::Make(std::move(fields));
    }
    case OpKind::kUnbox:
      return in[0]->WithoutDimensions();
    case OpKind::kSlice: {
      for (const DimRange& r : plan.As<SliceOp>().ranges) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(r.dim));
        if (!in[0]->field(i).is_dimension) {
          return Status::PlanError(StrCat("slice target ", r.dim,
                                          " is not a dimension"));
        }
        if (r.lo >= r.hi) {
          return Status::InvalidArgument(
              StrCat("empty slice range on ", r.dim, ": [", r.lo, ", ", r.hi, ")"));
        }
      }
      return in[0];
    }
    case OpKind::kShift: {
      for (const auto& [dim, delta] : plan.As<ShiftOp>().offsets) {
        (void)delta;
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(dim));
        if (!in[0]->field(i).is_dimension) {
          return Status::PlanError(StrCat("shift target ", dim,
                                          " is not a dimension"));
        }
      }
      return in[0];
    }
    case OpKind::kRegrid: {
      const auto& op = plan.As<RegridOp>();
      if (in[0]->DimensionIndices().empty()) {
        return Status::PlanError("regrid requires a dimensioned input");
      }
      for (const auto& [dim, factor] : op.factors) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(dim));
        if (!in[0]->field(i).is_dimension) {
          return Status::PlanError(StrCat("regrid target ", dim,
                                          " is not a dimension"));
        }
        if (factor <= 0) {
          return Status::InvalidArgument("regrid factor must be positive");
        }
      }
      std::vector<Field> fields;
      for (int i : in[0]->DimensionIndices()) fields.push_back(in[0]->field(i));
      for (int i : in[0]->AttributeIndices()) {
        const Field& f = in[0]->field(i);
        if (!IsNumeric(f.type)) continue;  // non-numeric attributes are dropped
        NEXUS_ASSIGN_OR_RETURN(DataType out, AggResultType(op.func, f.type));
        fields.push_back(Field::Attr(f.name, out));
      }
      if (fields.size() == in[0]->DimensionIndices().size()) {
        return Status::PlanError("regrid input has no numeric attributes");
      }
      return Schema::Make(std::move(fields));
    }
    case OpKind::kTranspose: {
      const auto& order = plan.As<TransposeOp>().dim_order;
      std::vector<int> dim_idx = in[0]->DimensionIndices();
      if (order.size() != dim_idx.size()) {
        return Status::PlanError("transpose order must list every dimension");
      }
      std::vector<Field> fields;
      std::set<std::string> seen;
      for (const std::string& d : order) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(d));
        if (!in[0]->field(i).is_dimension) {
          return Status::PlanError(StrCat("transpose target ", d,
                                          " is not a dimension"));
        }
        if (!seen.insert(d).second) {
          return Status::InvalidArgument(StrCat("duplicate dimension ", d));
        }
        fields.push_back(in[0]->field(i));
      }
      for (int i : in[0]->AttributeIndices()) fields.push_back(in[0]->field(i));
      return Schema::Make(std::move(fields));
    }
    case OpKind::kWindow: {
      const auto& op = plan.As<WindowOp>();
      if (in[0]->DimensionIndices().empty()) {
        return Status::PlanError("window requires a dimensioned input");
      }
      for (const auto& [dim, radius] : op.radii) {
        NEXUS_ASSIGN_OR_RETURN(int i, in[0]->FindFieldOrError(dim));
        if (!in[0]->field(i).is_dimension) {
          return Status::PlanError(StrCat("window target ", dim,
                                          " is not a dimension"));
        }
        if (radius < 0) return Status::InvalidArgument("window radius must be >= 0");
      }
      std::vector<Field> fields;
      for (int i : in[0]->DimensionIndices()) fields.push_back(in[0]->field(i));
      bool any = false;
      for (int i : in[0]->AttributeIndices()) {
        const Field& f = in[0]->field(i);
        if (!IsNumeric(f.type)) continue;
        NEXUS_ASSIGN_OR_RETURN(DataType out, AggResultType(op.func, f.type));
        fields.push_back(Field::Attr(f.name, out));
        any = true;
      }
      if (!any) return Status::PlanError("window input has no numeric attributes");
      return Schema::Make(std::move(fields));
    }
    case OpKind::kElemWise: {
      BinaryOp op = plan.As<ElemWiseOpSpec>().op;
      if (!IsArithmetic(op) || op == BinaryOp::kMod) {
        return Status::PlanError("elemwise supports + - * / only");
      }
      auto dims_of = [](const SchemaPtr& s) {
        std::vector<std::string> names;
        for (int i : s->DimensionIndices()) names.push_back(s->field(i).name);
        return names;
      };
      if (dims_of(in[0]) != dims_of(in[1]) || dims_of(in[0]).empty()) {
        return Status::PlanError(
            "elemwise inputs must share an identical, non-empty dimension list");
      }
      std::vector<int> la = in[0]->AttributeIndices();
      std::vector<int> ra = in[1]->AttributeIndices();
      if (la.size() != 1 || ra.size() != 1) {
        return Status::PlanError("elemwise inputs must each have one attribute");
      }
      DataType lt = in[0]->field(la[0]).type, rt = in[1]->field(ra[0]).type;
      NEXUS_ASSIGN_OR_RETURN(DataType out, CommonNumericType(lt, rt));
      if (op == BinaryOp::kDiv) out = DataType::kFloat64;
      std::vector<Field> fields;
      for (int i : in[0]->DimensionIndices()) fields.push_back(in[0]->field(i));
      fields.push_back(Field::Attr(in[0]->field(la[0]).name, out));
      return Schema::Make(std::move(fields));
    }
    case OpKind::kMatMul: {
      NEXUS_RETURN_NOT_OK(InferMatMulInput(in[0], "left").status());
      NEXUS_RETURN_NOT_OK(InferMatMulInput(in[1], "right").status());
      const auto& op = plan.As<MatMulOp>();
      std::vector<int> ld = in[0]->DimensionIndices();
      std::vector<int> rd = in[1]->DimensionIndices();
      std::string row = in[0]->field(ld[0]).name;
      std::string col = in[1]->field(rd[1]).name;
      if (col == row) col += "_2";
      DataType lt = in[0]->field(in[0]->AttributeIndices()[0]).type;
      DataType rt = in[1]->field(in[1]->AttributeIndices()[0]).type;
      NEXUS_ASSIGN_OR_RETURN(DataType vt, CommonNumericType(lt, rt));
      return Schema::Make(
          {Field::Dim(row), Field::Dim(col), Field::Attr(op.result_attr, vt)});
    }
    case OpKind::kPageRank: {
      const auto& op = plan.As<PageRankOp>();
      NEXUS_ASSIGN_OR_RETURN(int si, in[0]->FindFieldOrError(op.src_col));
      NEXUS_ASSIGN_OR_RETURN(int di, in[0]->FindFieldOrError(op.dst_col));
      if (in[0]->field(si).type != DataType::kInt64 ||
          in[0]->field(di).type != DataType::kInt64) {
        return Status::TypeError("pagerank edge endpoints must be int64");
      }
      if (op.damping <= 0.0 || op.damping >= 1.0) {
        return Status::InvalidArgument("pagerank damping must be in (0, 1)");
      }
      if (op.max_iters < 1) {
        return Status::InvalidArgument("pagerank max_iters must be >= 1");
      }
      return Schema::Make({Field::Dim("node"), Field::Attr("rank", DataType::kFloat64)});
    }
    case OpKind::kIterate: {
      const auto& op = plan.As<IterateOp>();
      if (op.body == nullptr) return Status::PlanError("iterate requires a body");
      if (op.max_iters < 1) {
        return Status::InvalidArgument("iterate max_iters must be >= 1");
      }
      ctx->loop_stack.push_back(in[0]);
      auto body_schema = InferSchema(*op.body, ctx);
      Result<SchemaPtr> measure_schema = SchemaPtr(nullptr);
      if (body_schema.ok() && op.measure != nullptr) {
        measure_schema = InferSchema(*op.measure, ctx);
      }
      ctx->loop_stack.pop_back();
      NEXUS_ASSIGN_OR_RETURN(SchemaPtr body, body_schema);
      if (!body->Equals(*in[0])) {
        return Status::TypeError(StrCat("iterate body schema ", body->ToString(),
                                        " differs from init schema ",
                                        in[0]->ToString()));
      }
      if (op.measure != nullptr) {
        NEXUS_ASSIGN_OR_RETURN(SchemaPtr m, measure_schema);
        if (m->num_fields() != 1 || m->field(0).type != DataType::kFloat64) {
          return Status::TypeError(
              "iterate measure must produce a single float64 column");
        }
        if (op.epsilon < 0) {
          return Status::InvalidArgument("iterate epsilon must be >= 0");
        }
      }
      return in[0];
    }
    case OpKind::kExchange:
      return in[0];
  }
  return Status::Internal("unhandled operator in schema inference");
}

Result<SchemaPtr> InferSchema(const Plan& plan, const Catalog& catalog) {
  InferContext ctx;
  ctx.catalog = &catalog;
  return InferSchema(plan, &ctx);
}

}  // namespace nexus
