#include "core/catalog.h"

#include <mutex>

#include "common/str_util.h"

namespace nexus {

namespace {
// Lookup shared by Get/GetSchema; caller must hold mu_ (any mode).
Result<Dataset> FindLocked(const std::map<std::string, Dataset>& entries,
                           const std::string& name) {
  auto it = entries.find(name);
  if (it == entries.end()) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  return it->second;
}
}  // namespace

Result<TableStats> Catalog::GetStats(const std::string& name) const {
  return Status::NotFound(StrCat("no statistics for '", name, "'"));
}

Status InMemoryCatalog::Put(const std::string& name, Dataset data) {
  if (name.empty()) return Status::InvalidArgument("catalog name must be non-empty");
  // Compute stats outside the lock: registration is the natural (and only
  // cheap) moment to scan, and concurrent readers shouldn't wait on it.
  TableStats stats = ComputeStats(data);
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_[name] = std::move(data);
  stats_[name] = std::move(stats);
  return Status::OK();
}

Result<Dataset> InMemoryCatalog::Get(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindLocked(entries_, name);
}

Status InMemoryCatalog::Drop(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  stats_.erase(name);
  if (entries_.erase(name) == 0) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  return Status::OK();
}

Result<TableStats> InMemoryCatalog::GetStats(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    return Status::NotFound(StrCat("no statistics for '", name, "'"));
  }
  return it->second;
}

Status InMemoryCatalog::RefreshStats(const std::string& name) {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, Get(name));
  TableStats stats = ComputeStats(d);
  std::unique_lock<std::shared_mutex> lock(mu_);
  stats_[name] = std::move(stats);
  return Status::OK();
}

Status InMemoryCatalog::OverrideStats(const std::string& name, TableStats stats) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.count(name) == 0) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  stats_[name] = std::move(stats);
  return Status::OK();
}

Result<SchemaPtr> InMemoryCatalog::GetSchema(const std::string& name) const {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, Get(name));
  return d.schema();
}

bool InMemoryCatalog::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.count(name) > 0;
}

std::vector<std::string> InMemoryCatalog::Names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, data] : entries_) out.push_back(name);
  return out;
}

int64_t InMemoryCatalog::TotalBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t bytes = 0;
  for (const auto& [name, data] : entries_) bytes += data.ByteSize();
  return bytes;
}

}  // namespace nexus
