#include "core/catalog.h"

#include <mutex>

#include "common/str_util.h"

namespace nexus {

namespace {
// Lookup shared by Get/GetSchema; caller must hold mu_ (any mode).
Result<Dataset> FindLocked(const std::map<std::string, Dataset>& entries,
                           const std::string& name) {
  auto it = entries.find(name);
  if (it == entries.end()) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  return it->second;
}
}  // namespace

Result<TableStats> Catalog::GetStats(const std::string& name) const {
  return Status::NotFound(StrCat("no statistics for '", name, "'"));
}

Status InMemoryCatalog::Put(const std::string& name, Dataset data) {
  if (name.empty()) return Status::InvalidArgument("catalog name must be non-empty");
  // Compute stats outside the lock: registration is the natural (and only
  // cheap) moment to scan, and concurrent readers shouldn't wait on it.
  TableStats stats = ComputeStats(data);
  const int64_t rows = data.num_rows();
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_[name] = std::move(data);
  stats_[name] = std::move(stats);
  // Reset the append tail: a Put is a wholesale replacement, so any retained
  // incremental state keyed to the previous generation is now invalid.
  TailState& tail = tails_[name];
  tail.epoch = 0;
  tail.generation = ++generation_seq_;
  tail.rows_at_epoch.assign(1, rows);
  tail.acc.reset();
  return Status::OK();
}

Status InMemoryCatalog::Append(const std::string& name, const Dataset& delta) {
  if (!delta.is_table()) {
    return Status::InvalidArgument("Append requires a table delta");
  }
  const TablePtr& tail_rows = delta.table();
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  if (!it->second.is_table()) {
    return Status::InvalidArgument(
        StrCat("cannot append to array collection '", name, "'"));
  }
  const TablePtr& base = it->second.table();
  if (!base->schema()->Equals(*tail_rows->schema())) {
    return Status::InvalidArgument(
        StrCat("append schema mismatch for '", name, "'"));
  }
  TailState& tail = tails_[name];
  if (tail.acc == nullptr) {
    // First append of this generation: seed the running accumulator with the
    // rows already here (one scan, once); every later batch is O(|Δ|).
    tail.acc = std::make_unique<TableStatsAccumulator>(base->schema());
    tail.acc->AddTable(*base);
  }
  std::vector<Column> cols = base->columns();
  for (int c = 0; c < base->num_columns(); ++c) {
    NEXUS_RETURN_NOT_OK(
        cols[static_cast<size_t>(c)].AppendColumn(tail_rows->column(c)));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr grown,
                         Table::Make(base->schema(), std::move(cols)));
  it->second = Dataset(std::move(grown));
  tail.acc->AddTable(*tail_rows);
  stats_[name] = tail.acc->Snapshot();
  ++tail.epoch;
  tail.rows_at_epoch.push_back(it->second.num_rows());
  return Status::OK();
}

Result<TableTail> InMemoryCatalog::Tail(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tails_.find(name);
  if (it == tails_.end() || entries_.count(name) == 0) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  TableTail out;
  out.epoch = it->second.epoch;
  out.generation = it->second.generation;
  out.row_count = it->second.rows_at_epoch.back();
  return out;
}

Result<TablePtr> InMemoryCatalog::DeltaSince(const std::string& name,
                                             int64_t epoch) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto te = tails_.find(name);
  auto it = entries_.find(name);
  if (te == tails_.end() || it == entries_.end()) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  if (!it->second.is_table()) {
    return Status::InvalidArgument(
        StrCat("'", name, "' is not a table collection"));
  }
  const TailState& tail = te->second;
  if (epoch < 0 || epoch > tail.epoch) {
    return Status::InvalidArgument(
        StrCat("epoch ", epoch, " out of range for '", name, "' (current ",
               tail.epoch, ")"));
  }
  const TablePtr& t = it->second.table();
  int64_t from = tail.rows_at_epoch[static_cast<size_t>(epoch)];
  return t->Slice(from, t->num_rows() - from);
}

Result<Dataset> InMemoryCatalog::Get(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindLocked(entries_, name);
}

Status InMemoryCatalog::Drop(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  stats_.erase(name);
  tails_.erase(name);
  if (entries_.erase(name) == 0) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  return Status::OK();
}

Result<TableStats> InMemoryCatalog::GetStats(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    return Status::NotFound(StrCat("no statistics for '", name, "'"));
  }
  return it->second;
}

Status InMemoryCatalog::RefreshStats(const std::string& name) {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, Get(name));
  TableStats stats = ComputeStats(d);
  std::unique_lock<std::shared_mutex> lock(mu_);
  stats_[name] = std::move(stats);
  return Status::OK();
}

Status InMemoryCatalog::OverrideStats(const std::string& name, TableStats stats) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.count(name) == 0) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  stats_[name] = std::move(stats);
  return Status::OK();
}

Result<SchemaPtr> InMemoryCatalog::GetSchema(const std::string& name) const {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, Get(name));
  return d.schema();
}

bool InMemoryCatalog::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.count(name) > 0;
}

std::vector<std::string> InMemoryCatalog::Names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, data] : entries_) out.push_back(name);
  return out;
}

int64_t InMemoryCatalog::TotalBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t bytes = 0;
  for (const auto& [name, data] : entries_) bytes += data.ByteSize();
  return bytes;
}

}  // namespace nexus
