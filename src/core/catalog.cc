#include "core/catalog.h"

#include "common/str_util.h"

namespace nexus {

Status InMemoryCatalog::Put(const std::string& name, Dataset data) {
  if (name.empty()) return Status::InvalidArgument("catalog name must be non-empty");
  entries_[name] = std::move(data);
  return Status::OK();
}

Result<Dataset> InMemoryCatalog::Get(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  return it->second;
}

Status InMemoryCatalog::Drop(const std::string& name) {
  if (entries_.erase(name) == 0) {
    return Status::NotFound(StrCat("no collection named '", name, "'"));
  }
  return Status::OK();
}

Result<SchemaPtr> InMemoryCatalog::GetSchema(const std::string& name) const {
  NEXUS_ASSIGN_OR_RETURN(Dataset d, Get(name));
  return d.schema();
}

bool InMemoryCatalog::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> InMemoryCatalog::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, data] : entries_) out.push_back(name);
  return out;
}

int64_t InMemoryCatalog::TotalBytes() const {
  int64_t bytes = 0;
  for (const auto& [name, data] : entries_) bytes += data.ByteSize();
  return bytes;
}

}  // namespace nexus
