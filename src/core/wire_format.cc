#include "core/wire_format.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace nexus {

namespace {

// -1 = no override; otherwise a WireFormat value.
std::atomic<int> g_override{-1};

WireFormat EnvWireFormat() {
  static const WireFormat from_env = [] {
    const char* env = std::getenv("NEXUS_WIRE");
    if (env != nullptr && std::strcmp(env, "text") == 0) return WireFormat::kText;
    return WireFormat::kBinary;
  }();
  return from_env;
}

}  // namespace

const char* WireFormatName(WireFormat f) {
  switch (f) {
    case WireFormat::kText:
      return "text";
    case WireFormat::kBinary:
      return "binary";
  }
  return "?";
}

WireFormat ProcessWireFormat() {
  int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<WireFormat>(o);
  return EnvWireFormat();
}

void SetWireFormatOverride(WireFormat f) {
  g_override.store(static_cast<int>(f), std::memory_order_relaxed);
}

void ClearWireFormatOverride() { g_override.store(-1, std::memory_order_relaxed); }

}  // namespace nexus
