// Static analysis of algebra plans: output-schema inference doubling as the
// type checker. Every structural rule of the algebra (key types match, slice
// targets are dimensions, Iterate bodies preserve schema, …) is enforced
// here, so providers and executors can assume well-formed plans.
#ifndef NEXUS_CORE_SCHEMA_INFERENCE_H_
#define NEXUS_CORE_SCHEMA_INFERENCE_H_

#include <vector>

#include "core/catalog.h"
#include "core/plan.h"

namespace nexus {

/// Inference environment: the catalog resolving Scan leaves plus the stack
/// of loop-variable schemas for nested Iterate scopes.
struct InferContext {
  const Catalog* catalog = nullptr;
  std::vector<SchemaPtr> loop_stack;
};

/// Output schema of `plan`, or the first type/structure error found.
Result<SchemaPtr> InferSchema(const Plan& plan, InferContext* ctx);

/// Convenience overload for plans with no free loop variables.
Result<SchemaPtr> InferSchema(const Plan& plan, const Catalog& catalog);

/// Result type of an aggregate over an input of type `in`. `in` is ignored
/// for count. Errors when the function cannot apply (e.g. sum of strings).
Result<DataType> AggResultType(AggFunc func, DataType in);

}  // namespace nexus

#endif  // NEXUS_CORE_SCHEMA_INFERENCE_H_
