#include "algebra/kernels.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "exec/spill/spill.h"
#include "expr/eval.h"
#include "relational/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "types/schema.h"

namespace nexus {
namespace algebra {

namespace {

void Count(const char* name) {
  telemetry::MetricsRegistry::Global().counter(name)->Increment();
}

// Typed key equality across two tables (no nulls in associative-array keys,
// but kept null-aware so the logic is identical to relational::HashJoin's).
bool PairKeysEqual(const Table& a, int64_t ar, const std::vector<int>& ac,
                   const Table& b, int64_t br, const std::vector<int>& bc) {
  for (size_t k = 0; k < ac.size(); ++k) {
    const Column& ca = a.column(ac[k]);
    const Column& cb = b.column(bc[k]);
    bool na = ca.IsNull(ar), nb = cb.IsNull(br);
    if (na || nb) return false;
    if (ca.type() == cb.type()) {
      switch (ca.type()) {
        case DataType::kInt64:
          if (ca.ints()[static_cast<size_t>(ar)] !=
              cb.ints()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kFloat64:
          if (ca.doubles()[static_cast<size_t>(ar)] !=
              cb.doubles()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kBool:
          if (ca.bools()[static_cast<size_t>(ar)] !=
              cb.bools()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
        case DataType::kString:
          if (ca.strings()[static_cast<size_t>(ar)] !=
              cb.strings()[static_cast<size_t>(br)]) {
            return false;
          }
          break;
      }
    } else if (ca.GetValue(ar) != cb.GetValue(br)) {
      return false;
    }
  }
  return true;
}

// Group-key equality with SQL semantics (nulls equal each other), matching
// relational::HashAggregate so LowerAggregate groups identically. Over
// associative arrays keys are never null, so this degrades to plain equality.
bool GroupKeysEqual(const Table& t, int64_t ar, int64_t br,
                    const std::vector<int>& cols) {
  for (int c : cols) {
    const Column& col = t.column(c);
    bool na = col.IsNull(ar), nb = col.IsNull(br);
    if (na != nb) return false;
    if (na) continue;
    if (col.GetValue(ar) != col.GetValue(br)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The shared ⊕-fold core. Normalize/Union/Reduce and LowerAggregate all run
// on this one implementation — the "write it once, not four times" payoff.
// ---------------------------------------------------------------------------

/// Per-(group, fold) accumulator. `+`-folds accumulate from the ring zero
/// (bit-identical to the engines' `acc = 0; acc += v` loops); min/max/or
/// folds seed from the first value (the engines' has-extreme seeding).
struct MonoidState {
  int64_t count = 0;  ///< non-null contributions (count_star: all rows)
  int64_t iacc = 0;
  double facc = 0.0;
  std::string sacc;
  bool seen = false;
};

/// One ⊕-fold over one input column.
struct FoldSpec {
  MonoidOp op = MonoidOp::kAdd;
  bool lift = false;        ///< fold ring-one per entry (COUNT-style rings)
  bool count_star = false;  ///< count every row, ignoring the input column
  int64_t one_i = 1;
  double one_f = 1.0;
};

Status FoldRow(const FoldSpec& f, const Column& c, int64_t r, MonoidState* st) {
  if (f.count_star) {
    ++st->count;
    return Status::OK();
  }
  if (c.IsNull(r)) return Status::OK();
  if (c.type() == DataType::kBool) {
    return Status::TypeError("cannot aggregate bool input");
  }
  ++st->count;
  if (f.lift) {
    if (f.op == MonoidOp::kAdd) {
      st->iacc += f.one_i;
      st->facc += f.one_f;
    } else {
      st->iacc = st->seen ? ApplyI(f.op, st->iacc, f.one_i) : f.one_i;
      st->facc = st->seen ? ApplyF(f.op, st->facc, f.one_f) : f.one_f;
    }
    st->seen = true;
    return Status::OK();
  }
  switch (c.type()) {
    case DataType::kInt64: {
      int64_t v = c.ints()[static_cast<size_t>(r)];
      if (f.op == MonoidOp::kAdd) {
        st->iacc += v;
        st->facc += static_cast<double>(v);  // engines track both sums
      } else {
        st->iacc = st->seen ? ApplyI(f.op, st->iacc, v) : v;
        st->facc = st->seen ? ApplyF(f.op, st->facc, static_cast<double>(v))
                            : static_cast<double>(v);
      }
      break;
    }
    case DataType::kFloat64: {
      double v = c.doubles()[static_cast<size_t>(r)];
      if (f.op == MonoidOp::kAdd) {
        st->facc += v;
      } else {
        st->facc = st->seen ? ApplyF(f.op, st->facc, v) : v;
      }
      break;
    }
    case DataType::kString: {
      const std::string& s = c.strings()[static_cast<size_t>(r)];
      // Strings extend the fold as an ordered monoid under min/max only;
      // other ops contribute count alone (matching the engine, whose
      // numeric sums simply stay zero for string inputs).
      if (f.op == MonoidOp::kMin) {
        if (!st->seen || s < st->sacc) st->sacc = s;
      } else if (f.op == MonoidOp::kMax) {
        if (!st->seen || s > st->sacc) st->sacc = s;
      }
      break;
    }
    case DataType::kBool:
      break;  // unreachable (checked above)
  }
  st->seen = true;
  return Status::OK();
}

/// One hash partition's fold state (the sequential path uses a single
/// partition covering every hash) — the shape of relational's AggPartition.
struct FoldPartition {
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<int64_t> rep_row;
  std::vector<std::vector<MonoidState>> states;
};

/// Folds every row whose group hash satisfies (h & mask) == want into
/// `part`, scanning rows in ascending order — the determinism contract's
/// partition-by-hash ⊕: a group's rows all share one hash, so one partition
/// folds them in the same ascending order as the sequential pass.
Status AccumulateFold(const Table& input, const std::vector<int>& group_cols,
                      const std::vector<FoldSpec>& folds,
                      const std::vector<Column>& fold_inputs,
                      const std::vector<uint64_t>& hashes, uint64_t mask,
                      uint64_t want, FoldPartition* part) {
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    uint64_t h = hashes[static_cast<size_t>(r)];
    if ((h & mask) != want) continue;
    std::vector<size_t>& bucket = part->buckets[h];
    size_t group = SIZE_MAX;
    for (size_t g : bucket) {
      if (GroupKeysEqual(input, part->rep_row[g], r, group_cols)) {
        group = g;
        break;
      }
    }
    if (group == SIZE_MAX) {
      group = part->states.size();
      bucket.push_back(group);
      part->rep_row.push_back(r);
      part->states.emplace_back(folds.size());
    }
    std::vector<MonoidState>& gs = part->states[group];
    for (size_t a = 0; a < folds.size(); ++a) {
      NEXUS_RETURN_NOT_OK(FoldRow(folds[a], fold_inputs[a], r, &gs[a]));
    }
  }
  return Status::OK();
}

struct GroupFoldOut {
  std::vector<int64_t> rep_row;
  std::vector<std::vector<MonoidState>> states;
};

// Out-of-core grouped ⊕-fold, the algebra twin of relational's spilled
// aggregation: Grace-partition a (keys + fold inputs) working table by group
// hash, fold each loaded partition with the ordinary sequential pass, and
// sort the merged groups by their global rep row. A group's rows share one
// hash, so one partition folds them all in ascending original-row order —
// the sequential ⊕ order — and the merge restores first-seen group order.
Result<GroupFoldOut> SpillGroupFold(const Table& input,
                                    const std::vector<int>& group_cols,
                                    const std::vector<FoldSpec>& folds,
                                    const std::vector<Column>& fold_inputs,
                                    const std::vector<uint64_t>& hashes) {
  std::vector<Field> wfields;
  std::vector<Column> wcols;
  std::vector<int> wgroup_cols;
  for (size_t g = 0; g < group_cols.size(); ++g) {
    Field f = input.schema()->field(group_cols[g]);
    f.is_dimension = false;
    wfields.push_back(std::move(f));
    wcols.push_back(input.column(group_cols[g]));
    wgroup_cols.push_back(static_cast<int>(g));
  }
  std::vector<int> fold_slot(folds.size(), -1);
  for (size_t a = 0; a < folds.size(); ++a) {
    if (folds[a].count_star) continue;  // never reads its column
    fold_slot[a] = static_cast<int>(wcols.size());
    wfields.push_back(Field::Attr(StrCat("__fold_", static_cast<int64_t>(a)),
                                  fold_inputs[a].type()));
    wcols.push_back(fold_inputs[a]);
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr wschema, Schema::Make(std::move(wfields)));
  NEXUS_ASSIGN_OR_RETURN(TablePtr working,
                         Table::Make(wschema, std::move(wcols)));

  spill::PartitionedSpiller::Options opts;
  opts.budget_bytes = spill::SpillBudgetBytes();
  opts.tag = "fold";
  opts.release_inputs = true;
  spill::PartitionedSpiller spiller(&spill::SpillManager::Global(), opts);

  std::vector<std::pair<int64_t, std::vector<MonoidState>>> groups;
  Status st = spiller.Run(
      {{working, &hashes}},
      [&](const std::vector<TablePtr>& parts) -> Status {
        const Table& wp = *parts[0];
        const auto& rows = wp.column(wp.num_columns() - 2).ints();
        const auto& hbits = wp.column(wp.num_columns() - 1).ints();
        std::vector<uint64_t> local_hashes;
        local_hashes.reserve(hbits.size());
        for (int64_t h : hbits) local_hashes.push_back(static_cast<uint64_t>(h));
        std::vector<Column> local_inputs;
        for (size_t a = 0; a < folds.size(); ++a) {
          local_inputs.push_back(fold_slot[a] < 0 ? Column(DataType::kInt64)
                                                  : wp.column(fold_slot[a]));
        }
        FoldPartition part;
        NEXUS_RETURN_NOT_OK(AccumulateFold(wp, wgroup_cols, folds,
                                           local_inputs, local_hashes, 0, 0,
                                           &part));
        for (size_t g = 0; g < part.states.size(); ++g) {
          groups.emplace_back(rows[static_cast<size_t>(part.rep_row[g])],
                              std::move(part.states[g]));
        }
        return Status::OK();
      });
  working.reset();
  NEXUS_RETURN_NOT_OK(st);
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  GroupFoldOut out;
  out.rep_row.reserve(groups.size());
  out.states.reserve(groups.size());
  for (auto& [row, gs] : groups) {
    out.rep_row.push_back(row);
    out.states.push_back(std::move(gs));
  }
  Count("algebra.spilled_folds");
  return out;
}

/// The full grouped ⊕-fold with relational::HashAggregate's exact parallel
/// skeleton: same hashes, same sequential-path condition, same pow-2
/// partition count, and the same rep_row sort restoring first-seen group
/// order — so anything built on this fold is byte-identical at any thread
/// count, and LowerAggregate is byte-identical to the engine it replaces.
Result<GroupFoldOut> GroupFold(const Table& input,
                               const std::vector<int>& group_cols,
                               const std::vector<FoldSpec>& folds,
                               const std::vector<Column>& fold_inputs) {
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes,
                         relational::HashRows(input, group_cols));
  GroupFoldOut out;
  const int64_t n = input.num_rows();
  // Out-of-core path (mirrors relational::HashAggregate's spill branch).
  if (!group_cols.empty() && n > 0) {
    int64_t working_bytes = 0;
    for (int c : group_cols) working_bytes += input.column(c).ByteSize();
    for (const Column& c : fold_inputs) working_bytes += c.ByteSize();
    if (spill::ShouldSpill(working_bytes)) {
      return SpillGroupFold(input, group_cols, folds, fold_inputs, hashes);
    }
  }
  if (GetThreadCount() == 1 || group_cols.empty() || n < 2 * kMorselRows) {
    FoldPartition all;
    NEXUS_RETURN_NOT_OK(AccumulateFold(input, group_cols, folds, fold_inputs,
                                       hashes, 0, 0, &all));
    out.rep_row = std::move(all.rep_row);
    out.states = std::move(all.states);
    return out;
  }
  int parts = 1;
  while (parts < GetThreadCount() && parts < 64) parts *= 2;
  const uint64_t mask = static_cast<uint64_t>(parts - 1);
  std::vector<FoldPartition> partitions(static_cast<size_t>(parts));
  std::vector<Status> statuses(static_cast<size_t>(parts), Status::OK());
  ParallelFor(parts, 1, [&](int64_t pb, int64_t pe) {
    for (int64_t p = pb; p < pe; ++p) {
      statuses[static_cast<size_t>(p)] =
          AccumulateFold(input, group_cols, folds, fold_inputs, hashes, mask,
                         static_cast<uint64_t>(p),
                         &partitions[static_cast<size_t>(p)]);
    }
  });
  for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);
  struct GroupRef {
    int64_t row;
    int part;
    size_t idx;
  };
  std::vector<GroupRef> order;
  size_t total = 0;
  for (const FoldPartition& p : partitions) total += p.states.size();
  order.reserve(total);
  for (int p = 0; p < parts; ++p) {
    const FoldPartition& part = partitions[static_cast<size_t>(p)];
    for (size_t g = 0; g < part.states.size(); ++g) {
      order.push_back({part.rep_row[g], p, g});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const GroupRef& a, const GroupRef& b) { return a.row < b.row; });
  out.rep_row.reserve(total);
  out.states.reserve(total);
  for (const GroupRef& gr : order) {
    out.rep_row.push_back(gr.row);
    out.states.push_back(
        std::move(partitions[static_cast<size_t>(gr.part)].states[gr.idx]));
  }
  return out;
}

// Out-of-core ⊗-join pair computation — the algebra twin of relational's
// spilled HashJoin: partition both sides by key hash, build/probe each
// partition in memory, and sort the merged pairs of original entry indices
// by (a, b). The in-memory probe emits pairs in exactly that lexicographic
// order (a-entries ascending, each probing one ascending bucket chain), so
// the sorted pairs — and everything gathered from them — are bit-identical.
Status SpillJoinPairs(const TablePtr& ta_ptr, const TablePtr& tb_ptr,
                      const std::vector<uint64_t>& ah,
                      const std::vector<uint64_t>& bh,
                      const std::vector<int>& ak, const std::vector<int>& bk,
                      std::vector<int64_t>* li, std::vector<int64_t>* ri,
                      telemetry::SpanGuard* span) {
  spill::PartitionedSpiller::Options opts;
  opts.budget_bytes = spill::SpillBudgetBytes();
  opts.tag = "alg-join";
  spill::PartitionedSpiller spiller(&spill::SpillManager::Global(), opts);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  ScopedCharge pair_charge;
  Status st = spiller.Run(
      {{ta_ptr, &ah}, {tb_ptr, &bh}},
      [&](const std::vector<TablePtr>& parts) -> Status {
        const Table& ap = *parts[0];
        const Table& bp = *parts[1];
        const auto& arows = ap.column(ap.num_columns() - 2).ints();
        const auto& ahash = ap.column(ap.num_columns() - 1).ints();
        const auto& brows = bp.column(bp.num_columns() - 2).ints();
        const auto& bhash = bp.column(bp.num_columns() - 1).ints();
        ScopedCharge build_charge;
        build_charge.Add(bp.num_rows() * 48);
        std::unordered_map<uint64_t, std::vector<int64_t>> table;
        table.reserve(static_cast<size_t>(bp.num_rows()) + 1);
        for (int64_t r = 0; r < bp.num_rows(); ++r) {
          table[static_cast<uint64_t>(bhash[static_cast<size_t>(r)])].push_back(r);
        }
        size_t before = pairs.size();
        for (int64_t l = 0; l < ap.num_rows(); ++l) {
          auto it = table.find(static_cast<uint64_t>(ahash[static_cast<size_t>(l)]));
          if (it == table.end()) continue;
          for (int64_t r : it->second) {
            if (PairKeysEqual(ap, l, ak, bp, r, bk)) {
              pairs.emplace_back(arows[static_cast<size_t>(l)],
                                 brows[static_cast<size_t>(r)]);
            }
          }
        }
        pair_charge.Add(static_cast<int64_t>(pairs.size() - before) * 16);
        return Status::OK();
      });
  NEXUS_RETURN_NOT_OK(st);
  std::sort(pairs.begin(), pairs.end());
  li->reserve(pairs.size());
  ri->reserve(pairs.size());
  for (const auto& [l, r] : pairs) {
    li->push_back(l);
    ri->push_back(r);
  }
  Count("algebra.spilled_joins");
  span->AddCounter("spill_partitions", spiller.stats().partitions);
  span->AddCounter("spill_bytes", spiller.stats().bytes_spilled);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Ext
// ---------------------------------------------------------------------------

Result<AssocArray> Ext(const AssocArray& a, const std::vector<Field>& out_keys,
                       const Field& out_value, const ExtFn& fn) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.Ext");
  span.AddCounter("entries_in", a.num_entries());
  Count("algebra.ext");
  if (out_keys.empty()) {
    return Status::InvalidArgument("Ext output needs >= 1 key");
  }
  const int64_t n = a.num_entries();
  const int64_t grain = kMorselRows;
  const size_t morsels = static_cast<size_t>((n + grain - 1) / grain);
  using Emitted = std::pair<std::vector<Value>, Value>;
  std::vector<std::vector<Emitted>> parts(std::max<size_t>(morsels, 1));
  std::vector<Status> statuses(std::max<size_t>(morsels, 1), Status::OK());
  ParallelFor(n, grain, [&](int64_t b, int64_t e) {
    std::vector<Emitted>& out = parts[static_cast<size_t>(b / grain)];
    Status& st = statuses[static_cast<size_t>(b / grain)];
    std::vector<Value> keys(static_cast<size_t>(a.num_keys()));
    auto emit = [&out](std::vector<Value> ks, Value v) {
      out.emplace_back(std::move(ks), std::move(v));
    };
    for (int64_t r = b; r < e; ++r) {
      for (int i = 0; i < a.num_keys(); ++i) {
        keys[static_cast<size_t>(i)] = a.key_column(i).GetValue(r);
      }
      st = fn(keys, a.value_column().GetValue(r), emit);
      if (!st.ok()) return;
    }
  });
  for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);

  std::vector<Field> fields = out_keys;
  fields.push_back(out_value);
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  std::vector<Column> cols;
  for (int c = 0; c < schema->num_fields(); ++c) {
    cols.emplace_back(schema->field(c).type);
  }
  // Merge emitted entries in morsel order: output order is entry order.
  for (const std::vector<Emitted>& part : parts) {
    for (const Emitted& em : part) {
      if (em.first.size() != out_keys.size()) {
        return Status::InvalidArgument("Ext emitted wrong key count");
      }
      for (size_t k = 0; k < em.first.size(); ++k) {
        NEXUS_RETURN_NOT_OK(cols[k].Append(em.first[k]));
      }
      NEXUS_RETURN_NOT_OK(cols[out_keys.size()].Append(em.second));
    }
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr t, Table::Make(schema, std::move(cols)));
  span.AddCounter("entries", t->num_rows());
  return AssocArray::Wrap(std::move(t), static_cast<int>(out_keys.size()));
}

Result<AssocArray> ExtProject(const AssocArray& a,
                              const std::vector<std::string>& keep_keys) {
  Count("algebra.ext");
  if (keep_keys.empty()) {
    return Status::InvalidArgument("ExtProject needs >= 1 kept key");
  }
  std::vector<Field> fields;
  std::vector<Column> cols;
  for (const std::string& k : keep_keys) {
    int i = a.FindKey(k);
    if (i < 0) return Status::PlanError(StrCat("unknown key '", k, "'"));
    fields.push_back(a.table()->schema()->field(i));
    cols.push_back(a.key_column(i));
  }
  fields.push_back(a.table()->schema()->field(a.num_keys()));
  cols.push_back(a.value_column());
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  NEXUS_ASSIGN_OR_RETURN(TablePtr t, Table::Make(schema, std::move(cols)));
  return AssocArray::Wrap(std::move(t), static_cast<int>(keep_keys.size()));
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

Result<AssocArray> Join(const AssocArray& a, const AssocArray& b,
                        const Semiring& sr) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.Join");
  span.AddCounter("entries_left", a.num_entries());
  span.AddCounter("entries_right", b.num_entries());
  Count("algebra.join");

  // Shared keys, in a's key order; b's remaining keys pass through.
  std::vector<int> ak, bk;
  std::vector<int> b_extra;
  for (int i = 0; i < a.num_keys(); ++i) {
    int j = b.FindKey(a.key_name(i));
    if (j >= 0) {
      ak.push_back(i);
      bk.push_back(j);
    }
  }
  if (ak.empty()) {
    return Status::InvalidArgument("Join requires >= 1 shared key attribute");
  }
  for (int j = 0; j < b.num_keys(); ++j) {
    if (std::find(bk.begin(), bk.end(), j) == bk.end()) b_extra.push_back(j);
  }

  const Table& ta = *a.table();
  const Table& tb = *b.table();
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> ah, relational::HashRows(ta, ak));
  NEXUS_ASSIGN_OR_RETURN(std::vector<uint64_t> bh, relational::HashRows(tb, bk));
  const int64_t na = ta.num_rows();
  const int64_t nb = tb.num_rows();

  std::vector<int64_t> li, ri;
  ScopedCharge working_set;  // released when the join returns
  const int64_t grain = kMorselRows;
  // Out-of-core path: Grace-partition both sides when the build-side
  // working set would cross the query's budget.
  if (nb > 0 && spill::ShouldSpill(ta.ByteSize() + tb.ByteSize() + nb * 48)) {
    NEXUS_RETURN_NOT_OK(
        SpillJoinPairs(a.table(), b.table(), ah, bh, ak, bk, &li, &ri, &span));
  } else {
    // Partitioned build on b (ascending bucket chains), morsel-order probe of
    // a — the HashJoin determinism recipe: pair order is a-entry order with
    // matches in b-entry order, independent of the thread count.
    int parts = 1;
    while (parts < GetThreadCount() && parts < 64) parts *= 2;
    const uint64_t mask = static_cast<uint64_t>(parts - 1);
    working_set.Add(nb * 48);
    std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> tables(
        static_cast<size_t>(parts));
    ParallelFor(parts, 1, [&](int64_t pb, int64_t pe) {
      for (int64_t p = pb; p < pe; ++p) {
        auto& table = tables[static_cast<size_t>(p)];
        table.reserve(static_cast<size_t>(nb / parts + 1));
        for (int64_t r = 0; r < nb; ++r) {
          uint64_t h = bh[static_cast<size_t>(r)];
          if ((h & mask) != static_cast<uint64_t>(p)) continue;
          table[h].push_back(r);
        }
      }
    });

    const size_t morsels = static_cast<size_t>((na + grain - 1) / grain);
    std::vector<std::vector<int64_t>> lparts(std::max<size_t>(morsels, 1));
    std::vector<std::vector<int64_t>> rparts(std::max<size_t>(morsels, 1));
    ParallelFor(na, grain, [&](int64_t bgn, int64_t end) {
      std::vector<int64_t>& lo = lparts[static_cast<size_t>(bgn / grain)];
      std::vector<int64_t>& ro = rparts[static_cast<size_t>(bgn / grain)];
      for (int64_t l = bgn; l < end; ++l) {
        uint64_t h = ah[static_cast<size_t>(l)];
        const auto& table = tables[static_cast<size_t>(h & mask)];
        auto it = table.find(h);
        if (it == table.end()) continue;
        for (int64_t r : it->second) {
          if (PairKeysEqual(ta, l, ak, tb, r, bk)) {
            lo.push_back(l);
            ro.push_back(r);
          }
        }
      }
    });
    size_t total = 0;
    for (const auto& p : lparts) total += p.size();
    working_set.Add(static_cast<int64_t>(total) * 16);
    li.reserve(total);
    ri.reserve(total);
    for (size_t m = 0; m < lparts.size(); ++m) {
      li.insert(li.end(), lparts[m].begin(), lparts[m].end());
      ri.insert(ri.end(), rparts[m].begin(), rparts[m].end());
    }
  }

  // Output schema: a's keys, b's non-shared keys, then the ⊗ value.
  std::vector<Field> fields;
  for (int i = 0; i < a.num_keys(); ++i) {
    fields.push_back(ta.schema()->field(i));
  }
  for (int j : b_extra) {
    Field f = tb.schema()->field(j);
    f.is_dimension = false;
    fields.push_back(f);
  }
  const Column& va = a.value_column();
  const Column& vb = b.value_column();
  const DataType vt =
      (va.type() == DataType::kInt64 && vb.type() == DataType::kInt64)
          ? DataType::kInt64
          : DataType::kFloat64;
  const std::string vname =
      a.value_name() == b.value_name()
          ? a.value_name()
          : StrCat(a.value_name(), "_", b.value_name());
  fields.push_back(Field::Attr(vname, vt));
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));

  std::vector<Column> out_cols;
  for (int i = 0; i < a.num_keys(); ++i) {
    out_cols.push_back(ta.column(i).Take(li));
  }
  for (int j : b_extra) {
    out_cols.push_back(tb.column(j).Take(ri));
  }
  // ⊗-combine the paired values (each morsel owns disjoint slots).
  const int64_t npairs = static_cast<int64_t>(li.size());
  if (vt == DataType::kInt64) {
    std::vector<int64_t> vals(static_cast<size_t>(npairs));
    ParallelFor(npairs, grain, [&](int64_t bgn, int64_t end) {
      for (int64_t p = bgn; p < end; ++p) {
        int64_t x = sr.lift
                        ? ApplyI(sr.times, sr.one_i, sr.one_i)
                        : ApplyI(sr.times,
                                 va.ints()[static_cast<size_t>(
                                     li[static_cast<size_t>(p)])],
                                 vb.ints()[static_cast<size_t>(
                                     ri[static_cast<size_t>(p)])]);
        vals[static_cast<size_t>(p)] = x;
      }
    });
    out_cols.push_back(Column::FromInt64(std::move(vals)));
  } else {
    auto load = [](const Column& c, int64_t r) {
      return c.type() == DataType::kInt64
                 ? static_cast<double>(c.ints()[static_cast<size_t>(r)])
                 : c.doubles()[static_cast<size_t>(r)];
    };
    std::vector<double> vals(static_cast<size_t>(npairs));
    ParallelFor(npairs, grain, [&](int64_t bgn, int64_t end) {
      for (int64_t p = bgn; p < end; ++p) {
        double x = sr.lift
                       ? ApplyF(sr.times, sr.one_f, sr.one_f)
                       : ApplyF(sr.times, load(va, li[static_cast<size_t>(p)]),
                                load(vb, ri[static_cast<size_t>(p)]));
        vals[static_cast<size_t>(p)] = x;
      }
    });
    out_cols.push_back(Column::FromFloat64(std::move(vals)));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr t, Table::Make(schema, std::move(out_cols)));
  span.AddCounter("entries", t->num_rows());
  return AssocArray::Wrap(std::move(t),
                          a.num_keys() + static_cast<int>(b_extra.size()));
}

// ---------------------------------------------------------------------------
// Union / Normalize / Reduce
// ---------------------------------------------------------------------------

Result<AssocArray> Normalize(const AssocArray& a, const Semiring& sr) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.Normalize");
  span.AddCounter("entries_in", a.num_entries());
  Count("algebra.normalize");
  std::vector<int> group_cols;
  for (int i = 0; i < a.num_keys(); ++i) group_cols.push_back(i);
  std::vector<FoldSpec> folds(1);
  folds[0].op = sr.plus;
  folds[0].lift = sr.lift;
  folds[0].one_i = sr.one_i;
  folds[0].one_f = sr.one_f;
  std::vector<Column> inputs = {a.value_column()};
  NEXUS_ASSIGN_OR_RETURN(GroupFoldOut folded,
                         GroupFold(*a.table(), group_cols, folds, inputs));
  std::vector<Column> out_cols;
  for (int c : group_cols) {
    out_cols.push_back(a.table()->column(c).Take(folded.rep_row));
  }
  Column vcol(a.value_type());
  vcol.Reserve(static_cast<int64_t>(folded.states.size()));
  for (const auto& gs : folded.states) {
    if (a.value_type() == DataType::kInt64) {
      vcol.AppendInt64(gs[0].iacc);
    } else {
      vcol.AppendFloat64(gs[0].facc);
    }
  }
  out_cols.push_back(std::move(vcol));
  NEXUS_ASSIGN_OR_RETURN(
      TablePtr t, Table::Make(a.table()->schema(), std::move(out_cols)));
  span.AddCounter("entries", t->num_rows());
  return AssocArray::Wrap(std::move(t), a.num_keys());
}

Result<AssocArray> Union(const AssocArray& a, const AssocArray& b,
                         const Semiring& sr) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.Union");
  Count("algebra.union");
  if (a.num_keys() != b.num_keys()) {
    return Status::TypeError("Union key-arity mismatch");
  }
  for (int i = 0; i < a.num_keys(); ++i) {
    if (a.key_name(i) != b.key_name(i) ||
        a.key_column(i).type() != b.key_column(i).type()) {
      return Status::TypeError(
          StrCat("Union key mismatch at position ", i));
    }
  }
  if (a.value_type() != b.value_type()) {
    return Status::TypeError("Union value-type mismatch");
  }
  // Concatenate a then b (a's names win), then ⊕-collapse: entries of `a`
  // fold before entries of `b` within each shared key.
  std::vector<Column> cols = a.table()->columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    NEXUS_RETURN_NOT_OK(cols[c].AppendColumn(b.table()->column(static_cast<int>(c))));
  }
  NEXUS_ASSIGN_OR_RETURN(TablePtr both,
                         Table::Make(a.table()->schema(), std::move(cols)));
  NEXUS_ASSIGN_OR_RETURN(AssocArray wrapped,
                         AssocArray::Wrap(std::move(both), a.num_keys()));
  return Normalize(wrapped, sr);
}

Result<AssocArray> Reduce(const AssocArray& a,
                          const std::vector<std::string>& keep_keys,
                          const Semiring& sr) {
  NEXUS_ASSIGN_OR_RETURN(AssocArray projected, ExtProject(a, keep_keys));
  return Normalize(projected, sr);
}

// ---------------------------------------------------------------------------
// Lowering: relational aggregation
// ---------------------------------------------------------------------------

bool AggregateLowerable(const AggregateOp& spec) {
  for (const AggSpec& a : spec.aggs) {
    switch (a.func) {
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
      case AggFunc::kCount:
        break;
      case AggFunc::kAvg:
        return false;  // a quotient of folds, not a single monoid fold
    }
  }
  return true;
}

Result<TablePtr> LowerAggregate(const TablePtr& input,
                                const AggregateOp& spec) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.Agg");
  span.AddCounter("rows_in", input->num_rows());
  Count("algebra.agg_lowered");
  Count("algebra.ops_lowered");
  std::vector<int> group_cols;
  for (const std::string& g : spec.group_by) {
    NEXUS_ASSIGN_OR_RETURN(int i, input->schema()->FindFieldOrError(g));
    group_cols.push_back(i);
  }
  // Pre-evaluate aggregate inputs (identical to the engine's).
  std::vector<Column> agg_inputs;
  std::vector<DataType> agg_types;
  std::vector<FoldSpec> folds;
  for (const AggSpec& a : spec.aggs) {
    FoldSpec f;
    switch (a.func) {
      case AggFunc::kSum:
        f.op = MonoidOp::kAdd;
        break;
      case AggFunc::kMin:
        f.op = MonoidOp::kMin;
        break;
      case AggFunc::kMax:
        f.op = MonoidOp::kMax;
        break;
      case AggFunc::kCount:
        // COUNT is the lifted ring: ⊕-fold ring-one per non-null entry
        // (count(*): per row).
        f.op = MonoidOp::kAdd;
        f.lift = true;
        break;
      case AggFunc::kAvg:
        return Status::PlanError("avg is not semi-ring lowerable");
    }
    if (a.input != nullptr) {
      NEXUS_ASSIGN_OR_RETURN(Column c, EvalExprVector(*a.input, *input));
      agg_types.push_back(c.type());
      agg_inputs.push_back(std::move(c));
    } else {
      if (a.func != AggFunc::kCount) {
        return Status::PlanError("only count may omit its input expression");
      }
      f.count_star = true;
      agg_types.push_back(DataType::kInt64);
      agg_inputs.emplace_back(DataType::kInt64);
    }
    folds.push_back(f);
  }
  NEXUS_ASSIGN_OR_RETURN(GroupFoldOut folded,
                         GroupFold(*input, group_cols, folds, agg_inputs));
  std::vector<int64_t> rep_row = std::move(folded.rep_row);
  std::vector<std::vector<MonoidState>> states = std::move(folded.states);
  // SQL semantics: a global aggregate over empty input yields one row.
  if (group_cols.empty() && states.empty()) {
    rep_row.push_back(0);  // unused: no group columns to gather
    states.emplace_back(spec.aggs.size());
  }
  std::vector<Field> fields;
  for (int c : group_cols) fields.push_back(input->schema()->field(c));
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    NEXUS_ASSIGN_OR_RETURN(DataType t,
                           AggResultType(spec.aggs[a].func, agg_types[a]));
    fields.push_back(Field::Attr(spec.aggs[a].output_name, t));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  std::vector<Column> out_cols;
  for (int c : group_cols) out_cols.push_back(input->column(c).Take(rep_row));
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    Column col(schema->field(static_cast<int>(group_cols.size() + a)).type);
    col.Reserve(static_cast<int64_t>(states.size()));
    const DataType in = agg_types[a];
    for (const auto& gs : states) {
      const MonoidState& st = gs[a];
      Value v = Value::Null();
      switch (spec.aggs[a].func) {
        case AggFunc::kCount:
          v = Value::Int64(st.count);
          break;
        case AggFunc::kSum:
          if (st.count == 0) break;
          v = in == DataType::kInt64 ? Value::Int64(st.iacc)
                                     : Value::Float64(st.facc);
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          if (st.count == 0) break;
          if (in == DataType::kString) {
            v = Value::String(st.sacc);
          } else {
            v = in == DataType::kInt64 ? Value::Int64(st.iacc)
                                       : Value::Float64(st.facc);
          }
          break;
        case AggFunc::kAvg:
          return Status::Internal("unreachable: avg not lowerable");
      }
      NEXUS_RETURN_NOT_OK(col.Append(v));
    }
    out_cols.push_back(std::move(col));
  }
  return Table::Make(schema, std::move(out_cols));
}

// ---------------------------------------------------------------------------
// Lowering: sparse linear algebra
// ---------------------------------------------------------------------------

Result<std::vector<linalg::Triplet>> SpGEMMViaJoin(
    const std::vector<linalg::Triplet>& a,
    const std::vector<linalg::Triplet>& b) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.SpGEMM");
  Count("algebra.spgemm_lowered");
  Count("algebra.ops_lowered");
  const Semiring* pt = FindSemiring("plus_times");
  NEXUS_ASSIGN_OR_RETURN(AssocArray aa,
                         AssocArray::FromTriplets(a, "i", "k", "v"));
  NEXUS_ASSIGN_OR_RETURN(AssocArray bb,
                         AssocArray::FromTriplets(b, "k", "j", "v"));
  // Join⊗ pairs a(i,k) with b(k,j) — probe order row-major in a, matches in
  // b's row order — then Reduce⊕ folds each (i,j) in k-ascending order:
  // term-for-term Gustavson's running workspace sum.
  NEXUS_ASSIGN_OR_RETURN(AssocArray joined, Join(aa, bb, *pt));
  NEXUS_ASSIGN_OR_RETURN(AssocArray reduced,
                         Reduce(joined, {"i", "j"}, *pt));
  NEXUS_ASSIGN_OR_RETURN(std::vector<linalg::Triplet> out, reduced.ToTriplets());
  // SpGEMM drops exact-zero outputs (annihilated sums are "not stored").
  std::vector<linalg::Triplet> nz;
  nz.reserve(out.size());
  for (const linalg::Triplet& t : out) {
    if (t.value != 0.0) nz.push_back(t);
  }
  return nz;
}

Result<std::vector<double>> SpMVViaJoin(const std::vector<linalg::Triplet>& a,
                                        int64_t rows,
                                        const std::vector<double>& x) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "alg.SpMV");
  Count("algebra.spmv_lowered");
  Count("algebra.ops_lowered");
  const Semiring* pt = FindSemiring("plus_times");
  NEXUS_ASSIGN_OR_RETURN(AssocArray aa,
                         AssocArray::FromTriplets(a, "i", "k", "v"));
  // x is dense: every index is an entry, explicit zeros included, so each
  // row's fold sees exactly the CSR dot product's terms in the same order.
  NEXUS_ASSIGN_OR_RETURN(AssocArray xx,
                         AssocArray::FromDenseVector(x, "k", "x"));
  NEXUS_ASSIGN_OR_RETURN(AssocArray joined, Join(aa, xx, *pt));
  std::vector<double> y(static_cast<size_t>(rows), 0.0);
  if (joined.num_entries() == 0) return y;
  NEXUS_ASSIGN_OR_RETURN(AssocArray reduced, Reduce(joined, {"i"}, *pt));
  const auto& keys = reduced.key_column(0).ints();
  const auto& vals = reduced.value_column().doubles();
  for (int64_t e = 0; e < reduced.num_entries(); ++e) {
    int64_t i = keys[static_cast<size_t>(e)];
    if (i < 0 || i >= rows) return Status::IndexError("SpMV row out of range");
    y[static_cast<size_t>(i)] = vals[static_cast<size_t>(e)];
  }
  return y;
}

}  // namespace algebra
}  // namespace nexus
