// The three generic kernels of the semi-ring layer — Ext (flatmap), Join
// (⊗-merge on shared keys), Union (⊕-merge) — plus the derived forms
// Normalize (⊕-collapse of duplicate keys) and Reduce (key projection +
// Normalize). Lara/LaraDB show these three suffice to express relational
// aggregation, sparse matrix multiply, and graph relaxation steps; the
// lowering entry points at the bottom are exactly those expressions.
//
// Determinism contract (PR 2): every kernel is byte-identical for any
// thread count. Join hashes with relational::HashRows, builds partitioned
// (pow-of-2 parts, ascending bucket chains) and probes in morsel order;
// Normalize folds with the same partition-by-hash + first-seen-order merge
// as relational::HashAggregate. ⊕ folds with op `+` are seeded from the
// ring zero and applied in ascending row order — bit-identical to the
// engines' `acc = 0; acc += v` loops — while min/max/or folds seed from the
// first value, matching the engines' has-extreme seeding.
#ifndef NEXUS_ALGEBRA_KERNELS_H_
#define NEXUS_ALGEBRA_KERNELS_H_

#include <functional>
#include <string>
#include <vector>

#include "algebra/assoc_array.h"
#include "algebra/semiring.h"
#include "core/plan.h"
#include "types/value.h"

namespace nexus {
namespace algebra {

/// Ext's per-entry function: receives the entry's keys and value and emits
/// zero or more output entries. Must be pure — it may run concurrently on
/// different morsels; emitted entries are concatenated in morsel order.
using ExtFn = std::function<Status(
    const std::vector<Value>& keys, const Value& value,
    const std::function<void(std::vector<Value>, Value)>& emit)>;

/// Flatmap over entries. `out_keys`/`out_value` define the output schema.
Result<AssocArray> Ext(const AssocArray& a, const std::vector<Field>& out_keys,
                       const Field& out_value, const ExtFn& fn);

/// Key projection (an Ext that drops key attributes without touching
/// values); columnar, no per-entry function. Duplicate keys may result —
/// follow with Normalize/Reduce to fold them.
Result<AssocArray> ExtProject(const AssocArray& a,
                              const std::vector<std::string>& keep_keys);

/// ⊗-merge: pairs entries of `a` and `b` agreeing on all shared key names
/// (at least one required). Output keys are a's keys followed by b's
/// non-shared keys; output value is va ⊗ vb (ring `one ⊗ one` when the ring
/// lifts). Pair order is a-entry order with b-matches in b-entry order —
/// the exact probe order of relational::HashJoin.
Result<AssocArray> Join(const AssocArray& a, const AssocArray& b,
                        const Semiring& sr);

/// ⊕-merge: concatenates a then b (schemas must agree) and Normalizes.
Result<AssocArray> Union(const AssocArray& a, const AssocArray& b,
                         const Semiring& sr);

/// Collapses duplicate keys with ⊕ in first-seen key order, folding
/// duplicates in ascending entry order (lifted rings fold `one` per entry).
Result<AssocArray> Normalize(const AssocArray& a, const Semiring& sr);

/// Drops the keys not in `keep_keys`, then Normalizes: the ⊕-aggregation
/// of the algebra. keep_keys may not be empty (a full reduction to a
/// scalar keeps a single constant key instead).
Result<AssocArray> Reduce(const AssocArray& a,
                          const std::vector<std::string>& keep_keys,
                          const Semiring& sr);

// ---------------------------------------------------------------------------
// Lowering entry points: existing engine ops expressed on the kernels.
// ---------------------------------------------------------------------------

/// True when every aggregate in `spec` is a ⊕-fold the algebra covers:
/// SUM/MIN/MAX/COUNT (AVG is a quotient, not a monoid fold — not lowered).
bool AggregateLowerable(const AggregateOp& spec);

/// Grouped aggregation as Reduce: group keys index an associative array
/// whose per-aggregate values fold with the aggregate's monoid (SUM → ⊕ of
/// plus_times, MIN/MAX → tropical ⊕s, COUNT → the lifted ring). Replicates
/// relational::HashAggregate byte-for-byte, including SQL's null handling
/// (null group keys match each other, null inputs are skipped, empty SUM/
/// MIN/MAX → NULL, a global aggregate over no rows yields one row) and its
/// partition-by-hash parallel contract.
Result<TablePtr> LowerAggregate(const TablePtr& input, const AggregateOp& spec);

/// C = A·B over plus_times as Join⊕: Join on A's column key ⊗-multiplies
/// matching entries (probe order = A row-major, matches in B row order) and
/// Reduce over (i,j) ⊕-sums them in k-ascending order — term-for-term the
/// fold of Gustavson's workspace scatter, so results are bit-identical to
/// SparseMatrixCSR::SpGEMM. Exposed shape-free: triplets in, triplets out
/// (row-major, explicit zeros dropped as SpGEMM does).
Result<std::vector<linalg::Triplet>> SpGEMMViaJoin(
    const std::vector<linalg::Triplet>& a, const std::vector<linalg::Triplet>& b);

/// y = A·x as Join⊕ with a dense x covering *every* index (explicit zero
/// terms included), so each y[i] folds exactly the terms — in the same
/// k-ascending order — as the CSR dot-product loop. Rows with no entries
/// stay at the ring zero (0.0). Bit-identical to SparseMatrixCSR::SpMV.
Result<std::vector<double>> SpMVViaJoin(const std::vector<linalg::Triplet>& a,
                                        int64_t rows,
                                        const std::vector<double>& x);

}  // namespace algebra
}  // namespace nexus

#endif  // NEXUS_ALGEBRA_KERNELS_H_
