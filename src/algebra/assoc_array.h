// AssocArray: the associative-array value type of the semi-ring kernel
// layer (Lara's tables, D4M's associative arrays).
//
// An associative array is a finite map from composite keys to one scalar
// value. It is represented as a Table whose first `num_keys` columns are
// the key attributes and whose last column is the value — so it bridges
// both worlds for free: any Table with chosen key columns is an
// associative array (relational side), and a list of linalg::Triplet
// coordinates is an associative array with two int64 keys (sparse-tensor
// side). Entry *order* is preserved from construction: the kernels define
// their output order in terms of it (first-seen key order, probe order),
// which is what makes algebra-routed execution byte-identical to the
// engines it lowers.
//
// Invariants: keys are non-null (an associative array's keys are a set,
// not SQL groups), the value column is numeric (int64/float64), and keys
// need not be unique — Normalize(⊕) collapses duplicates on demand.
#ifndef NEXUS_ALGEBRA_ASSOC_ARRAY_H_
#define NEXUS_ALGEBRA_ASSOC_ARRAY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/sparse.h"
#include "types/table.h"

namespace nexus {
namespace algebra {

class AssocArray {
 public:
  AssocArray() = default;

  /// Views `key_cols` + `value_col` of a table as an associative array
  /// (projecting in that order). Keys may be any column type but must be
  /// non-null; the value must be numeric.
  static Result<AssocArray> FromTable(const TablePtr& table,
                                      const std::vector<std::string>& key_cols,
                                      const std::string& value_col);

  /// Wraps a table whose first `num_keys` columns are the keys and whose
  /// last column is the value (no projection; validates the invariants).
  static Result<AssocArray> Wrap(TablePtr table, int num_keys);

  /// Coordinate bridge: triplets (in the given order) become a 2-key array.
  static Result<AssocArray> FromTriplets(
      const std::vector<linalg::Triplet>& triplets, const std::string& row_key,
      const std::string& col_key, const std::string& value_name);

  /// Dense-vector bridge: entry k → x[k] for every k in [0, x.size()).
  static Result<AssocArray> FromDenseVector(const std::vector<double>& x,
                                            const std::string& key,
                                            const std::string& value_name);

  /// Back to coordinates. Requires exactly two int64 keys.
  Result<std::vector<linalg::Triplet>> ToTriplets() const;

  const TablePtr& table() const { return table_; }
  int num_keys() const { return num_keys_; }
  int64_t num_entries() const { return table_ == nullptr ? 0 : table_->num_rows(); }

  const Column& key_column(int i) const { return table_->column(i); }
  const Column& value_column() const { return table_->column(num_keys_); }
  const std::string& key_name(int i) const {
    return table_->schema()->field(i).name;
  }
  const std::string& value_name() const {
    return table_->schema()->field(num_keys_).name;
  }
  DataType value_type() const { return value_column().type(); }

  /// Index of the named key, or -1.
  int FindKey(const std::string& name) const;

  /// Order-sensitive equality of the underlying tables.
  bool Equals(const AssocArray& other) const;

 private:
  TablePtr table_;
  int num_keys_ = 0;
};

}  // namespace algebra
}  // namespace nexus

#endif  // NEXUS_ALGEBRA_ASSOC_ARRAY_H_
