#include "algebra/semiring.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/str_util.h"

namespace nexus {
namespace algebra {

const char* MonoidOpName(MonoidOp op) {
  switch (op) {
    case MonoidOp::kAdd:
      return "+";
    case MonoidOp::kMul:
      return "*";
    case MonoidOp::kMin:
      return "min";
    case MonoidOp::kMax:
      return "max";
    case MonoidOp::kOr:
      return "or";
    case MonoidOp::kAnd:
      return "and";
  }
  return "?";
}

double ApplyF(MonoidOp op, double a, double b) {
  switch (op) {
    case MonoidOp::kAdd:
      return a + b;
    case MonoidOp::kMul:
      return a * b;
    case MonoidOp::kMin:
      return std::min(a, b);
    case MonoidOp::kMax:
      return std::max(a, b);
    case MonoidOp::kOr:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case MonoidOp::kAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

int64_t ApplyI(MonoidOp op, int64_t a, int64_t b) {
  switch (op) {
    case MonoidOp::kAdd:
      return a + b;
    case MonoidOp::kMul:
      return a * b;
    case MonoidOp::kMin:
      return std::min(a, b);
    case MonoidOp::kMax:
      return std::max(a, b);
    case MonoidOp::kOr:
      return (a != 0 || b != 0) ? 1 : 0;
    case MonoidOp::kAnd:
      return (a != 0 && b != 0) ? 1 : 0;
  }
  return 0;
}

const std::vector<Semiring>& SemiringRegistry() {
  static const std::vector<Semiring> rings = [] {
    const double inf = std::numeric_limits<double>::infinity();
    const int64_t imax = std::numeric_limits<int64_t>::max();
    std::vector<Semiring> r;
    // Ordinary arithmetic: SUM aggregates, SpMV/SpGEMM contraction, the
    // PageRank propagation step.
    r.push_back(Semiring{"plus_times", MonoidOp::kAdd, MonoidOp::kMul,
                         /*zero_f=*/0.0, /*one_f=*/1.0,
                         /*zero_i=*/0, /*one_i=*/1, /*lift=*/false});
    // Tropical: shortest paths and BFS relaxation (level ⊗ edge = level+1).
    r.push_back(Semiring{"min_plus", MonoidOp::kMin, MonoidOp::kAdd,
                         /*zero_f=*/inf, /*one_f=*/0.0,
                         /*zero_i=*/imax, /*one_i=*/0, /*lift=*/false});
    // Most-reliable path over non-negative weights: 0 is both the
    // ⊕-identity (max(0, x) = x for x >= 0) and the ⊗-annihilator.
    r.push_back(Semiring{"max_times", MonoidOp::kMax, MonoidOp::kMul,
                         /*zero_f=*/0.0, /*one_f=*/1.0,
                         /*zero_i=*/0, /*one_i=*/1, /*lift=*/false});
    // Boolean reachability / existence.
    r.push_back(Semiring{"or_and", MonoidOp::kOr, MonoidOp::kAnd,
                         /*zero_f=*/0.0, /*one_f=*/1.0,
                         /*zero_i=*/0, /*one_i=*/1, /*lift=*/false});
    // COUNT: lift every stored value to 1, then ordinary (+,×) — Union⊕
    // counts entries, Join⊗ counts matching pairs.
    r.push_back(Semiring{"count", MonoidOp::kAdd, MonoidOp::kMul,
                         /*zero_f=*/0.0, /*one_f=*/1.0,
                         /*zero_i=*/0, /*one_i=*/1, /*lift=*/true});
    return r;
  }();
  return rings;
}

const Semiring* FindSemiring(const std::string& name) {
  for (const Semiring& s : SemiringRegistry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {

// Domain samples the laws must hold on exactly. Boolean rings only make
// sense over {0, 1}; min_plus needs its infinite zero in the mix; the
// others use small non-negative integers where float arithmetic is exact
// (max_times distributes only on the non-negative domain).
std::vector<double> SampleDomain(const Semiring& s) {
  if (s.plus == MonoidOp::kOr || s.plus == MonoidOp::kAnd) return {0.0, 1.0};
  return {s.zero_f, s.one_f, 2.0, 3.0, 5.0};
}

}  // namespace

Status VerifyContracts(const Semiring& s) {
  const std::vector<double> dom = SampleDomain(s);
  auto plus = [&](double a, double b) { return ApplyF(s.plus, a, b); };
  auto times = [&](double a, double b) { return ApplyF(s.times, a, b); };
  auto fail = [&](const char* law, double a, double b, double c) {
    return Status::InvalidArgument(StrCat("semiring '", s.name, "' violates ",
                                          law, " at (", a, ", ", b, ", ", c,
                                          ")"));
  };
  for (double a : dom) {
    if (plus(s.zero_f, a) != a || plus(a, s.zero_f) != a) {
      return fail("plus-identity", a, s.zero_f, 0);
    }
    if (times(s.one_f, a) != a || times(a, s.one_f) != a) {
      return fail("times-identity", a, s.one_f, 0);
    }
    if (times(s.zero_f, a) != s.zero_f || times(a, s.zero_f) != s.zero_f) {
      return fail("zero-annihilation", a, s.zero_f, 0);
    }
    for (double b : dom) {
      if (plus(a, b) != plus(b, a)) return fail("plus-commutativity", a, b, 0);
      for (double c : dom) {
        if (plus(plus(a, b), c) != plus(a, plus(b, c))) {
          return fail("plus-associativity", a, b, c);
        }
        if (times(times(a, b), c) != times(a, times(b, c))) {
          return fail("times-associativity", a, b, c);
        }
        if (times(a, plus(b, c)) != plus(times(a, b), times(a, c))) {
          return fail("left-distributivity", a, b, c);
        }
        if (times(plus(a, b), c) != plus(times(a, c), times(b, c))) {
          return fail("right-distributivity", a, b, c);
        }
      }
    }
  }
  // The int64 domain mirrors the float checks on the finite samples.
  std::vector<int64_t> idom;
  for (double d : dom) {
    if (d == s.zero_f) {
      idom.push_back(s.zero_i);
    } else {
      idom.push_back(static_cast<int64_t>(d));
    }
  }
  auto iplus = [&](int64_t a, int64_t b) { return ApplyI(s.plus, a, b); };
  auto itimes = [&](int64_t a, int64_t b) { return ApplyI(s.times, a, b); };
  for (int64_t a : idom) {
    if (iplus(s.zero_i, a) != a) return fail("int plus-identity", double(a), 0, 0);
    if (itimes(s.one_i, a) != a || itimes(a, s.one_i) != a) {
      return fail("int times-identity", double(a), 0, 0);
    }
    for (int64_t b : idom) {
      // min_plus: skip ⊗ on the sentinel zero — +inf has no int64 analogue
      // beyond INT64_MAX, whose annihilation would overflow a + b.
      if (s.times == MonoidOp::kAdd &&
          (a == s.zero_i || b == s.zero_i) && s.zero_i != 0) {
        continue;
      }
      if (iplus(a, b) != iplus(b, a)) {
        return fail("int plus-commutativity", double(a), double(b), 0);
      }
      if (itimes(a, b) != itimes(b, a) && s.times != MonoidOp::kAdd) {
        // All registered ⊗ are commutative; cheap extra invariant.
        return fail("int times-commutativity", double(a), double(b), 0);
      }
    }
  }
  return Status::OK();
}

namespace {

// -1 = no override; 0/1 = forced off/on (mirrors core/wire_format.cc).
std::atomic<int> g_semiring_override{-1};

bool EnvSemiringEnabled() {
  static const bool from_env = [] {
    const char* env = std::getenv("NEXUS_SEMIRING");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
      return false;
    }
    return true;
  }();
  return from_env;
}

}  // namespace

bool SemiringLoweringEnabled() {
  int o = g_semiring_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return EnvSemiringEnabled();
}

void SetSemiringLoweringOverride(bool on) {
  g_semiring_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void ClearSemiringLoweringOverride() {
  g_semiring_override.store(-1, std::memory_order_relaxed);
}

}  // namespace algebra
}  // namespace nexus
