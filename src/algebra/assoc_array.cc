#include "algebra/assoc_array.h"

#include <utility>

#include "common/str_util.h"
#include "types/schema.h"

namespace nexus {
namespace algebra {

namespace {

Status ValidateValueColumn(const Column& c, const std::string& name) {
  if (c.type() != DataType::kInt64 && c.type() != DataType::kFloat64) {
    return Status::TypeError(
        StrCat("associative-array value '", name, "' must be numeric"));
  }
  if (c.has_nulls()) {
    return Status::InvalidArgument(
        StrCat("associative-array value '", name, "' may not be null"));
  }
  return Status::OK();
}

}  // namespace

Result<AssocArray> AssocArray::FromTable(
    const TablePtr& table, const std::vector<std::string>& key_cols,
    const std::string& value_col) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (key_cols.empty()) {
    return Status::InvalidArgument("associative array needs >= 1 key column");
  }
  std::vector<Field> fields;
  std::vector<Column> cols;
  for (const std::string& k : key_cols) {
    NEXUS_ASSIGN_OR_RETURN(int i, table->schema()->FindFieldOrError(k));
    if (table->column(i).has_nulls()) {
      return Status::InvalidArgument(
          StrCat("associative-array key '", k, "' may not be null"));
    }
    fields.push_back(table->schema()->field(i));
    cols.push_back(table->column(i));
  }
  NEXUS_ASSIGN_OR_RETURN(int vi, table->schema()->FindFieldOrError(value_col));
  NEXUS_RETURN_NOT_OK(ValidateValueColumn(table->column(vi), value_col));
  fields.push_back(table->schema()->field(vi));
  cols.push_back(table->column(vi));
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  NEXUS_ASSIGN_OR_RETURN(TablePtr t, Table::Make(schema, std::move(cols)));
  AssocArray a;
  a.table_ = std::move(t);
  a.num_keys_ = static_cast<int>(key_cols.size());
  return a;
}

Result<AssocArray> AssocArray::Wrap(TablePtr table, int num_keys) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (num_keys < 1 || num_keys != table->num_columns() - 1) {
    return Status::InvalidArgument(
        StrCat("bad key count ", num_keys, " for ", table->num_columns(),
               "-column associative array"));
  }
  for (int i = 0; i < num_keys; ++i) {
    if (table->column(i).has_nulls()) {
      return Status::InvalidArgument(
          StrCat("associative-array key '", table->schema()->field(i).name,
                 "' may not be null"));
    }
  }
  NEXUS_RETURN_NOT_OK(ValidateValueColumn(
      table->column(num_keys), table->schema()->field(num_keys).name));
  AssocArray a;
  a.table_ = std::move(table);
  a.num_keys_ = num_keys;
  return a;
}

Result<AssocArray> AssocArray::FromTriplets(
    const std::vector<linalg::Triplet>& triplets, const std::string& row_key,
    const std::string& col_key, const std::string& value_name) {
  std::vector<int64_t> rows, cols;
  std::vector<double> vals;
  rows.reserve(triplets.size());
  cols.reserve(triplets.size());
  vals.reserve(triplets.size());
  for (const linalg::Triplet& t : triplets) {
    rows.push_back(t.row);
    cols.push_back(t.col);
    vals.push_back(t.value);
  }
  NEXUS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make({Field::Attr(row_key, DataType::kInt64),
                    Field::Attr(col_key, DataType::kInt64),
                    Field::Attr(value_name, DataType::kFloat64)}));
  NEXUS_ASSIGN_OR_RETURN(
      TablePtr t, Table::Make(schema, {Column::FromInt64(std::move(rows)),
                                       Column::FromInt64(std::move(cols)),
                                       Column::FromFloat64(std::move(vals))}));
  AssocArray a;
  a.table_ = std::move(t);
  a.num_keys_ = 2;
  return a;
}

Result<AssocArray> AssocArray::FromDenseVector(const std::vector<double>& x,
                                               const std::string& key,
                                               const std::string& value_name) {
  std::vector<int64_t> keys(x.size());
  for (size_t i = 0; i < x.size(); ++i) keys[i] = static_cast<int64_t>(i);
  NEXUS_ASSIGN_OR_RETURN(
      SchemaPtr schema, Schema::Make({Field::Attr(key, DataType::kInt64),
                                      Field::Attr(value_name, DataType::kFloat64)}));
  NEXUS_ASSIGN_OR_RETURN(
      TablePtr t, Table::Make(schema, {Column::FromInt64(std::move(keys)),
                                       Column::FromFloat64(x)}));
  AssocArray a;
  a.table_ = std::move(t);
  a.num_keys_ = 1;
  return a;
}

Result<std::vector<linalg::Triplet>> AssocArray::ToTriplets() const {
  if (num_keys_ != 2) {
    return Status::InvalidArgument("ToTriplets requires exactly 2 keys");
  }
  if (key_column(0).type() != DataType::kInt64 ||
      key_column(1).type() != DataType::kInt64) {
    return Status::TypeError("ToTriplets requires int64 keys");
  }
  const auto& r = key_column(0).ints();
  const auto& c = key_column(1).ints();
  const Column& v = value_column();
  std::vector<linalg::Triplet> out;
  out.reserve(static_cast<size_t>(num_entries()));
  for (int64_t i = 0; i < num_entries(); ++i) {
    double val = v.type() == DataType::kInt64
                     ? static_cast<double>(v.ints()[static_cast<size_t>(i)])
                     : v.doubles()[static_cast<size_t>(i)];
    out.push_back(linalg::Triplet{r[static_cast<size_t>(i)],
                                  c[static_cast<size_t>(i)], val});
  }
  return out;
}

int AssocArray::FindKey(const std::string& name) const {
  for (int i = 0; i < num_keys_; ++i) {
    if (key_name(i) == name) return i;
  }
  return -1;
}

bool AssocArray::Equals(const AssocArray& other) const {
  if (num_keys_ != other.num_keys_) return false;
  if (table_ == nullptr || other.table_ == nullptr) {
    return table_ == other.table_;
  }
  return table_->Equals(*other.table_);
}

}  // namespace algebra
}  // namespace nexus
