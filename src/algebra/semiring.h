// Semi-ring registry — the algebraic heart of the Lara/D4M lowering layer.
//
// A semi-ring (⊕, ⊗, 0, 1) parameterizes the three generic kernels in
// algebra/kernels.h: Join combines matching values with ⊗, Union/Normalize
// fold duplicate keys with ⊕, and the identities give absent entries their
// meaning (0 is "not stored"; 1 is what a lifted COUNT entry becomes).
// One kernel implementation then serves relational aggregation (+ over
// groups), sparse matrix multiply (+,× contraction), shortest-path/BFS
// relaxation (min,+), reliability products (max,×), and boolean reachability
// (∨,∧) — the paper's Coverage desideratum reduced to a table of monoids.
//
// Rings are closed under the scalar domains the engines use (int64 and
// float64). (max,×) is registered over the non-negative domain, where 0 is
// simultaneously the ⊕-identity and the ⊗-annihilator; VerifyContracts
// checks every law on domain-appropriate samples.
#ifndef NEXUS_ALGEBRA_SEMIRING_H_
#define NEXUS_ALGEBRA_SEMIRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace nexus {
namespace algebra {

/// The six scalar monoid operations the registry composes rings from.
enum class MonoidOp : int { kAdd, kMul, kMin, kMax, kOr, kAnd };
const char* MonoidOpName(MonoidOp op);

/// Scalar application. kOr/kAnd treat nonzero as true and return 0/1.
double ApplyF(MonoidOp op, double a, double b);
int64_t ApplyI(MonoidOp op, int64_t a, int64_t b);

/// One registered semi-ring. `zero`/`one` are stored explicitly per scalar
/// domain rather than derived, because a ring may restrict its domain (see
/// max_times above).
struct Semiring {
  std::string name;
  MonoidOp plus = MonoidOp::kAdd;
  MonoidOp times = MonoidOp::kMul;
  double zero_f = 0.0;
  double one_f = 1.0;
  int64_t zero_i = 0;
  int64_t one_i = 1;
  /// COUNT-style lifted ring: every stored value is mapped to `one` before
  /// any ⊕/⊗ combination, so Union⊕ counts entries and Join⊗ counts pairs.
  bool lift = false;
};

/// The built-in rings: plus_times, min_plus, max_times, or_and, count.
const std::vector<Semiring>& SemiringRegistry();

/// Lookup by name; nullptr when unknown.
const Semiring* FindSemiring(const std::string& name);

/// Checks ⊕ associativity/commutativity/identity, ⊗ associativity/identity,
/// distributivity of ⊗ over ⊕, and 0-annihilation over deterministic
/// domain-appropriate samples in both scalar domains. Every registered ring
/// passes; user-composed rings can be validated before use.
Status VerifyContracts(const Semiring& s);

/// True when semi-ring lowering is enabled: the programmatic override if
/// set, else NEXUS_SEMIRING ("off"/"0" disables; default on). Gates the
/// engine-side routing (relational aggregates, sparse SpMV/SpGEMM, graph
/// BFS/PageRank steps) and the optimizer's lower_semiring pass — switchable
/// like NEXUS_FUSION, and byte-identical either way.
bool SemiringLoweringEnabled();
void SetSemiringLoweringOverride(bool on);
void ClearSemiringLoweringOverride();

}  // namespace algebra
}  // namespace nexus

#endif  // NEXUS_ALGEBRA_SEMIRING_H_
