// Chrome trace-event exporter: serializes recorded spans as the JSON
// format Perfetto / chrome://tracing load directly.
//
// Mapping: every distinct server becomes a trace *process* (with a
// process_name metadata event), the client tier is pid 1, and each
// recording thread is a lane within its process — so a federated query
// renders as slices flowing across server swim-lanes, stitched by the
// trace context that traveled inside the plan messages. Timestamps are
// wall-clock microseconds; each slice's args carry the simulated-clock
// interval, the span/parent ids, and all span counters (rows, bytes,
// retries, ...).
#ifndef NEXUS_TELEMETRY_TRACE_EXPORT_H_
#define NEXUS_TELEMETRY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace telemetry {

/// Renders `spans` (all of them when `trace` is 0, else that trace only)
/// as a Chrome trace-event JSON document.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans,
                              uint64_t trace = 0);

/// Writes ToChromeTraceJson to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanRecord>& spans,
                        uint64_t trace = 0);

}  // namespace telemetry
}  // namespace nexus

#endif  // NEXUS_TELEMETRY_TRACE_EXPORT_H_
