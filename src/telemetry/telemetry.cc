#include "telemetry/telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/parallel.h"
#include "common/str_util.h"

namespace nexus {
namespace telemetry {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// Span ids and trace ids come from monotonic counters so runs are
// reproducible; ClearSpans resets both.
std::atomic<uint64_t> g_next_span{1};
std::atomic<uint64_t> g_next_trace{1};

std::mutex g_mu;
std::vector<SpanRecord> g_spans;                 // finished spans
std::function<double()> g_sim_clock;             // guarded by g_mu
std::atomic<bool> g_has_sim_clock{false};        // fast-path gate

// Per-thread context: the trace and span new work attaches under, plus the
// server name spans on this thread inherit.
struct ThreadCtx {
  uint64_t trace = 0;
  SpanId span = 0;
  std::string server;
};
thread_local ThreadCtx t_ctx;

std::atomic<int> g_next_tid{1};
int ThisTid() {
  thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double SimNowSeconds() {
  if (!g_has_sim_clock.load(std::memory_order_acquire)) return 0.0;
  std::lock_guard<std::mutex> lock(g_mu);
  return g_sim_clock ? g_sim_clock() : 0.0;
}

void Record(SpanRecord&& rec) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_spans.push_back(std::move(rec));
}

// ---------------------------------------------------------------------------
// Parallel-pool hooks: one span per morsel, parented under the span that
// was current on the submitting thread. Installed only while enabled.
// ---------------------------------------------------------------------------

// Token passed from the submitting thread to workers.
struct RegionCtx {
  uint64_t trace = 0;
  SpanId parent = 0;
  std::string server;
};

// One in-flight morsel on an executing thread.
struct MorselFrame {
  SpanRecord rec;
  ThreadCtx saved;
};

uint64_t HookRegionBegin() {
  if (!Enabled()) return 0;
  auto* ctx = new RegionCtx;
  ctx->trace = t_ctx.trace != 0
                   ? t_ctx.trace
                   : g_next_trace.fetch_add(1, std::memory_order_relaxed);
  ctx->parent = t_ctx.span;
  ctx->server = t_ctx.server;
  return reinterpret_cast<uint64_t>(ctx);
}

void HookRegionEnd(uint64_t token) {
  delete reinterpret_cast<RegionCtx*>(token);
}

uint64_t HookMorselBegin(uint64_t token, int64_t index) {
  if (token == 0 || !Enabled()) return 0;
  const auto* ctx = reinterpret_cast<const RegionCtx*>(token);
  auto* frame = new MorselFrame;
  frame->saved = t_ctx;
  frame->rec.id = g_next_span.fetch_add(1, std::memory_order_relaxed);
  frame->rec.parent = ctx->parent;
  frame->rec.trace = ctx->trace;
  frame->rec.name = "morsel";
  frame->rec.category = kCategoryMorsel;
  frame->rec.server = ctx->server;
  frame->rec.tid = ThisTid();
  frame->rec.counters.emplace_back("index", index);
  frame->rec.wall_start_us = WallNowUs();
  frame->rec.sim_start_us = SimNowSeconds() * 1e6;
  t_ctx.trace = ctx->trace;
  t_ctx.span = frame->rec.id;
  t_ctx.server = ctx->server;
  return reinterpret_cast<uint64_t>(frame);
}

void HookMorselEnd(uint64_t handle) {
  if (handle == 0) return;
  auto* frame = reinterpret_cast<MorselFrame*>(handle);
  frame->rec.wall_dur_us = WallNowUs() - frame->rec.wall_start_us;
  frame->rec.sim_dur_us = SimNowSeconds() * 1e6 - frame->rec.sim_start_us;
  t_ctx = std::move(frame->saved);
  Record(std::move(frame->rec));
  delete frame;
}

constexpr ParallelHooks kHooks = {HookRegionBegin, HookRegionEnd,
                                  HookMorselBegin, HookMorselEnd};

constexpr char kWireHeaderTag[] = "%NEXUS-TRACE ";

}  // namespace

int64_t SpanRecord::CounterOr(const std::string& key, int64_t fallback) const {
  for (const auto& [k, v] : counters) {
    if (k == key) return v;
  }
  return fallback;
}

void SetEnabled(bool on) {
  bool was = internal::g_enabled.exchange(on, std::memory_order_relaxed);
  if (was == on) return;
  SetParallelHooks(on ? &kHooks : nullptr);
}

void ClearSpans() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_spans.clear();
  g_next_span.store(1, std::memory_order_relaxed);
  g_next_trace.store(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Spans() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_spans;
}

int64_t SpanCount() {
  std::lock_guard<std::mutex> lock(g_mu);
  return static_cast<int64_t>(g_spans.size());
}

void SetSimulatedClock(std::function<double()> seconds_fn) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_has_sim_clock.store(seconds_fn != nullptr, std::memory_order_release);
  g_sim_clock = std::move(seconds_fn);
}

ScopedSimClock::ScopedSimClock(std::function<double()> seconds_fn) {
  SetSimulatedClock(std::move(seconds_fn));
}

ScopedSimClock::~ScopedSimClock() { SetSimulatedClock(nullptr); }

TraceContext CurrentContext() {
  return TraceContext{t_ctx.trace, t_ctx.span, t_ctx.server};
}

uint64_t CurrentTrace() { return t_ctx.trace; }
SpanId CurrentSpan() { return t_ctx.span; }

ContextScope::ContextScope(const TraceContext& ctx) {
  if (ctx.trace == 0) return;
  active_ = true;
  saved_trace_ = t_ctx.trace;
  saved_span_ = t_ctx.span;
  saved_server_ = t_ctx.server;
  t_ctx.trace = ctx.trace;
  t_ctx.span = ctx.parent;
  t_ctx.server = ctx.server;
}

ContextScope::~ContextScope() {
  if (!active_) return;
  t_ctx.trace = saved_trace_;
  t_ctx.span = saved_span_;
  t_ctx.server = std::move(saved_server_);
}

SpanGuard::SpanGuard(const char* category, std::string name) {
  if (!Enabled()) return;
  Open(category, std::move(name), std::string(t_ctx.server));
}

SpanGuard::SpanGuard(const char* category, std::string name,
                     std::string server) {
  if (!Enabled()) return;
  Open(category, std::move(name), std::move(server));
}

void SpanGuard::Open(const char* category, std::string&& name,
                     std::string&& server) {
  active_ = true;
  rec_.trace = t_ctx.trace != 0
                   ? t_ctx.trace
                   : g_next_trace.fetch_add(1, std::memory_order_relaxed);
  rec_.parent = t_ctx.span;
  rec_.id = g_next_span.fetch_add(1, std::memory_order_relaxed);
  rec_.name = std::move(name);
  rec_.category = category;
  rec_.server = std::move(server);
  rec_.tid = ThisTid();
  rec_.wall_start_us = WallNowUs();
  rec_.sim_start_us = SimNowSeconds() * 1e6;
  saved_trace_ = t_ctx.trace;
  saved_span_ = t_ctx.span;
  t_ctx.trace = rec_.trace;
  t_ctx.span = rec_.id;
  // The server is NOT pushed into the thread context here: a coordinator
  // span labelled with a target server must not make sibling client-side
  // spans claim to have run there. ContextScope (the receiving side) is
  // what rebinds the thread's server.
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  rec_.wall_dur_us = WallNowUs() - rec_.wall_start_us;
  rec_.sim_dur_us = SimNowSeconds() * 1e6 - rec_.sim_start_us;
  t_ctx.trace = saved_trace_;
  t_ctx.span = saved_span_;
  Record(std::move(rec_));
}

void SpanGuard::AddCounter(const char* key, int64_t value) {
  if (!active_) return;
  rec_.counters.emplace_back(key, value);
}

void SpanGuard::SetServer(std::string server) {
  if (!active_) return;
  rec_.server = std::move(server);
}

void RecordComplete(const char* category, std::string name, std::string server,
                    double sim_start_s, double sim_dur_s,
                    std::vector<std::pair<std::string, int64_t>> counters) {
  if (!Enabled()) return;
  SpanRecord rec;
  rec.trace = t_ctx.trace != 0
                  ? t_ctx.trace
                  : g_next_trace.fetch_add(1, std::memory_order_relaxed);
  rec.parent = t_ctx.span;
  rec.id = g_next_span.fetch_add(1, std::memory_order_relaxed);
  rec.name = std::move(name);
  rec.category = category;
  rec.server = std::move(server);
  rec.tid = ThisTid();
  rec.wall_start_us = WallNowUs();
  rec.wall_dur_us = 0.0;
  rec.sim_start_us = sim_start_s * 1e6;
  rec.sim_dur_us = sim_dur_s * 1e6;
  rec.counters = std::move(counters);
  Record(std::move(rec));
}

std::string WireHeader(uint64_t trace, SpanId parent,
                       const std::string& server) {
  return StrCat(kWireHeaderTag, trace, " ", parent, " ", server, "\n");
}

size_t StripWireHeader(const std::string& wire, TraceContext* ctx) {
  const size_t tag_len = sizeof(kWireHeaderTag) - 1;
  if (wire.compare(0, tag_len, kWireHeaderTag) != 0) return 0;
  size_t eol = wire.find('\n', tag_len);
  if (eol == std::string::npos) return 0;
  unsigned long long trace = 0, parent = 0;
  char server[128] = {0};
  std::string line = wire.substr(tag_len, eol - tag_len);
  if (std::sscanf(line.c_str(), "%llu %llu %127s", &trace, &parent, server) < 2) {
    return 0;
  }
  ctx->trace = trace;
  ctx->parent = parent;
  ctx->server = server;
  return eol + 1;
}

double WallNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

}  // namespace telemetry
}  // namespace nexus
