// MetricsRegistry: process-wide named counters, gauges, and histograms.
//
// The federation's per-call `ExecutionMetrics` struct is a *view* over this
// registry: instruments are cumulative and monotonic (counters) or
// last-write (gauges), and callers that want per-operation numbers
// snapshot instrument values before the operation and report deltas after
// — exactly how Coordinator::Execute builds its ExecutionMetrics. The
// registry itself is always on: an atomic add is cheaper than the work it
// counts, and a metrics system that must be switched on before the
// incident is useless.
//
// Instruments are created lazily by name and never destroyed, so a
// `Counter*` obtained once may be cached and used lock-free forever.
#ifndef NEXUS_TELEMETRY_METRICS_H_
#define NEXUS_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nexus {
namespace telemetry {

/// Monotonic event count. Thread-safe.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Zeroes the counter (MetricsRegistry::ResetForTest only).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-observed value (thread budgets, level settings). Thread-safe.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution of non-negative values (bytes,
/// milliseconds): bucket i counts values in [2^(i-1), 2^i), bucket 0
/// counts values < 1. Thread-safe; Record is two relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(double value);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper edge of the bucket holding the p-quantile (0 < p <= 1), an upper
  /// bound on the true quantile. 0 when empty.
  double ApproxQuantile(double p) const;
  std::vector<int64_t> bucket_counts() const;
  /// Zeroes the histogram (MetricsRegistry::ResetForTest only).
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → instrument. One process-global instance (Global()); separate
/// instances exist only for tests.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Lazily creates on first use; returned pointers are stable forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Current value of every counter (a consistent-enough snapshot for
  /// delta accounting; individual reads are atomic).
  std::map<std::string, int64_t> CounterValues() const;

  /// Human-readable dump of every instrument, sorted by name.
  std::string ToString() const;

  /// Zeroes every instrument in place (pointers stay valid). Test helper;
  /// production code snapshots and deltas instead.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace nexus

#endif  // NEXUS_TELEMETRY_METRICS_H_
