// EXPLAIN ANALYZE: renders one query's span tree as an annotated plaintext
// plan — per fragment and per operator: output rows, bytes, wall and
// simulated milliseconds, morsel count, retries, and the server it ran on.
// The LaraDB idea applied to the federation: measure at the algebra-
// operator grain so the trace speaks the language of the plan.
#ifndef NEXUS_TELEMETRY_EXPLAIN_H_
#define NEXUS_TELEMETRY_EXPLAIN_H_

#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace nexus {
namespace telemetry {

/// Renders the span tree of `trace` (0 = the highest trace id present,
/// i.e. the most recent query). Morsel spans are not printed individually;
/// each parent line reports `morsels=N` instead. Returns "" when the trace
/// has no spans (e.g. tracing was disabled).
std::string ExplainAnalyze(const std::vector<SpanRecord>& spans,
                           uint64_t trace = 0);

}  // namespace telemetry
}  // namespace nexus

#endif  // NEXUS_TELEMETRY_EXPLAIN_H_
