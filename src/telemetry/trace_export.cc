#include "telemetry/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/str_util.h"

namespace nexus {
namespace telemetry {

namespace {

std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans,
                              uint64_t trace) {
  // Server → pid. The client tier ("" server) is pid 1.
  std::map<std::string, int> pids;
  pids[""] = 1;
  for (const SpanRecord& s : spans) {
    if (trace != 0 && s.trace != trace) continue;
    if (pids.emplace(s.server, 0).second) {
      // placeholder; numbered below in name order for determinism
    }
  }
  int next_pid = 1;
  for (auto& [server, pid] : pids) {
    if (server.empty()) continue;
    pid = ++next_pid;
  }

  std::vector<std::string> events;
  for (const auto& [server, pid] : pids) {
    events.push_back(
        StrCat("  {\"ph\": \"M\", \"pid\": ", pid,
               ", \"name\": \"process_name\", \"args\": {\"name\": \"",
               JsonEscaped(server.empty() ? "client" : server), "\"}}"));
  }
  for (const SpanRecord& s : spans) {
    if (trace != 0 && s.trace != trace) continue;
    std::string out =
        StrCat("  {\"ph\": \"X\", \"pid\": ", pids[s.server],
                  ", \"tid\": ", s.tid, ", \"ts\": ", JsonNumber(s.wall_start_us),
                  ", \"dur\": ", JsonNumber(s.wall_dur_us), ", \"name\": \"",
                  JsonEscaped(s.name), "\", \"cat\": \"", s.category,
                  "\", \"args\": {\"trace\": ", s.trace, ", \"span\": ", s.id,
                  ", \"parent\": ", s.parent,
                  ", \"sim_start_ms\": ", JsonNumber(s.sim_start_us / 1e3),
                  ", \"sim_dur_ms\": ", JsonNumber(s.sim_dur_us / 1e3));
    for (const auto& [key, value] : s.counters) {
      out += StrCat(", \"", JsonEscaped(key), "\": ", value);
    }
    out += "}}";
    events.push_back(std::move(out));
  }
  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    json += events[i];
    json += i + 1 < events.size() ? ",\n" : "\n";
  }
  json += "]}\n";
  return json;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanRecord>& spans, uint64_t trace) {
  std::string json = ToChromeTraceJson(spans, trace);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError(StrCat("short write to '", path, "'"));
  }
  return Status::OK();
}

}  // namespace telemetry
}  // namespace nexus
