#include "telemetry/metrics.h"

#include <cmath>

#include "common/str_util.h"

namespace nexus {
namespace telemetry {

namespace {

int BucketOf(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  int b = static_cast<int>(std::floor(std::log2(value))) + 1;
  return b >= Histogram::kBuckets ? Histogram::kBuckets - 1 : b;
}

}  // namespace

void Histogram::Record(double value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::ApproxQuantile(double p) const {
  int64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  int64_t rank = static_cast<int64_t>(std::ceil(p * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return i == 0 ? 1.0 : std::ldexp(1.0, i);  // bucket upper edge
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<size_t>(i)] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlives static dtors
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrCat(name, " = ", c->value(), "\n");
  }
  for (const auto& [name, g] : gauges_) {
    out += StrCat(name, " = ", FormatDouble(g->value(), 6), "\n");
  }
  for (const auto& [name, h] : histograms_) {
    out += StrCat(name, " = {count=", h->count(),
                  " mean=", FormatDouble(h->mean(), 3),
                  " p50<=", FormatDouble(h->ApproxQuantile(0.5), 3),
                  " p99<=", FormatDouble(h->ApproxQuantile(0.99), 3), "}\n");
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Set(0.0);
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace telemetry
}  // namespace nexus
