// Span-based distributed tracing for the federation and its engines.
//
// The paper's Intent Preservation and Server Interoperation desiderata are
// claims about *where* work ran and *which path* bytes took. Aggregate
// counters (ExecutionMetrics) can assert those claims; traces can show
// them. This tracer records one span per unit of attributable work —
// query, plan fragment, algebra operator, engine kernel, morsel, network
// message — with dual timestamps (wall clock and the transport's simulated
// clock) and a parent link, so a whole federated execution renders as one
// tree per query even when its spans were produced on different simulated
// servers (trace context travels inside federation messages; see
// WireHeader/StripWireHeader and Provider::ExecuteWire).
//
// Cost contract: tracing is off by default and every hook is gated on one
// relaxed atomic load (`Enabled()`), so instrumented code paths are
// near-zero cost when disabled and — critically — *behaviorally identical*:
// no clock reads, no allocation, no extra wire bytes. Seeded chaos and
// determinism traces are byte-for-byte unchanged with tracing off.
//
// Span ids are allocated from a monotonic counter (never randomized), so a
// single-threaded run is fully deterministic and a multi-threaded run is
// deterministic up to worker interleaving.
#ifndef NEXUS_TELEMETRY_TELEMETRY_H_
#define NEXUS_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace nexus {
namespace telemetry {

using SpanId = uint64_t;

/// Span categories (stable strings; the exporters group by them).
inline constexpr const char kCategoryCoordinator[] = "coordinator";
inline constexpr const char kCategoryServer[] = "server";
inline constexpr const char kCategoryOperator[] = "operator";
inline constexpr const char kCategoryEngine[] = "engine";
inline constexpr const char kCategoryMorsel[] = "morsel";
inline constexpr const char kCategoryTransport[] = "transport";
inline constexpr const char kCategoryService[] = "service";

/// One finished span. `sim_*` fields are stamped from the simulated clock
/// when one is installed (SetSimulatedClock), else 0.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;   // 0 = root of its trace
  uint64_t trace = 0;  // one trace per query
  std::string name;
  const char* category = "";
  std::string server;  // endpoint the work ran on; "" = client tier
  int tid = 0;         // recording thread (export lane)
  double wall_start_us = 0.0;
  double wall_dur_us = 0.0;
  double sim_start_us = 0.0;
  double sim_dur_us = 0.0;
  /// Small named integers (rows, bytes, retries, ...), in insertion order.
  std::vector<std::pair<std::string, int64_t>> counters;

  /// Value of `key`, or `fallback` when absent.
  int64_t CounterOr(const std::string& key, int64_t fallback) const;
};

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Master switch. Off by default; flipping it on installs the parallel-pool
/// hooks (per-morsel spans) and flipping it off removes them.
void SetEnabled(bool on);
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Drops all recorded spans and resets the span/trace id counters, so the
/// next query traces identically to a fresh process.
void ClearSpans();

/// Copy of every finished span, in completion order.
std::vector<SpanRecord> Spans();
int64_t SpanCount();

/// Installs the simulated-clock source (seconds), typically the federation
/// transport's clock; pass nullptr to uninstall. Only consulted while
/// tracing is enabled.
void SetSimulatedClock(std::function<double()> seconds_fn);

/// RAII install/uninstall of the simulated clock around an execution.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(std::function<double()> seconds_fn);
  ~ScopedSimClock();
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;
};

/// Trace context: what must travel with a federation message for the
/// receiver's spans to stitch under the sender's.
struct TraceContext {
  uint64_t trace = 0;
  SpanId parent = 0;
  std::string server;  // receiving endpoint's name, assigned by the sender
};

/// The calling thread's current context (for manual propagation).
TraceContext CurrentContext();
uint64_t CurrentTrace();
SpanId CurrentSpan();

/// Adopts a propagated context on this thread for the scope's lifetime —
/// the receiving half of cross-server stitching.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  bool active_ = false;
  uint64_t saved_trace_ = 0;
  SpanId saved_span_ = 0;
  std::string saved_server_;
};

/// RAII span. Construction opens the span as a child of the thread's
/// current span (allocating a fresh trace when there is none); destruction
/// records it. When tracing is disabled the guard is inert: no ids, no
/// clock reads, no record.
class SpanGuard {
 public:
  SpanGuard(const char* category, std::string name);
  SpanGuard(const char* category, std::string name, std::string server);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool active() const { return active_; }
  SpanId id() const { return rec_.id; }
  uint64_t trace() const { return rec_.trace; }

  /// Attaches a named integer (rows, bytes, ...). No-op when inactive.
  void AddCounter(const char* key, int64_t value);
  void SetServer(std::string server);

 private:
  void Open(const char* category, std::string&& name, std::string&& server);

  bool active_ = false;
  SpanRecord rec_;
  uint64_t saved_trace_ = 0;
  SpanId saved_span_ = 0;
};

/// Records an already-finished span (used by the transport, whose message
/// durations are known only in simulated time). Parented under the calling
/// thread's current span. No-op when tracing is disabled.
void RecordComplete(const char* category, std::string name, std::string server,
                    double sim_start_s, double sim_dur_s,
                    std::vector<std::pair<std::string, int64_t>> counters);

// ---------------------------------------------------------------------------
// In-band wire propagation.
// ---------------------------------------------------------------------------

/// Serializes a trace context as a one-line header prepended to a shipped
/// plan: "%NEXUS-TRACE <trace> <parent> <server>\n". The header costs wire
/// bytes — propagating context over a real network would too — so enabling
/// tracing changes metered byte counts; disabling it restores them exactly.
std::string WireHeader(uint64_t trace, SpanId parent, const std::string& server);

/// If `wire` begins with a trace header, parses it into *ctx and returns
/// the offset of the payload behind it; returns 0 when no header (ctx
/// untouched). Always recognized, even with tracing disabled, so a wire
/// built under tracing still parses after it is switched off.
size_t StripWireHeader(const std::string& wire, TraceContext* ctx);

/// Microseconds since the tracer epoch (first use), wall clock.
double WallNowUs();

}  // namespace telemetry
}  // namespace nexus

#endif  // NEXUS_TELEMETRY_TELEMETRY_H_
