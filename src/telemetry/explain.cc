#include "telemetry/explain.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/str_util.h"

namespace nexus {
namespace telemetry {

namespace {

bool IsMorsel(const SpanRecord& s) {
  return std::strcmp(s.category, kCategoryMorsel) == 0;
}

std::string FormatMs(double us) { return FormatDouble(us / 1e3, 3); }

struct Node {
  const SpanRecord* span = nullptr;
  std::vector<size_t> children;  // indices into the node pool
  int64_t morsels = 0;           // collapsed morsel children
};

void Render(const std::vector<Node>& nodes, size_t at, const std::string& prefix,
            bool last, bool root, std::string* out) {
  const Node& node = nodes[at];
  const SpanRecord& s = *node.span;
  if (!root) {
    *out += prefix;
    *out += last ? "`- " : "|- ";
  }
  *out += s.name;
  if (!s.server.empty()) *out += StrCat(" @", s.server);
  int64_t rows = s.CounterOr("rows", -1);
  if (rows >= 0) *out += StrCat("  rows=", rows);
  int64_t est = s.CounterOr("est_rows", -1);
  if (est >= 0) {
    *out += StrCat("  est=", est);
    if (rows >= 0) {
      // q-error: max ratio between estimate and actual, 1.0 = exact. The
      // max(1, .) guards keep empty fragments finite.
      double hi = static_cast<double>(std::max<int64_t>(est, 1));
      double lo = static_cast<double>(std::max<int64_t>(rows, 1));
      if (hi < lo) std::swap(hi, lo);
      *out += StrCat("  q-err=", FormatDouble(hi / lo, 2));
    }
  }
  int64_t bytes = s.CounterOr("bytes", -1);
  if (bytes >= 0) *out += StrCat("  bytes=", bytes);
  *out += StrCat("  wall=", FormatMs(s.wall_dur_us), "ms");
  if (s.sim_dur_us > 0.0) *out += StrCat("  sim=", FormatMs(s.sim_dur_us), "ms");
  if (node.morsels > 0) *out += StrCat("  morsels=", node.morsels);
  int64_t retries = s.CounterOr("retries", 0);
  if (retries > 0) *out += StrCat("  retries=", retries);
  for (const auto& [key, value] : s.counters) {
    if (key == "rows" || key == "bytes" || key == "retries" || key == "index" ||
        key == "est_rows") {
      continue;
    }
    *out += StrCat("  ", key, "=", value);
  }
  *out += "\n";
  std::string child_prefix = root ? "" : StrCat(prefix, last ? "   " : "|  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    Render(nodes, node.children[i], child_prefix,
           i + 1 == node.children.size(), false, out);
  }
}

}  // namespace

std::string ExplainAnalyze(const std::vector<SpanRecord>& spans,
                           uint64_t trace) {
  if (trace == 0) {
    for (const SpanRecord& s : spans) trace = std::max(trace, s.trace);
  }
  if (trace == 0) return "";

  // Build the node pool in span-id order so sibling order is creation
  // order (deterministic under sequential dispatch).
  std::vector<Node> nodes;
  std::map<SpanId, size_t> by_id;
  std::vector<const SpanRecord*> in_trace;
  for (const SpanRecord& s : spans) {
    if (s.trace == trace) in_trace.push_back(&s);
  }
  std::sort(in_trace.begin(), in_trace.end(),
            [](const SpanRecord* a, const SpanRecord* b) { return a->id < b->id; });
  for (const SpanRecord* s : in_trace) {
    if (IsMorsel(*s)) continue;
    by_id[s->id] = nodes.size();
    nodes.push_back(Node{s, {}, 0});
  }
  std::vector<size_t> roots;
  for (const SpanRecord* s : in_trace) {
    if (IsMorsel(*s)) {
      auto it = by_id.find(s->parent);
      if (it != by_id.end()) ++nodes[it->second].morsels;
      continue;
    }
    auto it = by_id.find(s->parent);
    if (it != by_id.end()) {
      nodes[it->second].children.push_back(by_id[s->id]);
    } else {
      roots.push_back(by_id[s->id]);
    }
  }

  std::string out;
  for (size_t i = 0; i < roots.size(); ++i) {
    Render(nodes, roots[i], "", i + 1 == roots.size(), true, &out);
  }
  return out;
}

}  // namespace telemetry
}  // namespace nexus
