#include "arraydb/engine.h"

#include <algorithm>
#include <map>

#include "common/parallel.h"
#include "common/str_util.h"
#include "core/schema_inference.h"
#include "expr/eval.h"
#include "exec/spill/chunk_pager.h"
#include "telemetry/telemetry.h"

namespace nexus {
namespace arraydb {

namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

Result<int> DimIndexOrError(const NDArray& in, const std::string& name) {
  int i = in.DimIndex(name);
  if (i < 0) {
    return Status::NotFound(StrCat("array has no dimension '", name, "'"));
  }
  return i;
}

/// Materializes the occupied cells of one chunk as a columnar table whose
/// schema is the array's combined schema (dims first, then attributes).
/// `offsets` receives the chunk-local offset of each emitted row.
Result<TablePtr> ChunkTable(const NDArray& in, const ArrayChunk& chunk,
                            std::vector<int64_t>* offsets) {
  offsets->clear();
  int64_t volume = chunk.Volume();
  for (int64_t off = 0; off < volume; ++off) {
    if (chunk.occupied[static_cast<size_t>(off)]) offsets->push_back(off);
  }
  // Dimension columns.
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(in.num_dims()) + chunk.attrs.size());
  for (int d = 0; d < in.num_dims(); ++d) {
    std::vector<int64_t> coords_col;
    coords_col.reserve(offsets->size());
    for (int64_t off : *offsets) {
      coords_col.push_back(chunk.lo[static_cast<size_t>(d)] +
                           chunk.LocalCoords(off)[static_cast<size_t>(d)]);
    }
    cols.push_back(Column::FromInt64(std::move(coords_col)));
  }
  for (const Column& attr : chunk.attrs) {
    cols.push_back(attr.Take(*offsets));
  }
  return Table::Make(in.CombinedSchema(), std::move(cols));
}

/// Creates an empty chunk matching `like`'s geometry for `schema`.
ArrayChunk EmptyChunkLike(const ArrayChunk& like, const Schema& attr_schema) {
  ArrayChunk out;
  out.grid = like.grid;
  out.lo = like.lo;
  out.extent = like.extent;
  int64_t volume = like.Volume();
  out.attrs.reserve(static_cast<size_t>(attr_schema.num_fields()));
  for (const Field& f : attr_schema.fields()) {
    out.attrs.push_back(Column::Filled(f.type, volume));
  }
  out.occupied.assign(static_cast<size_t>(volume), 0);
  return out;
}

// Numeric accumulator for regrid/window (non-numeric attrs are dropped by
// those operators, so numeric-only is sufficient).
struct NumAcc {
  int64_t count = 0;
  int64_t isum = 0;
  double fsum = 0.0;
  int64_t imin = 0, imax = 0;
  double fmin = 0.0, fmax = 0.0;

  void Add(double f, int64_t i) {
    if (count == 0) {
      imin = imax = i;
      fmin = fmax = f;
    } else {
      imin = std::min(imin, i);
      imax = std::max(imax, i);
      fmin = std::min(fmin, f);
      fmax = std::max(fmax, f);
    }
    ++count;
    isum += i;
    fsum += f;
  }

  Value Finish(AggFunc func, DataType in_type) const {
    bool is_int = in_type == DataType::kInt64;
    switch (func) {
      case AggFunc::kCount:
        return Value::Int64(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return is_int ? Value::Int64(isum) : Value::Float64(fsum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Float64(fsum / static_cast<double>(count));
      case AggFunc::kMin:
        if (count == 0) return Value::Null();
        return is_int ? Value::Int64(imin) : Value::Float64(fmin);
      case AggFunc::kMax:
        if (count == 0) return Value::Null();
        return is_int ? Value::Int64(imax) : Value::Float64(fmax);
    }
    return Value::Null();
  }
};

/// Hands a freshly built result to the spill policy: when out-of-core
/// execution is on and the array exceeds the query's budget, the tail
/// chunks park in the scratch store (SpillChunkPager) and fault back in
/// lazily, so a big-op result counts against the budget only for its
/// resident prefix.
Result<NDArrayPtr> Finish(std::shared_ptr<NDArray> out) {
  NEXUS_RETURN_NOT_OK(spill::ShedArray(out, "array").status());
  return NDArrayPtr(std::move(out));
}

}  // namespace

Result<NDArrayPtr> Slice(const NDArray& in, const std::vector<DimRange>& ranges) {
  // Clip the box against the array bounds.
  std::vector<int64_t> lo(static_cast<size_t>(in.num_dims()));
  std::vector<int64_t> hi(static_cast<size_t>(in.num_dims()));
  for (int d = 0; d < in.num_dims(); ++d) {
    lo[static_cast<size_t>(d)] = in.dim(d).start;
    hi[static_cast<size_t>(d)] = in.dim(d).end();
  }
  for (const DimRange& r : ranges) {
    NEXUS_ASSIGN_OR_RETURN(int d, DimIndexOrError(in, r.dim));
    lo[static_cast<size_t>(d)] = std::max(lo[static_cast<size_t>(d)], r.lo);
    hi[static_cast<size_t>(d)] = std::min(hi[static_cast<size_t>(d)], r.hi);
  }
  std::vector<DimensionSpec> dims;
  bool empty = false;
  for (int d = 0; d < in.num_dims(); ++d) {
    DimensionSpec spec = in.dim(d);
    spec.start = lo[static_cast<size_t>(d)];
    spec.length = hi[static_cast<size_t>(d)] - lo[static_cast<size_t>(d)];
    if (spec.length <= 0) {
      spec.start = in.dim(d).start;
      spec.length = 1;  // keep a valid (but unoccupied) geometry
      empty = true;
    }
    dims.push_back(spec);
  }
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(std::move(dims), in.attr_schema()));
  if (empty) return Finish(std::move(out));
  for (const ArrayChunk* chunk : in.chunks()) {
    // Chunk pruning: skip chunks whose box misses the slice box entirely.
    bool overlaps = true;
    for (int d = 0; d < in.num_dims(); ++d) {
      int64_t c_lo = chunk->lo[static_cast<size_t>(d)];
      int64_t c_hi = c_lo + chunk->extent[static_cast<size_t>(d)];
      if (c_hi <= lo[static_cast<size_t>(d)] || c_lo >= hi[static_cast<size_t>(d)]) {
        overlaps = false;
        break;
      }
    }
    if (!overlaps) continue;
    int64_t volume = chunk->Volume();
    std::vector<Value> attrs(chunk->attrs.size());
    for (int64_t off = 0; off < volume; ++off) {
      if (!chunk->occupied[static_cast<size_t>(off)]) continue;
      std::vector<int64_t> local = chunk->LocalCoords(off);
      std::vector<int64_t> coords(local.size());
      bool inside = true;
      for (size_t d = 0; d < local.size(); ++d) {
        coords[d] = chunk->lo[d] + local[d];
        if (coords[d] < lo[d] || coords[d] >= hi[d]) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      for (size_t a = 0; a < attrs.size(); ++a) {
        attrs[a] = chunk->attrs[a].GetValue(off);
      }
      NEXUS_RETURN_NOT_OK(out->Set(coords, attrs));
    }
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> Shift(
    const NDArray& in,
    const std::vector<std::pair<std::string, int64_t>>& offsets) {
  std::vector<DimensionSpec> dims = in.dims();
  for (const auto& [name, delta] : offsets) {
    NEXUS_ASSIGN_OR_RETURN(int d, DimIndexOrError(in, name));
    dims[static_cast<size_t>(d)].start += delta;
  }
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(std::move(dims), in.attr_schema()));
  // Metadata-only: the chunk grid is unchanged, only each chunk's global
  // low coordinate moves.
  for (const ArrayChunk* chunk : in.chunks()) {
    ArrayChunk moved = *chunk;
    for (int d = 0; d < out->num_dims(); ++d) {
      moved.lo[static_cast<size_t>(d)] =
          out->dim(d).start +
          moved.grid[static_cast<size_t>(d)] * out->dim(d).chunk_size;
    }
    NEXUS_RETURN_NOT_OK(out->PutChunk(std::move(moved)));
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> Apply(const NDArray& in,
                         const std::vector<std::pair<std::string, ExprPtr>>& defs) {
  // Extended attribute schema (types inferred against the combined schema).
  SchemaPtr combined = in.CombinedSchema();
  std::vector<Field> attr_fields = in.attr_schema()->fields();
  std::vector<Field> working_fields = combined->fields();
  for (const auto& [name, expr] : defs) {
    Schema working(working_fields);
    if (working.FindField(name) >= 0) {
      return Status::InvalidArgument(StrCat("apply output '", name,
                                            "' already exists"));
    }
    NEXUS_ASSIGN_OR_RETURN(DataType t, InferExprType(*expr, working));
    attr_fields.push_back(Field::Attr(name, t));
    working_fields.push_back(Field::Attr(name, t));
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr out_attrs, Schema::Make(attr_fields));
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(in.dims(), out_attrs));
  // A chunk is the natural morsel: every chunk's result lands in its own
  // pre-assigned slot, and PutChunk runs sequentially afterwards in the
  // deterministic grid order of in.chunks().
  std::vector<const ArrayChunk*> chunks = in.chunks();
  std::vector<ArrayChunk> results(chunks.size());
  std::vector<Status> statuses(chunks.size(), Status::OK());
  ParallelFor(static_cast<int64_t>(chunks.size()), 1, [&](int64_t cb, int64_t ce) {
    for (int64_t ci = cb; ci < ce; ++ci) {
      statuses[static_cast<size_t>(ci)] = [&]() -> Status {
        const ArrayChunk* chunk = chunks[static_cast<size_t>(ci)];
        std::vector<int64_t> offsets;
        NEXUS_ASSIGN_OR_RETURN(TablePtr cells, ChunkTable(in, *chunk, &offsets));
        ArrayChunk out_chunk = EmptyChunkLike(*chunk, *out_attrs);
        out_chunk.occupied = chunk->occupied;
        // Copy existing attributes wholesale.
        for (size_t a = 0; a < chunk->attrs.size(); ++a) {
          out_chunk.attrs[a] = chunk->attrs[a];
        }
        // Evaluate each definition vectorized over the chunk's cell table,
        // then scatter into the dense chunk layout.
        TablePtr working = cells;
        for (size_t def_i = 0; def_i < defs.size(); ++def_i) {
          const auto& [name, expr] = defs[def_i];
          NEXUS_ASSIGN_OR_RETURN(Column result, EvalExprVector(*expr, *working));
          Column& target = out_chunk.attrs[chunk->attrs.size() + def_i];
          for (size_t i = 0; i < offsets.size(); ++i) {
            NEXUS_RETURN_NOT_OK(target.SetValue(
                offsets[i], result.GetValue(static_cast<int64_t>(i))));
          }
          // Extend the working table so later defs can reference earlier ones.
          std::vector<Field> wf = working->schema()->fields();
          wf.push_back(Field::Attr(name, result.type()));
          std::vector<Column> wc = working->columns();
          wc.push_back(std::move(result));
          NEXUS_ASSIGN_OR_RETURN(SchemaPtr ws, Schema::Make(std::move(wf)));
          NEXUS_ASSIGN_OR_RETURN(working, Table::Make(ws, std::move(wc)));
        }
        results[static_cast<size_t>(ci)] = std::move(out_chunk);
        return Status::OK();
      }();
    }
  });
  for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);
  for (ArrayChunk& chunk : results) {
    NEXUS_RETURN_NOT_OK(out->PutChunk(std::move(chunk)));
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> FilterCells(const NDArray& in, const Expr& predicate) {
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(in.dims(), in.attr_schema()));
  std::vector<const ArrayChunk*> chunks = in.chunks();
  std::vector<ArrayChunk> results(chunks.size());
  std::vector<uint8_t> keep(chunks.size(), 0);
  std::vector<Status> statuses(chunks.size(), Status::OK());
  ParallelFor(static_cast<int64_t>(chunks.size()), 1, [&](int64_t cb, int64_t ce) {
    for (int64_t ci = cb; ci < ce; ++ci) {
      statuses[static_cast<size_t>(ci)] = [&]() -> Status {
        const ArrayChunk* chunk = chunks[static_cast<size_t>(ci)];
        std::vector<int64_t> offsets;
        NEXUS_ASSIGN_OR_RETURN(TablePtr cells, ChunkTable(in, *chunk, &offsets));
        NEXUS_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                               EvalPredicate(predicate, *cells));
        if (sel.empty()) return Status::OK();
        ArrayChunk out_chunk = EmptyChunkLike(*chunk, *in.attr_schema());
        for (size_t a = 0; a < chunk->attrs.size(); ++a) {
          out_chunk.attrs[a] = chunk->attrs[a];
        }
        for (int64_t s : sel) {
          out_chunk.occupied[static_cast<size_t>(offsets[static_cast<size_t>(s)])] = 1;
        }
        results[static_cast<size_t>(ci)] = std::move(out_chunk);
        keep[static_cast<size_t>(ci)] = 1;
        return Status::OK();
      }();
    }
  });
  for (const Status& s : statuses) NEXUS_RETURN_NOT_OK(s);
  for (size_t ci = 0; ci < results.size(); ++ci) {
    if (!keep[ci]) continue;
    NEXUS_RETURN_NOT_OK(out->PutChunk(std::move(results[ci])));
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> ProjectAttrs(const NDArray& in,
                                const std::vector<std::string>& attrs) {
  std::vector<Field> fields;
  std::vector<int> attr_idx;
  for (const std::string& name : attrs) {
    NEXUS_ASSIGN_OR_RETURN(int i, in.attr_schema()->FindFieldOrError(name));
    fields.push_back(in.attr_schema()->field(i));
    attr_idx.push_back(i);
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Make(std::move(fields)));
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(in.dims(), schema));
  for (const ArrayChunk* chunk : in.chunks()) {
    ArrayChunk out_chunk;
    out_chunk.grid = chunk->grid;
    out_chunk.lo = chunk->lo;
    out_chunk.extent = chunk->extent;
    out_chunk.occupied = chunk->occupied;
    for (int i : attr_idx) {
      out_chunk.attrs.push_back(chunk->attrs[static_cast<size_t>(i)]);
    }
    NEXUS_RETURN_NOT_OK(out->PutChunk(std::move(out_chunk)));
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> Regrid(
    const NDArray& in,
    const std::vector<std::pair<std::string, int64_t>>& factors, AggFunc func) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "ad.Regrid");
  span.AddCounter("cells", in.NumCellsOccupied());
  std::vector<int64_t> factor(static_cast<size_t>(in.num_dims()), 1);
  for (const auto& [name, f] : factors) {
    NEXUS_ASSIGN_OR_RETURN(int d, DimIndexOrError(in, name));
    if (f <= 0) return Status::InvalidArgument("regrid factor must be positive");
    factor[static_cast<size_t>(d)] = f;
  }
  // Output geometry: coordinates bin by floor division.
  std::vector<DimensionSpec> dims;
  for (int d = 0; d < in.num_dims(); ++d) {
    DimensionSpec spec = in.dim(d);
    int64_t f = factor[static_cast<size_t>(d)];
    int64_t lo = FloorDiv(spec.start, f);
    int64_t hi = FloorDiv(spec.end() - 1, f) + 1;
    spec.start = lo;
    spec.length = hi - lo;
    spec.chunk_size = std::max<int64_t>(1, spec.chunk_size);
    dims.push_back(spec);
  }
  // Numeric attributes only.
  std::vector<int> num_attrs;
  std::vector<Field> out_fields;
  for (int a = 0; a < in.attr_schema()->num_fields(); ++a) {
    const Field& f = in.attr_schema()->field(a);
    if (!IsNumeric(f.type)) continue;
    NEXUS_ASSIGN_OR_RETURN(DataType t, AggResultType(func, f.type));
    out_fields.push_back(Field::Attr(f.name, t));
    num_attrs.push_back(a);
  }
  if (num_attrs.empty()) {
    return Status::PlanError("regrid input has no numeric attributes");
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr out_schema, Schema::Make(std::move(out_fields)));
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(std::move(dims), out_schema));
  // Accumulate per output cell.
  std::map<std::vector<int64_t>, std::vector<NumAcc>> acc;
  for (const ArrayChunk* chunk : in.chunks()) {
    int64_t volume = chunk->Volume();
    for (int64_t off = 0; off < volume; ++off) {
      if (!chunk->occupied[static_cast<size_t>(off)]) continue;
      std::vector<int64_t> local = chunk->LocalCoords(off);
      std::vector<int64_t> target(local.size());
      for (size_t d = 0; d < local.size(); ++d) {
        target[d] = FloorDiv(chunk->lo[d] + local[d], factor[d]);
      }
      auto [it, inserted] = acc.try_emplace(std::move(target));
      if (inserted) it->second.resize(num_attrs.size());
      for (size_t a = 0; a < num_attrs.size(); ++a) {
        const Column& col = chunk->attrs[static_cast<size_t>(num_attrs[a])];
        if (col.IsNull(off)) continue;
        double f = col.NumericAt(off);
        int64_t i = col.type() == DataType::kInt64
                        ? col.ints()[static_cast<size_t>(off)]
                        : 0;
        it->second[a].Add(f, i);
      }
    }
  }
  std::vector<Value> attrs(num_attrs.size());
  for (const auto& [coords, states] : acc) {
    for (size_t a = 0; a < num_attrs.size(); ++a) {
      attrs[a] = states[a].Finish(
          func, in.attr_schema()->field(num_attrs[a]).type);
    }
    NEXUS_RETURN_NOT_OK(out->Set(coords, attrs));
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> Window(
    const NDArray& in,
    const std::vector<std::pair<std::string, int64_t>>& radii, AggFunc func) {
  telemetry::SpanGuard span(telemetry::kCategoryEngine, "ad.Window");
  span.AddCounter("cells", in.NumCellsOccupied());
  std::vector<int64_t> radius(static_cast<size_t>(in.num_dims()), 0);
  for (const auto& [name, r] : radii) {
    NEXUS_ASSIGN_OR_RETURN(int d, DimIndexOrError(in, name));
    if (r < 0) return Status::InvalidArgument("window radius must be >= 0");
    radius[static_cast<size_t>(d)] = r;
  }
  std::vector<int> num_attrs;
  std::vector<Field> out_fields;
  for (int a = 0; a < in.attr_schema()->num_fields(); ++a) {
    const Field& f = in.attr_schema()->field(a);
    if (!IsNumeric(f.type)) continue;
    NEXUS_ASSIGN_OR_RETURN(DataType t, AggResultType(func, f.type));
    out_fields.push_back(Field::Attr(f.name, t));
    num_attrs.push_back(a);
  }
  if (num_attrs.empty()) {
    return Status::PlanError("window input has no numeric attributes");
  }
  NEXUS_ASSIGN_OR_RETURN(SchemaPtr out_schema, Schema::Make(std::move(out_fields)));
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(in.dims(), out_schema));
  std::vector<Value> attrs(num_attrs.size());
  std::vector<int64_t> probe(static_cast<size_t>(in.num_dims()));
  std::vector<int64_t> offset(static_cast<size_t>(in.num_dims()));
  for (const ArrayChunk* chunk : in.chunks()) {
    int64_t volume = chunk->Volume();
    for (int64_t off = 0; off < volume; ++off) {
      if (!chunk->occupied[static_cast<size_t>(off)]) continue;
      std::vector<int64_t> local = chunk->LocalCoords(off);
      std::vector<int64_t> coords(local.size());
      for (size_t d = 0; d < local.size(); ++d) coords[d] = chunk->lo[d] + local[d];
      std::vector<NumAcc> states(num_attrs.size());
      for (size_t d = 0; d < offset.size(); ++d) offset[d] = -radius[d];
      while (true) {
        for (size_t d = 0; d < probe.size(); ++d) probe[d] = coords[d] + offset[d];
        const ArrayChunk* nb_chunk = nullptr;
        int64_t nb_off = 0;
        if (in.FindCell(probe, &nb_chunk, &nb_off)) {
          for (size_t a = 0; a < num_attrs.size(); ++a) {
            const Column& col = nb_chunk->attrs[static_cast<size_t>(num_attrs[a])];
            if (col.IsNull(nb_off)) continue;
            double f = col.NumericAt(nb_off);
            int64_t i = col.type() == DataType::kInt64
                            ? col.ints()[static_cast<size_t>(nb_off)]
                            : 0;
            states[a].Add(f, i);
          }
        }
        size_t d = 0;
        for (; d < offset.size(); ++d) {
          if (offset[d] < radius[d]) {
            ++offset[d];
            for (size_t e = 0; e < d; ++e) offset[e] = -radius[e];
            break;
          }
        }
        if (d == offset.size()) break;
      }
      for (size_t a = 0; a < num_attrs.size(); ++a) {
        attrs[a] = states[a].Finish(func,
                                    in.attr_schema()->field(num_attrs[a]).type);
      }
      NEXUS_RETURN_NOT_OK(out->Set(coords, attrs));
    }
  }
  return Finish(std::move(out));
}

Result<NDArrayPtr> Transpose(const NDArray& in,
                             const std::vector<std::string>& dim_order) {
  if (static_cast<int>(dim_order.size()) != in.num_dims()) {
    return Status::PlanError("transpose order must list every dimension");
  }
  std::vector<int> perm;
  std::vector<DimensionSpec> dims;
  for (const std::string& name : dim_order) {
    NEXUS_ASSIGN_OR_RETURN(int d, DimIndexOrError(in, name));
    if (std::find(perm.begin(), perm.end(), d) != perm.end()) {
      return Status::InvalidArgument(StrCat("duplicate dimension ", name));
    }
    perm.push_back(d);
    dims.push_back(in.dim(d));
  }
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(std::move(dims), in.attr_schema()));
  Status st = Status::OK();
  in.ForEachCell([&](const std::vector<int64_t>& coords, std::vector<Value> attrs) {
    if (!st.ok()) return;
    std::vector<int64_t> permuted(coords.size());
    for (size_t d = 0; d < perm.size(); ++d) {
      permuted[d] = coords[static_cast<size_t>(perm[d])];
    }
    st = out->Set(permuted, attrs);
  });
  NEXUS_RETURN_NOT_OK(st);
  return Finish(std::move(out));
}

Result<NDArrayPtr> ElemWise(const NDArray& a, const NDArray& b, BinaryOp op) {
  if (a.num_dims() != b.num_dims()) {
    return Status::PlanError("elemwise inputs must have matching dimensionality");
  }
  for (int d = 0; d < a.num_dims(); ++d) {
    if (a.dim(d).name != b.dim(d).name) {
      return Status::PlanError("elemwise inputs must share dimension names");
    }
  }
  if (a.attr_schema()->num_fields() != 1 || b.attr_schema()->num_fields() != 1) {
    return Status::PlanError("elemwise inputs must each have one attribute");
  }
  DataType lt = a.attr_schema()->field(0).type;
  DataType rt = b.attr_schema()->field(0).type;
  NEXUS_ASSIGN_OR_RETURN(DataType vt, CommonNumericType(lt, rt));
  if (op == BinaryOp::kDiv) vt = DataType::kFloat64;
  NEXUS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make({Field::Attr(a.attr_schema()->field(0).name, vt)}));
  NEXUS_ASSIGN_OR_RETURN(std::shared_ptr<NDArray> out,
                         NDArray::Make(a.dims(), schema));
  // Chunk-aligned fast path: identical geometry and float64 payloads on
  // both sides — combine the dense chunk buffers directly, no hashing, no
  // boxing. This is the layout advantage a chunked array engine has over a
  // generic join for cell-wise arithmetic.
  if (a.dims() == b.dims() && vt == DataType::kFloat64 &&
      a.attr_schema()->field(0).type == DataType::kFloat64 &&
      b.attr_schema()->field(0).type == DataType::kFloat64) {
    if (op != BinaryOp::kAdd && op != BinaryOp::kSub && op != BinaryOp::kMul &&
        op != BinaryOp::kDiv) {
      return Status::PlanError("elemwise supports + - * / only");
    }
    // One morsel per chunk; results land in per-chunk slots and are stored
    // sequentially in grid order, so the output is thread-count invariant.
    // b is probed from parallel morsels below — fault its evicted chunks
    // in up front rather than racing the lazy path.
    NEXUS_RETURN_NOT_OK(b.EnsureAllResident());
    std::vector<const ArrayChunk*> chunks = a.chunks();
    std::vector<ArrayChunk> results(chunks.size());
    std::vector<uint8_t> keep(chunks.size(), 0);
    ParallelFor(static_cast<int64_t>(chunks.size()), 1,
                [&](int64_t cbg, int64_t cen) {
      for (int64_t ci = cbg; ci < cen; ++ci) {
        const ArrayChunk* ca = chunks[static_cast<size_t>(ci)];
        const ArrayChunk* cb = b.FindChunk(ca->grid);
        if (cb == nullptr) continue;  // intersection is empty here
        ArrayChunk oc = EmptyChunkLike(*ca, *schema);
        const std::vector<double>& av = ca->attrs[0].doubles();
        const std::vector<double>& bv = cb->attrs[0].doubles();
        std::vector<double> ov(av.size(), 0.0);
        int64_t volume = ca->Volume();
        bool any = false;
        for (int64_t off = 0; off < volume; ++off) {
          size_t o = static_cast<size_t>(off);
          if (!ca->occupied[o] || !cb->occupied[o]) continue;
          if (ca->attrs[0].IsNull(off) || cb->attrs[0].IsNull(off)) {
            oc.occupied[o] = 1;
            oc.attrs[0].SetNull(off);
            any = true;
            continue;
          }
          double v = 0.0;
          switch (op) {
            case BinaryOp::kAdd:
              v = av[o] + bv[o];
              break;
            case BinaryOp::kSub:
              v = av[o] - bv[o];
              break;
            case BinaryOp::kMul:
              v = av[o] * bv[o];
              break;
            default:  // kDiv (other ops rejected above)
              if (bv[o] == 0.0) {
                oc.occupied[o] = 1;
                oc.attrs[0].SetNull(off);
                any = true;
                continue;
              }
              v = av[o] / bv[o];
              break;
          }
          ov[o] = v;
          oc.occupied[o] = 1;
          any = true;
        }
        if (!any) continue;
        // Merge the typed buffer under the already-set validity mask.
        Column merged = Column::FromFloat64(std::move(ov));
        for (int64_t off = 0; off < volume; ++off) {
          if (oc.attrs[0].IsNull(off)) merged.SetNull(off);
        }
        oc.attrs[0] = std::move(merged);
        results[static_cast<size_t>(ci)] = std::move(oc);
        keep[static_cast<size_t>(ci)] = 1;
      }
    });
    for (size_t ci = 0; ci < results.size(); ++ci) {
      if (!keep[ci]) continue;
      NEXUS_RETURN_NOT_OK(out->PutChunk(std::move(results[ci])));
    }
    return Finish(std::move(out));
  }
  Status st = Status::OK();
  a.ForEachCell([&](const std::vector<int64_t>& coords, std::vector<Value> attrs) {
    if (!st.ok()) return;
    const ArrayChunk* b_chunk = nullptr;
    int64_t b_off = 0;
    if (!b.FindCell(coords, &b_chunk, &b_off)) return;  // intersection
    const Column& bc = b_chunk->attrs[0];
    if (attrs[0].is_null() || bc.IsNull(b_off)) {
      st = out->Set(coords, {Value::Null()});
      return;
    }
    double l = attrs[0].AsDouble();
    double r = bc.NumericAt(b_off);
    // Exact integer path when both sides are int64.
    int64_t ri = vt == DataType::kInt64 ? bc.ints()[static_cast<size_t>(b_off)] : 0;
    Value v;
    switch (op) {
      case BinaryOp::kAdd:
        v = vt == DataType::kInt64 ? Value::Int64(attrs[0].AsInt64() + ri)
                                   : Value::Float64(l + r);
        break;
      case BinaryOp::kSub:
        v = vt == DataType::kInt64 ? Value::Int64(attrs[0].AsInt64() - ri)
                                   : Value::Float64(l - r);
        break;
      case BinaryOp::kMul:
        v = vt == DataType::kInt64 ? Value::Int64(attrs[0].AsInt64() * ri)
                                   : Value::Float64(l * r);
        break;
      case BinaryOp::kDiv:
        v = r == 0.0 ? Value::Null() : Value::Float64(l / r);
        break;
      default:
        st = Status::PlanError("elemwise supports + - * / only");
        return;
    }
    st = out->Set(coords, {v});
  });
  NEXUS_RETURN_NOT_OK(st);
  return Finish(std::move(out));
}

}  // namespace arraydb
}  // namespace nexus
