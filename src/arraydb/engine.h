// Chunked array engine — the framework's stand-in for an array database
// (the paper's SciDB-class provider).
//
// Operators work chunk-natively: Slice prunes whole chunks by bounding box,
// Shift is a metadata-level coordinate translation, Apply/Filter evaluate
// expressions vectorized per chunk, and Regrid accumulates directly into
// output chunks. This is deliberately a different execution strategy from
// both the reference executor and the relational engine, exercising
// desideratum 2 (translatability to heterogeneous back ends).
#ifndef NEXUS_ARRAYDB_ENGINE_H_
#define NEXUS_ARRAYDB_ENGINE_H_

#include <vector>

#include "core/plan.h"
#include "expr/expr.h"
#include "types/ndarray.h"

namespace nexus {
namespace arraydb {

/// Restricts to the hyper-rectangle given by `ranges` (dims not listed are
/// kept whole). Chunks fully outside the box are pruned without a visit.
Result<NDArrayPtr> Slice(const NDArray& in, const std::vector<DimRange>& ranges);

/// Translates coordinates: dim start moves by delta; cell data is untouched
/// (metadata-only, O(#chunks)).
Result<NDArrayPtr> Shift(const NDArray& in,
                         const std::vector<std::pair<std::string, int64_t>>& offsets);

/// Appends computed attributes. Expressions may reference dimensions and
/// existing attributes by name; evaluation is vectorized per chunk.
Result<NDArrayPtr> Apply(const NDArray& in,
                         const std::vector<std::pair<std::string, ExprPtr>>& defs);

/// Keeps only cells satisfying the predicate (references dims/attrs).
Result<NDArrayPtr> FilterCells(const NDArray& in, const Expr& predicate);

/// Keeps only the named attributes (dimensions always survive).
Result<NDArrayPtr> ProjectAttrs(const NDArray& in,
                                const std::vector<std::string>& attrs);

/// Block-aggregates: output coordinate = floor(coord / factor) per dim
/// (factor 1 when unlisted); numeric attributes aggregated by `func`,
/// non-numeric attributes dropped.
Result<NDArrayPtr> Regrid(const NDArray& in,
                          const std::vector<std::pair<std::string, int64_t>>& factors,
                          AggFunc func);

/// Moving-window aggregate over the box [c-r, c+r] per dimension; one
/// output cell per occupied input cell.
Result<NDArrayPtr> Window(const NDArray& in,
                          const std::vector<std::pair<std::string, int64_t>>& radii,
                          AggFunc func);

/// Permutes dimensions.
Result<NDArrayPtr> Transpose(const NDArray& in,
                             const std::vector<std::string>& dim_order);

/// Cell-wise arithmetic on two arrays with identical dimension lists; the
/// result holds the intersection of their occupancies. Each input must have
/// exactly one numeric attribute.
Result<NDArrayPtr> ElemWise(const NDArray& a, const NDArray& b, BinaryOp op);

}  // namespace arraydb
}  // namespace nexus

#endif  // NEXUS_ARRAYDB_ENGINE_H_
