// Graph ranking: control iteration and intent preservation in one example.
//
// A citation graph lives on a graph-analytics server. The client writes
// PageRank once, as an intent-carrying algebra node. The coordinator routes
// it to the graph engine's native implementation; the same node also has a
// pure-algebra expansion (Iterate over joins and aggregates) that any
// relational provider can run — we execute both and compare.
//
//   ./build/examples/graph_ranking
#include <cmath>
#include <iostream>

#include "common/logging.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "core/expansion.h"
#include "federation/coordinator.h"
#include "frontend/query.h"

using namespace nexus;  // NOLINT

int main() {
  Rng rng(7);
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("graphd", MakeGraphProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());

  // Synthetic citation graph: preferential attachment (papers cite earlier,
  // already well-cited papers).
  SchemaPtr edges = Schema::Make({Field::Attr("citing", DataType::kInt64),
                                  Field::Attr("cited", DataType::kInt64)})
                        .ValueOrDie();
  TableBuilder eb(edges);
  std::vector<int64_t> targets = {0};
  const int64_t kPapers = 400;
  for (int64_t p = 1; p < kPapers; ++p) {
    for (int c = 0; c < 3; ++c) {
      int64_t cited = targets[rng.NextBounded(targets.size())];
      if (cited == p) continue;
      NEXUS_CHECK(eb.AppendRow({Value::Int64(p), Value::Int64(cited)}).ok());
      targets.push_back(cited);  // rich get richer
    }
    targets.push_back(p);
  }
  TablePtr edge_table = eb.Finish().ValueOrDie();
  NEXUS_CHECK(cluster.PutData("graphd", "citations", Dataset(edge_table)).ok());
  NEXUS_CHECK(cluster.PutData("relstore", "citations_rel", Dataset(edge_table)).ok());

  PageRankOp pr;
  pr.src_col = "citing";
  pr.dst_col = "cited";
  pr.max_iters = 100;
  pr.epsilon = 1e-10;

  // Intent node → routed to the native graph engine.
  Query ranked = Query::From("citations").PageRank(pr);
  Coordinator coord(&cluster);
  ExecutionMetrics native_metrics;
  Dataset native = coord.Execute(ranked.plan(), &native_metrics).ValueOrDie();

  std::cout << "Top papers (native graph engine):\n";
  Query top = Query(Plan::Values(native)).OrderBy("rank", false).Take(5);
  std::cout << coord.Execute(top.plan()).ValueOrDie().ToString() << "\n";
  std::cout << "native: " << native_metrics.ToString() << "\n\n";

  // The same intent, expanded into Iterate over base relational algebra and
  // executed on the relational server — control iteration in the algebra.
  FederatedCatalog fed(&cluster);
  SchemaPtr edge_schema = fed.GetSchema("citations_rel").ValueOrDie();
  PlanPtr expanded =
      ExpandPageRank(Plan::Scan("citations_rel"), pr, *edge_schema).ValueOrDie();
  ExecutionMetrics expanded_metrics;
  Dataset via_algebra = coord.Execute(expanded, &expanded_metrics).ValueOrDie();
  std::cout << "expansion (Iterate over joins/aggregates on relstore): "
            << expanded_metrics.ToString() << "\n";

  // Agreement check.
  TablePtr a = native.AsTable().ValueOrDie();
  TablePtr b = via_algebra.AsTable().ValueOrDie();
  double max_diff = 0.0;
  std::map<int64_t, double> lookup;
  for (int64_t r = 0; r < b->num_rows(); ++r) {
    lookup[b->At(r, 0).AsInt64()] = b->At(r, 1).AsDouble();
  }
  for (int64_t r = 0; r < a->num_rows(); ++r) {
    max_diff = std::max(max_diff, std::fabs(a->At(r, 1).AsDouble() -
                                            lookup[a->At(r, 0).AsInt64()]));
  }
  std::cout << "max |native - expansion| over " << a->num_rows()
            << " nodes: " << max_diff << "\n";
  std::cout << "\nThe intent node was recognizable as PageRank at a server "
               "with a direct\nimplementation (desideratum 3), while the "
               "expansion kept it expressible\neverywhere (desideratum 2).\n";
  return 0;
}
