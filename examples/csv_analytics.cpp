// CSV analytics: the everyday adoption path — load CSV data, query it with
// the BDL surface language, export the answer as CSV again.
//
//   ./build/examples/csv_analytics
#include <iostream>

#include "common/logging.h"
#include "exec/reference_executor.h"
#include "frontend/bdl.h"
#include "types/csv.h"

using namespace nexus;  // NOLINT

int main() {
  // Incoming data: a CSV export from some other system. Types are inferred
  // (int64 / float64 / string / bool; empty fields become null).
  const char* csv =
      "city,month,rainfall_mm,sunny\n"
      "portland,1,157.0,false\n"
      "portland,7,15.2,true\n"
      "seattle,1,142.3,false\n"
      "seattle,7,17.8,true\n"
      "phoenix,1,22.6,true\n"
      "phoenix,7,,true\n";  // missing reading -> null
  TablePtr weather = ReadCsv(csv).ValueOrDie();
  std::cout << "Loaded schema: " << weather->schema()->ToString() << "\n\n";

  InMemoryCatalog catalog;
  NEXUS_CHECK(catalog.Put("weather", Dataset(weather)).ok());

  // Query in BDL. avg() skips the null reading, count(*) does not.
  PlanPtr query = ParseBdl(R"(
      from weather
      group by city aggregate
          avg(rainfall_mm) as avg_rain,
          count(rainfall_mm) as readings,
          count(*) as months
      sort by avg_rain desc
  )")
                      .ValueOrDie();

  ReferenceExecutor exec(&catalog);
  Dataset result = exec.Execute(*query).ValueOrDie();
  std::cout << "Result:\n" << result.ToString() << "\n";

  // And back out as CSV for the next tool in the chain.
  std::cout << "As CSV:\n" << WriteCsv(*result.AsTable().ValueOrDie());
  return 0;
}
