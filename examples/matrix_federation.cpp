// Matrix federation: the paper's SciDB ⇄ ScaLAPACK scenario. Two matrices
// live on an array server; a matrix product must run on the linear-algebra
// server. The coordinator plans the transfer either directly between the
// two servers (desideratum 4) or relayed through the client — run both and
// compare the traffic.
//
//   ./build/examples/matrix_federation
#include <cmath>
#include <iostream>

#include "common/logging.h"

#include "common/random.h"
#include "federation/coordinator.h"
#include "frontend/query.h"

using namespace nexus;  // NOLINT

namespace {

TablePtr RandomMatrix(Rng* rng, int64_t rows, int64_t cols, const char* rname,
                      const char* cname, const char* attr) {
  SchemaPtr s = Schema::Make({Field::Dim(rname), Field::Dim(cname),
                              Field::Attr(attr, DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      NEXUS_CHECK(b.AppendRow({Value::Int64(r), Value::Int64(c),
                               Value::Float64(rng->NextDouble(-1, 1))})
                      .ok());
    }
  }
  return b.Finish().ValueOrDie();
}

}  // namespace

int main() {
  Rng rng(99);
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("arraydb", MakeArrayProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("linalg", MakeLinalgProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());

  const int64_t n = 64;
  NEXUS_CHECK(cluster
                  .PutData("arraydb", "A",
                           Dataset(RandomMatrix(&rng, n, n, "i", "k", "a")))
                  .ok());
  NEXUS_CHECK(cluster
                  .PutData("arraydb", "B",
                           Dataset(RandomMatrix(&rng, n, n, "k", "j", "b")))
                  .ok());

  // C = slice(A) x B, written once. The slice runs where A lives (the array
  // engine prunes chunks); the product runs on the linear-algebra server.
  Query q = Query::From("A")
                .Slice({{"i", 0, n / 2}})
                .MatMul(Query::From("B"), "c");

  Coordinator coord(&cluster);
  std::cout << "Placement:\n"
            << coord.ExplainPlacement(q.plan()).ValueOrDie() << "\n";

  auto run = [&](TransferMode mode, const char* label) {
    CoordinatorOptions opts;
    opts.transfer_mode = mode;
    coord.set_options(opts);
    ExecutionMetrics m;
    Dataset result = coord.Execute(q.plan(), &m).ValueOrDie();
    std::cout << label << ":\n  " << m.ToString() << "\n";
    return result;
  };
  Dataset direct = run(TransferMode::kDirect, "direct (server -> server)");
  Dataset relayed = run(TransferMode::kRelay, "relayed (through client tier)");
  std::cout << "results agree: "
            << (direct.LogicallyEquals(relayed) ? "yes" : "no") << "\n";
  std::cout << "\nIn direct mode the A-slice and B never touch the client: "
               "only the final\nproduct is delivered to the application, as "
               "desideratum 4 asks.\n";
  return 0;
}
