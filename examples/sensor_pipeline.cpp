// Sensor pipeline: the mixed tabular/array scenario the paper's fused data
// model targets. A 2-d sensor grid (time × sensor readings) lives on an
// array server; sensor metadata lives on a relational server. One algebra
// query smooths the grid with a window aggregate, downsamples it, converts
// to the tabular view, and joins in metadata — and the coordinator splits
// the work between the two engines with intermediates flowing directly
// between them.
//
//   ./build/examples/sensor_pipeline
#include <cmath>
#include <iostream>

#include "common/logging.h"

#include "common/random.h"
#include "federation/coordinator.h"
#include "frontend/query.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

int main() {
  Rng rng(2026);
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("arraydb", MakeArrayProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());

  // Sensor readings: 96 time steps × 32 sensors, with a daily temperature
  // swing plus noise; ~3% of readings dropped (sparse array).
  SchemaPtr readings =
      Schema::Make({Field::Dim("t"), Field::Dim("sensor"),
                    Field::Attr("temp", DataType::kFloat64)})
          .ValueOrDie();
  TableBuilder rb(readings);
  for (int64_t t = 0; t < 96; ++t) {
    for (int64_t s = 0; s < 32; ++s) {
      if (rng.NextBool(0.03)) continue;  // dropped reading
      double base = 15.0 + 10.0 * std::sin(static_cast<double>(t) / 96.0 * 6.283);
      NEXUS_CHECK(rb.AppendRow({Value::Int64(t), Value::Int64(s),
                                Value::Float64(base + rng.NextGaussian())})
                      .ok());
    }
  }
  NEXUS_CHECK(
      cluster.PutData("arraydb", "readings", Dataset(rb.Finish().ValueOrDie()))
          .ok());

  // Sensor metadata on the relational server.
  SchemaPtr meta = Schema::Make({Field::Attr("sid", DataType::kInt64),
                                 Field::Attr("room", DataType::kString)})
                       .ValueOrDie();
  TableBuilder mb(meta);
  const char* rooms[] = {"lab", "office", "server-room", "lobby"};
  for (int64_t s = 0; s < 32; ++s) {
    NEXUS_CHECK(
        mb.AppendRow({Value::Int64(s), Value::String(rooms[s % 4])}).ok());
  }
  NEXUS_CHECK(
      cluster.PutData("relstore", "sensors", Dataset(mb.Finish().ValueOrDie()))
          .ok());

  // The pipeline, written once against the algebra:
  //   smooth (3x1 window mean) → downsample time 8:1 → tabular view →
  //   join metadata → average by room → sort.
  Query smoothed = Query::From("readings")
                       .Window({{"t", 1}}, AggFunc::kAvg)
                       .Regrid({{"t", 8}}, AggFunc::kAvg);
  Query per_room =
      smoothed.AsPlainTable()
          .JoinWith(Query::From("sensors"), {"sensor"}, {"sid"})
          .GroupBy({"room", "t"}, {Avg(Col("temp"), "avg_temp")})
          .OrderByKeys({{"room", true}, {"t", true}});

  Coordinator coord(&cluster);
  std::cout << "Placement:\n"
            << coord.ExplainPlacement(per_room.plan()).ValueOrDie() << "\n";

  ExecutionMetrics metrics;
  Dataset result = coord.Execute(per_room.plan(), &metrics).ValueOrDie();
  std::cout << "Per-room temperature (8-step buckets):\n"
            << result.AsTable().ValueOrDie()->ToString(12) << "\n";
  std::cout << "Execution: " << metrics.ToString() << "\n";
  std::cout << "\nThe window/regrid stages ran on the array engine and the "
               "join/aggregate on the\nrelational engine; the intermediate "
               "moved directly between the two servers.\n";
  return 0;
}
