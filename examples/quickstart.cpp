// Quickstart: build a collection, query it three ways — raw algebra, the
// fluent API, and the BDL surface language — and print the results.
//
//   ./build/examples/quickstart
#include <cmath>
#include <iostream>

#include "common/logging.h"

#include "exec/reference_executor.h"
#include "frontend/bdl.h"
#include "frontend/query.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

int main() {
  // 1. Build a small sales table.
  SchemaPtr schema =
      Schema::Make({Field::Attr("city", DataType::kString),
                    Field::Attr("product", DataType::kString),
                    Field::Attr("units", DataType::kInt64),
                    Field::Attr("price", DataType::kFloat64)})
          .ValueOrDie();
  TableBuilder builder(schema);
  struct Row {
    const char* city;
    const char* product;
    int64_t units;
    double price;
  };
  const Row rows[] = {
      {"portland", "widget", 12, 9.5},   {"portland", "gadget", 3, 24.0},
      {"seattle", "widget", 7, 9.5},     {"seattle", "sprocket", 21, 4.25},
      {"portland", "sprocket", 9, 4.25}, {"eugene", "widget", 2, 9.5},
      {"seattle", "gadget", 5, 24.0},    {"eugene", "gadget", 1, 24.0},
  };
  for (const Row& r : rows) {
    NEXUS_CHECK(builder
                    .AppendRow({Value::String(r.city), Value::String(r.product),
                                Value::Int64(r.units), Value::Float64(r.price)})
                    .ok());
  }
  InMemoryCatalog catalog;
  NEXUS_CHECK(catalog.Put("sales", Dataset(builder.Finish().ValueOrDie())).ok());

  // 2. The same query three ways: revenue by city, largest first.
  // (a) Raw algebra. (units * price promotes int64 × float64 to float64.)
  PlanPtr algebra = Plan::Sort(
      Plan::Aggregate(
          Plan::Extend(Plan::Scan("sales"),
                       {{"revenue", Mul(Col("units"), Col("price"))}}),
          {"city"}, {AggSpec{AggFunc::kSum, Col("revenue"), "total"}}),
      {{"total", false}});

  // (b) Fluent API.
  Query fluent = Query::From("sales")
                     .Let("revenue", Mul(Col("units"), Col("price")))
                     .GroupBy({"city"}, {Sum(Col("revenue"), "total")})
                     .OrderBy("total", false);

  // (c) BDL surface syntax.
  PlanPtr bdl = ParseBdl(R"(
      from sales
      extend revenue := units * price
      group by city aggregate sum(revenue) as total
      sort by total desc
  )")
                    .ValueOrDie();

  std::cout << "Algebra plan:\n" << algebra->ToString() << "\n";
  std::cout << "Fluent == algebra: "
            << (fluent.plan()->Equals(*algebra) ? "yes" : "no") << "\n";
  std::cout << "BDL == algebra:    " << (bdl->Equals(*algebra) ? "yes" : "no")
            << "\n\n";

  // 3. Execute. The result is an ordinary collection in the client
  // environment — no cursors (the paper's LINQ property).
  ReferenceExecutor exec(&catalog);
  Dataset result = exec.Execute(*fluent.plan()).ValueOrDie();
  std::cout << "Revenue by city:\n" << result.ToString() << "\n";
  return 0;
}
