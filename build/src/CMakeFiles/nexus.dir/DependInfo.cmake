
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arraydb/engine.cc" "src/CMakeFiles/nexus.dir/arraydb/engine.cc.o" "gcc" "src/CMakeFiles/nexus.dir/arraydb/engine.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/nexus.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/nexus.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/nexus.dir/common/random.cc.o" "gcc" "src/CMakeFiles/nexus.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/nexus.dir/common/status.cc.o" "gcc" "src/CMakeFiles/nexus.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/nexus.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/nexus.dir/common/str_util.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/CMakeFiles/nexus.dir/core/catalog.cc.o" "gcc" "src/CMakeFiles/nexus.dir/core/catalog.cc.o.d"
  "/root/repo/src/core/expansion.cc" "src/CMakeFiles/nexus.dir/core/expansion.cc.o" "gcc" "src/CMakeFiles/nexus.dir/core/expansion.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/CMakeFiles/nexus.dir/core/plan.cc.o" "gcc" "src/CMakeFiles/nexus.dir/core/plan.cc.o.d"
  "/root/repo/src/core/schema_inference.cc" "src/CMakeFiles/nexus.dir/core/schema_inference.cc.o" "gcc" "src/CMakeFiles/nexus.dir/core/schema_inference.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/nexus.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/nexus.dir/core/serialize.cc.o.d"
  "/root/repo/src/exec/reference_executor.cc" "src/CMakeFiles/nexus.dir/exec/reference_executor.cc.o" "gcc" "src/CMakeFiles/nexus.dir/exec/reference_executor.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/nexus.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/nexus.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/nexus.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/nexus.dir/expr/expr.cc.o.d"
  "/root/repo/src/federation/cluster.cc" "src/CMakeFiles/nexus.dir/federation/cluster.cc.o" "gcc" "src/CMakeFiles/nexus.dir/federation/cluster.cc.o.d"
  "/root/repo/src/federation/coordinator.cc" "src/CMakeFiles/nexus.dir/federation/coordinator.cc.o" "gcc" "src/CMakeFiles/nexus.dir/federation/coordinator.cc.o.d"
  "/root/repo/src/federation/transport.cc" "src/CMakeFiles/nexus.dir/federation/transport.cc.o" "gcc" "src/CMakeFiles/nexus.dir/federation/transport.cc.o.d"
  "/root/repo/src/frontend/bdl.cc" "src/CMakeFiles/nexus.dir/frontend/bdl.cc.o" "gcc" "src/CMakeFiles/nexus.dir/frontend/bdl.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/nexus.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/nexus.dir/graph/graph.cc.o.d"
  "/root/repo/src/linalg/dense.cc" "src/CMakeFiles/nexus.dir/linalg/dense.cc.o" "gcc" "src/CMakeFiles/nexus.dir/linalg/dense.cc.o.d"
  "/root/repo/src/linalg/solve.cc" "src/CMakeFiles/nexus.dir/linalg/solve.cc.o" "gcc" "src/CMakeFiles/nexus.dir/linalg/solve.cc.o.d"
  "/root/repo/src/linalg/sparse.cc" "src/CMakeFiles/nexus.dir/linalg/sparse.cc.o" "gcc" "src/CMakeFiles/nexus.dir/linalg/sparse.cc.o.d"
  "/root/repo/src/optimizer/fold.cc" "src/CMakeFiles/nexus.dir/optimizer/fold.cc.o" "gcc" "src/CMakeFiles/nexus.dir/optimizer/fold.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/nexus.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/nexus.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/provider/array_provider.cc" "src/CMakeFiles/nexus.dir/provider/array_provider.cc.o" "gcc" "src/CMakeFiles/nexus.dir/provider/array_provider.cc.o.d"
  "/root/repo/src/provider/graph_provider.cc" "src/CMakeFiles/nexus.dir/provider/graph_provider.cc.o" "gcc" "src/CMakeFiles/nexus.dir/provider/graph_provider.cc.o.d"
  "/root/repo/src/provider/linalg_provider.cc" "src/CMakeFiles/nexus.dir/provider/linalg_provider.cc.o" "gcc" "src/CMakeFiles/nexus.dir/provider/linalg_provider.cc.o.d"
  "/root/repo/src/provider/provider.cc" "src/CMakeFiles/nexus.dir/provider/provider.cc.o" "gcc" "src/CMakeFiles/nexus.dir/provider/provider.cc.o.d"
  "/root/repo/src/provider/reference_provider.cc" "src/CMakeFiles/nexus.dir/provider/reference_provider.cc.o" "gcc" "src/CMakeFiles/nexus.dir/provider/reference_provider.cc.o.d"
  "/root/repo/src/provider/relational_provider.cc" "src/CMakeFiles/nexus.dir/provider/relational_provider.cc.o" "gcc" "src/CMakeFiles/nexus.dir/provider/relational_provider.cc.o.d"
  "/root/repo/src/relational/engine.cc" "src/CMakeFiles/nexus.dir/relational/engine.cc.o" "gcc" "src/CMakeFiles/nexus.dir/relational/engine.cc.o.d"
  "/root/repo/src/types/column.cc" "src/CMakeFiles/nexus.dir/types/column.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/column.cc.o.d"
  "/root/repo/src/types/csv.cc" "src/CMakeFiles/nexus.dir/types/csv.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/csv.cc.o.d"
  "/root/repo/src/types/dataset.cc" "src/CMakeFiles/nexus.dir/types/dataset.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/dataset.cc.o.d"
  "/root/repo/src/types/datatype.cc" "src/CMakeFiles/nexus.dir/types/datatype.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/datatype.cc.o.d"
  "/root/repo/src/types/ndarray.cc" "src/CMakeFiles/nexus.dir/types/ndarray.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/ndarray.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/nexus.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/schema.cc.o.d"
  "/root/repo/src/types/table.cc" "src/CMakeFiles/nexus.dir/types/table.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/table.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/nexus.dir/types/value.cc.o" "gcc" "src/CMakeFiles/nexus.dir/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
