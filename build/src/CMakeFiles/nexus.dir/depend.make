# Empty dependencies file for nexus.
# This may be replaced when dependencies are built.
