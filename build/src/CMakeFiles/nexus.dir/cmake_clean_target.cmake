file(REMOVE_RECURSE
  "libnexus.a"
)
