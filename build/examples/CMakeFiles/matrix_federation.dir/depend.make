# Empty dependencies file for matrix_federation.
# This may be replaced when dependencies are built.
