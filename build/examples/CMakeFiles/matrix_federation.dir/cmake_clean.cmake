file(REMOVE_RECURSE
  "CMakeFiles/matrix_federation.dir/matrix_federation.cpp.o"
  "CMakeFiles/matrix_federation.dir/matrix_federation.cpp.o.d"
  "matrix_federation"
  "matrix_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
