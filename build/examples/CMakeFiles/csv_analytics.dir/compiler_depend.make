# Empty compiler generated dependencies file for csv_analytics.
# This may be replaced when dependencies are built.
