# Empty dependencies file for arraydb_test.
# This may be replaced when dependencies are built.
