file(REMOVE_RECURSE
  "CMakeFiles/arraydb_test.dir/arraydb_test.cc.o"
  "CMakeFiles/arraydb_test.dir/arraydb_test.cc.o.d"
  "arraydb_test"
  "arraydb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arraydb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
