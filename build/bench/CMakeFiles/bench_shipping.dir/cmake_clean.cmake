file(REMOVE_RECURSE
  "CMakeFiles/bench_shipping.dir/bench_shipping.cc.o"
  "CMakeFiles/bench_shipping.dir/bench_shipping.cc.o.d"
  "bench_shipping"
  "bench_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
