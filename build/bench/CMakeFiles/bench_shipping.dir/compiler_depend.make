# Empty compiler generated dependencies file for bench_shipping.
# This may be replaced when dependencies are built.
