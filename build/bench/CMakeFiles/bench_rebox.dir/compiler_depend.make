# Empty compiler generated dependencies file for bench_rebox.
# This may be replaced when dependencies are built.
