file(REMOVE_RECURSE
  "CMakeFiles/bench_rebox.dir/bench_rebox.cc.o"
  "CMakeFiles/bench_rebox.dir/bench_rebox.cc.o.d"
  "bench_rebox"
  "bench_rebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
