# Empty compiler generated dependencies file for bench_translatability.
# This may be replaced when dependencies are built.
