file(REMOVE_RECURSE
  "CMakeFiles/bench_translatability.dir/bench_translatability.cc.o"
  "CMakeFiles/bench_translatability.dir/bench_translatability.cc.o.d"
  "bench_translatability"
  "bench_translatability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translatability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
