// E7 — Provider-side optimization (LINQ property): shipping whole
// expression trees "permits optimization and query planning at the
// Provider" — and at the coordinator. This bench ablates the optimizer's
// passes on a filter + join + aggregate pipeline.
//
// Arms: none / +pushdown / +pruning / all (pushdown + pruning + folding).
// Sweep the selection's selectivity; report wall time on the relational
// engine. Pushdown shrinks the join's build/probe inputs, pruning narrows
// the scans.
//
// E14 — Statistics-driven cost-based planning:
//   e14_join3_written / e14_join3_reordered: a skewed 3-way join whose
//     written order builds a ~900k-row intermediate; the DP enumerator
//     joins the selective pair first (~15 rows). Gate: >= 2x wall win,
//     byte-identical results.
//   e14_place_heuristic / e14_place_cost: a selective filter on a large
//     fact on one server joined with a bulky dim on another. The legacy
//     bulkier-input heuristic hosts the join with the fact and ships the
//     whole dim; cost-based placement prices the filtered rows and ships
//     those instead. Gate: bytes_on_wire(cost) <= bytes_on_wire(heuristic).
#include <algorithm>
#include <cstdio>
#include <tuple>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

// E14a: join-order ablation on a skewed 3-way join. All data on one
// relational server so the measurement is pure engine work.
void RunJoinOrderArms(benchjson::Recorder* json) {
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
  Rng rng(7);

  const int64_t kARows = 3000;   // x skewed into 10 values
  const int64_t kBRows = 3000;   // x in 0..9, y uniform in 0..999
  const int64_t kCRows = 5;      // distinct y values

  SchemaPtr sa = Schema::Make({Field::Attr("x", DataType::kInt64),
                               Field::Attr("a_val", DataType::kFloat64)})
                     .ValueOrDie();
  TableBuilder ab(sa);
  for (int64_t i = 0; i < kARows; ++i) {
    NEXUS_CHECK(ab.AppendRow({Value::Int64(rng.NextInt(0, 9)),
                              Value::Float64(rng.NextDouble(0, 1))})
                    .ok());
  }
  NEXUS_CHECK(
      cluster.PutData("relstore", "fact3", Dataset(ab.Finish().ValueOrDie())).ok());

  SchemaPtr sb = Schema::Make({Field::Attr("x", DataType::kInt64),
                               Field::Attr("y", DataType::kInt64)})
                     .ValueOrDie();
  TableBuilder bb(sb);
  for (int64_t i = 0; i < kBRows; ++i) {
    NEXUS_CHECK(bb.AppendRow({Value::Int64(rng.NextInt(0, 9)),
                              Value::Int64(rng.NextInt(0, 999))})
                    .ok());
  }
  NEXUS_CHECK(
      cluster.PutData("relstore", "bridge3", Dataset(bb.Finish().ValueOrDie())).ok());

  SchemaPtr sc = Schema::Make({Field::Attr("y", DataType::kInt64),
                               Field::Attr("label", DataType::kString)})
                     .ValueOrDie();
  TableBuilder cb(sc);
  for (int64_t i = 0; i < kCRows; ++i) {
    NEXUS_CHECK(
        cb.AppendRow({Value::Int64(i), Value::String(rng.NextString(8))}).ok());
  }
  NEXUS_CHECK(
      cluster.PutData("relstore", "tiny3", Dataset(cb.Finish().ValueOrDie())).ok());

  // Written order: the skewed pair first (|A ⋈ B| ≈ 3000·3000/10 = 900k),
  // then the selective probe. The good order joins bridge3 ⋈ tiny3 first
  // (≈ 15 rows).
  PlanPtr p = Plan::Join(Plan::Scan("fact3"), Plan::Scan("bridge3"),
                         JoinType::kInner, {"x"}, {"x"});
  p = Plan::Join(p, Plan::Scan("tiny3"), JoinType::kInner, {"y"}, {"y"});

  auto run = [&](bool reorder) {
    CoordinatorOptions opts;
    opts.optimizer.reorder_joins = reorder;
    opts.optimizer.recognize_intent = false;
    Coordinator coord(&cluster, opts);
    NEXUS_CHECK(coord.Execute(p).ok());  // warm-up
    double ms = 1e30;
    Dataset r;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer t;
      r = coord.Execute(p).ValueOrDie();
      ms = std::min(ms, t.ElapsedMillis());
    }
    return std::make_tuple(ms, r, coord.last_optimizer_stats());
  };
  auto [ms_written, r_written, opt_written] = run(false);
  auto [ms_reordered, r_reordered, opt_reordered] = run(true);
  NEXUS_CHECK(r_written.LogicallyEquals(r_reordered))
      << "join reorder changed the result";
  NEXUS_CHECK(opt_reordered.joins_reordered >= 1)
      << "DP enumerator left the skewed order in place";

  json->Record("e14_join3_written", r_written.num_rows(), ms_written);
  json->AnnotateOptimizer(opt_written);
  json->Record("e14_join3_reordered", r_reordered.num_rows(), ms_reordered);
  json->AnnotateOptimizer(opt_reordered);
  std::printf("E14 join order: written %.1fms  reordered %.1fms  (%.1fx, %lld rows)\n",
              ms_written, ms_reordered, ms_written / ms_reordered,
              static_cast<long long>(r_reordered.num_rows()));

  // Feedback visibility: a traced run must report estimated next to actual
  // rows per fragment (the q-error EXPLAIN ANALYZE line).
  {
    CoordinatorOptions opts;
    opts.optimizer.recognize_intent = false;
    Coordinator coord(&cluster, opts);
    std::string report = coord.ExplainAnalyze(p).ValueOrDie();
    NEXUS_CHECK(report.find("q-err") != std::string::npos)
        << "EXPLAIN ANALYZE lost the q-error report:\n" << report;
  }
}

// E14b: placement ablation. A tiny filtered slice of a large fact lives on
// rel_a, a bulky dimension on rel_b; the join can run on either server.
void RunPlacementArms(benchjson::Recorder* json) {
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("rel_a", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("rel_b", MakeRelationalProvider()).ok());
  Rng rng(11);

  const int64_t kFactRows = 200000;
  const int64_t kDimRows = 20000;

  SchemaPtr fact = Schema::Make({Field::Attr("k", DataType::kInt64),
                                 Field::Attr("g", DataType::kInt64),
                                 Field::Attr("v", DataType::kFloat64)})
                       .ValueOrDie();
  TableBuilder fb(fact);
  for (int64_t i = 0; i < kFactRows; ++i) {
    NEXUS_CHECK(fb.AppendRow({Value::Int64(rng.NextInt(0, 9999)),
                              Value::Int64(rng.NextInt(0, kDimRows - 1)),
                              Value::Float64(rng.NextDouble(0, 1))})
                    .ok());
  }
  NEXUS_CHECK(
      cluster.PutData("rel_a", "fact14", Dataset(fb.Finish().ValueOrDie())).ok());

  SchemaPtr dim = Schema::Make({Field::Attr("did", DataType::kInt64),
                                Field::Attr("pad", DataType::kString)})
                      .ValueOrDie();
  TableBuilder db(dim);
  for (int64_t i = 0; i < kDimRows; ++i) {
    NEXUS_CHECK(
        db.AppendRow({Value::Int64(i), Value::String(rng.NextString(32))}).ok());
  }
  NEXUS_CHECK(
      cluster.PutData("rel_b", "dim14", Dataset(db.Finish().ValueOrDie())).ok());

  // k == 77 keeps ~1/10000 of the fact. The legacy heuristic prices the
  // filtered side at half the fact (bulkier than the dim) and hosts the
  // join on rel_a, shipping the whole dim; statistics price it at ~20 rows.
  PlanPtr p = Plan::Select(Plan::Scan("fact14"), Eq(Col("k"), Lit(int64_t{77})));
  p = Plan::Join(p, Plan::Scan("dim14"), JoinType::kInner, {"g"}, {"did"});

  auto run = [&](bool cost_based) {
    CoordinatorOptions opts;
    opts.cost_based_placement = cost_based;
    opts.optimizer.recognize_intent = false;
    Coordinator coord(&cluster, opts);
    ExecutionMetrics m;
    WallTimer t;
    Dataset r = coord.Execute(p, &m).ValueOrDie();
    double ms = t.ElapsedMillis();
    return std::make_tuple(ms, r, m, coord.last_optimizer_stats());
  };
  auto [ms_h, r_h, m_h, opt_h] = run(false);
  auto [ms_c, r_c, m_c, opt_c] = run(true);
  NEXUS_CHECK(r_h.LogicallyEquals(r_c)) << "placement changed the result";
  NEXUS_CHECK(m_c.bytes_total <= m_h.bytes_total)
      << "cost-based placement shipped more than the heuristic: "
      << m_c.bytes_total << " vs " << m_h.bytes_total;

  json->RecordWire("e14_place_heuristic", r_h.num_rows(), ms_h, m_h.fragments,
                   m_h.messages, m_h.retries, m_h.bytes_total,
                   m_h.plan_cache_hits);
  json->AnnotateOptimizer(opt_h);
  json->RecordWire("e14_place_cost", r_c.num_rows(), ms_c, m_c.fragments,
                   m_c.messages, m_c.retries, m_c.bytes_total,
                   m_c.plan_cache_hits);
  json->AnnotateOptimizer(opt_c);
  std::printf(
      "E14 placement: heuristic %lld bytes on wire, cost-based %lld (%.1fx less)\n",
      static_cast<long long>(m_h.bytes_total),
      static_cast<long long>(m_c.bytes_total),
      m_c.bytes_total > 0
          ? static_cast<double>(m_h.bytes_total) / m_c.bytes_total
          : 0.0);
}

}  // namespace

int main() {
  const int64_t kFactRows = 150000;
  const int64_t kDimRows = 2000;

  std::printf("E7 Optimizer ablation: select-above-join pipeline, %lld x %lld rows\n\n",
              static_cast<long long>(kFactRows), static_cast<long long>(kDimRows));
  std::printf("%11s  %9s  %11s  %11s  %9s  %9s\n", "selectivity", "none(ms)",
              "+pushdown", "+pruning", "all(ms)", "speedup");

  benchjson::Recorder json("optimizer");
  for (double selectivity : {0.5, 0.1, 0.01, 0.001}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(42);
    SchemaPtr fact = Schema::Make({Field::Attr("id", DataType::kInt64),
                                   Field::Attr("dim_id", DataType::kInt64),
                                   Field::Attr("v", DataType::kFloat64),
                                   Field::Attr("pad1", DataType::kFloat64),
                                   Field::Attr("pad2", DataType::kString)})
                        .ValueOrDie();
    TableBuilder fb(fact);
    for (int64_t i = 0; i < kFactRows; ++i) {
      NEXUS_CHECK(fb.AppendRow({Value::Int64(i),
                                Value::Int64(rng.NextInt(0, kDimRows - 1)),
                                Value::Float64(rng.NextDouble(0, 1)),
                                Value::Float64(rng.NextDouble(0, 1)),
                                Value::String(rng.NextString(12))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "fact", Dataset(fb.Finish().ValueOrDie())).ok());
    SchemaPtr dim = Schema::Make({Field::Attr("did", DataType::kInt64),
                                  Field::Attr("label", DataType::kString)})
                        .ValueOrDie();
    TableBuilder db(dim);
    for (int64_t i = 0; i < kDimRows; ++i) {
      NEXUS_CHECK(db.AppendRow({Value::Int64(i), Value::String(rng.NextString(8))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "dim", Dataset(db.Finish().ValueOrDie())).ok());

    // Selection written *above* the join, as clients naturally do.
    PlanPtr p = Plan::Join(Plan::Scan("fact"), Plan::Scan("dim"),
                           JoinType::kInner, {"dim_id"}, {"did"});
    p = Plan::Select(p, Lt(Col("v"), Lit(selectivity)));
    p = Plan::Aggregate(p, {"label"}, {AggSpec{AggFunc::kSum, Col("v"), "sv"},
                                       AggSpec{AggFunc::kCount, nullptr, "n"}});

    auto run = [&](bool push, bool prune, bool fold) {
      CoordinatorOptions opts;
      opts.optimizer.push_selections = push;
      opts.optimizer.prune_columns = prune;
      opts.optimizer.fold_constants = fold;
      opts.optimizer.recognize_intent = false;
      Coordinator coord(&cluster, opts);
      // Warm-up, then best-of-3 timed runs (single-core box: take the
      // minimum to shed scheduler noise).
      NEXUS_CHECK(coord.Execute(p).ok());
      double ms = 1e30;
      Dataset r;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer t;
        r = coord.Execute(p).ValueOrDie();
        ms = std::min(ms, t.ElapsedMillis());
      }
      return std::make_tuple(ms, r, coord.last_optimizer_stats());
    };
    auto [ms_none, r_none, opt_none] = run(false, false, false);
    auto [ms_push, r_push, opt_push] = run(true, false, false);
    auto [ms_prune, r_prune, opt_prune] = run(false, true, false);
    auto [ms_all, r_all, opt_all] = run(true, true, true);
    NEXUS_CHECK(r_none.LogicallyEquals(r_all));
    NEXUS_CHECK(r_push.LogicallyEquals(r_all));
    NEXUS_CHECK(r_prune.LogicallyEquals(r_all));
    char sel[24];
    std::snprintf(sel, sizeof(sel), "sel_%.3f", selectivity);
    json.Record(std::string(sel) + "_none", kFactRows, ms_none);
    json.AnnotateOptimizer(opt_none);
    json.Record(std::string(sel) + "_pushdown", kFactRows, ms_push);
    json.AnnotateOptimizer(opt_push);
    json.Record(std::string(sel) + "_pruning", kFactRows, ms_prune);
    json.AnnotateOptimizer(opt_prune);
    json.Record(std::string(sel) + "_all", kFactRows, ms_all);
    json.AnnotateOptimizer(opt_all);

    std::printf("%11.3f  %9.1f  %11.1f  %11.1f  %9.1f  %8.2fx\n", selectivity,
                ms_none, ms_push, ms_prune, ms_all, ms_none / ms_all);
  }
  std::printf("\nshape expectation: pushdown wins grow as selectivity tightens\n");
  std::printf("(the join sees only surviving rows); pruning gives a roughly\n");
  std::printf("constant factor by dropping the padding columns early.\n\n");

  RunJoinOrderArms(&json);
  RunPlacementArms(&json);
  return 0;
}
