// E7 — Provider-side optimization (LINQ property): shipping whole
// expression trees "permits optimization and query planning at the
// Provider" — and at the coordinator. This bench ablates the optimizer's
// passes on a filter + join + aggregate pipeline.
//
// Arms: none / +pushdown / +pruning / all (pushdown + pruning + folding).
// Sweep the selection's selectivity; report wall time on the relational
// engine. Pushdown shrinks the join's build/probe inputs, pruning narrows
// the scans.
#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

int main() {
  const int64_t kFactRows = 150000;
  const int64_t kDimRows = 2000;

  std::printf("E7 Optimizer ablation: select-above-join pipeline, %lld x %lld rows\n\n",
              static_cast<long long>(kFactRows), static_cast<long long>(kDimRows));
  std::printf("%11s  %9s  %11s  %11s  %9s  %9s\n", "selectivity", "none(ms)",
              "+pushdown", "+pruning", "all(ms)", "speedup");

  benchjson::Recorder json("optimizer");
  for (double selectivity : {0.5, 0.1, 0.01, 0.001}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(42);
    SchemaPtr fact = Schema::Make({Field::Attr("id", DataType::kInt64),
                                   Field::Attr("dim_id", DataType::kInt64),
                                   Field::Attr("v", DataType::kFloat64),
                                   Field::Attr("pad1", DataType::kFloat64),
                                   Field::Attr("pad2", DataType::kString)})
                        .ValueOrDie();
    TableBuilder fb(fact);
    for (int64_t i = 0; i < kFactRows; ++i) {
      NEXUS_CHECK(fb.AppendRow({Value::Int64(i),
                                Value::Int64(rng.NextInt(0, kDimRows - 1)),
                                Value::Float64(rng.NextDouble(0, 1)),
                                Value::Float64(rng.NextDouble(0, 1)),
                                Value::String(rng.NextString(12))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "fact", Dataset(fb.Finish().ValueOrDie())).ok());
    SchemaPtr dim = Schema::Make({Field::Attr("did", DataType::kInt64),
                                  Field::Attr("label", DataType::kString)})
                        .ValueOrDie();
    TableBuilder db(dim);
    for (int64_t i = 0; i < kDimRows; ++i) {
      NEXUS_CHECK(db.AppendRow({Value::Int64(i), Value::String(rng.NextString(8))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "dim", Dataset(db.Finish().ValueOrDie())).ok());

    // Selection written *above* the join, as clients naturally do.
    PlanPtr p = Plan::Join(Plan::Scan("fact"), Plan::Scan("dim"),
                           JoinType::kInner, {"dim_id"}, {"did"});
    p = Plan::Select(p, Lt(Col("v"), Lit(selectivity)));
    p = Plan::Aggregate(p, {"label"}, {AggSpec{AggFunc::kSum, Col("v"), "sv"},
                                       AggSpec{AggFunc::kCount, nullptr, "n"}});

    auto run = [&](bool push, bool prune, bool fold) {
      CoordinatorOptions opts;
      opts.optimizer.push_selections = push;
      opts.optimizer.prune_columns = prune;
      opts.optimizer.fold_constants = fold;
      opts.optimizer.recognize_intent = false;
      Coordinator coord(&cluster, opts);
      // Warm-up, then best-of-3 timed runs (single-core box: take the
      // minimum to shed scheduler noise).
      NEXUS_CHECK(coord.Execute(p).ok());
      double ms = 1e30;
      Dataset r;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer t;
        r = coord.Execute(p).ValueOrDie();
        ms = std::min(ms, t.ElapsedMillis());
      }
      return std::make_pair(ms, r);
    };
    auto [ms_none, r_none] = run(false, false, false);
    auto [ms_push, r_push] = run(true, false, false);
    auto [ms_prune, r_prune] = run(false, true, false);
    auto [ms_all, r_all] = run(true, true, true);
    NEXUS_CHECK(r_none.LogicallyEquals(r_all));
    NEXUS_CHECK(r_push.LogicallyEquals(r_all));
    NEXUS_CHECK(r_prune.LogicallyEquals(r_all));
    char sel[24];
    std::snprintf(sel, sizeof(sel), "sel_%.3f", selectivity);
    json.Record(std::string(sel) + "_none", kFactRows, ms_none);
    json.Record(std::string(sel) + "_pushdown", kFactRows, ms_push);
    json.Record(std::string(sel) + "_pruning", kFactRows, ms_prune);
    json.Record(std::string(sel) + "_all", kFactRows, ms_all);

    std::printf("%11.3f  %9.1f  %11.1f  %11.1f  %9.1f  %8.2fx\n", selectivity,
                ms_none, ms_push, ms_prune, ms_all, ms_none / ms_all);
  }
  std::printf("\nshape expectation: pushdown wins grow as selectivity tightens\n");
  std::printf("(the join sees only surviving rows); pruning gives a roughly\n");
  std::printf("constant factor by dropping the padding columns early.\n");
  return 0;
}
