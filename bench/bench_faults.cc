// E10 — Fault tolerance: query completion and overhead under an unreliable
// network. Real federations lose messages and drop servers; the paper's
// "intermediates pass directly between servers" plan shape only survives
// production if the coordinator can retry, time out, and replan around
// failures.
//
// Method: a three-server cluster (relstore + a replica holder + reference)
// runs a mixed workload — a relational pipeline and a cross-server join —
// while the transport drops each message with probability p. Sweep p; each
// cell runs Q queries and reports the completion rate, retries, failovers,
// wasted (lost) bytes, and the simulated-time overhead versus p = 0. One
// extra row scripts a server-down window to exercise failover replanning.
#include <cstdio>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/str_util.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

struct CellResult {
  int completed = 0;
  int attempted = 0;
  int64_t retries = 0;
  int64_t failovers = 0;
  int64_t timeouts = 0;
  int64_t fragments = 0;
  int64_t messages = 0;
  int64_t wasted_bytes = 0;
  double sim_seconds = 0.0;
  OptimizerStats opt;
};

void LoadData(Cluster* cluster) {
  Rng rng(99);
  SchemaPtr events = Schema::Make({Field::Attr("k", DataType::kInt64),
                                   Field::Attr("v", DataType::kFloat64)})
                         .ValueOrDie();
  TableBuilder eb(events);
  for (int64_t i = 0; i < 20000; ++i) {
    NEXUS_CHECK(eb.AppendRow({Value::Int64(rng.NextInt(0, 99)),
                              Value::Float64(rng.NextDouble(0, 100))})
                    .ok());
  }
  NEXUS_CHECK(
      cluster->PutData("relstore", "events", Dataset(eb.Finish().ValueOrDie()))
          .ok());
  SchemaPtr dims = Schema::Make({Field::Attr("id", DataType::kInt64),
                                 Field::Attr("w", DataType::kFloat64)})
                       .ValueOrDie();
  TableBuilder db(dims);
  for (int64_t i = 0; i < 100; ++i) {
    NEXUS_CHECK(
        db.AppendRow({Value::Int64(i), Value::Float64(rng.NextDouble(0, 1))})
            .ok());
  }
  NEXUS_CHECK(
      cluster->PutData("relsmall", "dims", Dataset(db.Finish().ValueOrDie()))
          .ok());
  // Replicas: the redundancy failover replanning routes through.
  NEXUS_CHECK(cluster->Replicate("events", "reference").ok());
  NEXUS_CHECK(cluster->Replicate("dims", "reference").ok());
}

CellResult RunCell(double drop_probability, bool with_down_window,
                   int queries) {
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("relsmall", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
  LoadData(&cluster);

  FaultOptions f;
  f.enabled = drop_probability > 0.0 || with_down_window;
  f.drop_probability = drop_probability;
  f.seed = 7;
  if (with_down_window) {
    f.down_windows = {{"relstore", 0.0, 0.5}};
  }
  cluster.transport()->SetFaultOptions(f);

  CoordinatorOptions opts;
  opts.retry.max_attempts = 6;
  opts.retry.fragment_timeout_seconds = 2.0;
  Coordinator coord(&cluster, opts);

  PlanPtr pipeline = Plan::Scan("events");
  pipeline = Plan::Select(pipeline, Gt(Col("v"), Lit(25.0)));
  pipeline = Plan::Extend(pipeline, {{"w2", Mul(Col("v"), Col("v"))}});
  pipeline = Plan::Aggregate(pipeline, {"k"},
                             {AggSpec{AggFunc::kSum, Col("w2"), "s"}});
  PlanPtr join = Plan::Join(Plan::Scan("dims"), Plan::Scan("events"),
                            JoinType::kInner, {"id"}, {"k"});

  CellResult cell;
  for (int q = 0; q < queries; ++q) {
    const PlanPtr& p = (q % 2 == 0) ? pipeline : join;
    ExecutionMetrics m;
    ++cell.attempted;
    if (coord.Execute(p, &m).ok()) ++cell.completed;
    cell.retries += m.retries;
    cell.failovers += m.failovers;
    cell.timeouts += m.timeouts;
    cell.fragments += m.fragments;
    cell.messages += m.messages;
  }
  cell.wasted_bytes = cluster.transport()->failed_bytes();
  cell.sim_seconds = cluster.transport()->simulated_seconds();
  cell.opt = coord.last_optimizer_stats();
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "E10 Fault tolerance: drop probability vs completion and cost\n\n");
  const int kQueries = 20;
  benchjson::Recorder json("faults");
  CellResult base = RunCell(0.0, /*with_down_window=*/false, kQueries);
  std::printf("%9s | %9s %8s %9s %8s | %10s %9s %9s\n", "drop p", "completed",
              "retries", "failovers", "timeouts", "wasted", "sim(ms)",
              "overhead");
  auto report = [&](const char* label, const CellResult& c) {
    json.RecordFederated(std::string("drop_") + label + "_sim", c.attempted,
                         c.sim_seconds * 1e3, c.fragments, c.messages,
                         c.retries);
    json.AnnotateOptimizer(c.opt);
    std::printf("%9s | %6d/%2d %8lld %9lld %8lld | %10s %9.2f %8.2fx\n", label,
                c.completed, c.attempted, static_cast<long long>(c.retries),
                static_cast<long long>(c.failovers),
                static_cast<long long>(c.timeouts),
                FormatBytes(static_cast<uint64_t>(c.wasted_bytes)).c_str(),
                c.sim_seconds * 1e3, c.sim_seconds / base.sim_seconds);
  };
  report("0", base);
  for (double p : {0.01, 0.05, 0.10, 0.20}) {
    CellResult c = RunCell(p, /*with_down_window=*/false, kQueries);
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", p);
    report(label, c);
  }
  CellResult down = RunCell(0.05, /*with_down_window=*/true, kQueries);
  report("0.05+down", down);

  std::printf(
      "\nshape expectation: completion stays at 100%% well past p = 0.05 (the\n"
      "retry ladder absorbs isolated drops); wasted bytes and simulated time\n"
      "grow with p; the down-window row adds failovers — queries replan onto\n"
      "the replica holder instead of waiting out the outage.\n");
  return 0;
}
