// E19 — Streaming appends + incremental view maintenance: the hot refresh
// path recomputes O(|Δ|), not O(|table|). A filter→join→aggregate view is
// registered over a 200k-row base table; each round appends a 1% delta and
// refreshes both arms:
//
//   incremental — ViewRegistry::Refresh folds only the delta through the
//                 retained join/aggregate state
//   full        — ExecuteViewPlan recomputes the whole plan from scratch
//
// A second section drives a client-side Iterate whose loop state grows each
// round, with NEXUS_INCREMENTAL off then on, to measure what %NXB1-DELTA
// bindings save on the wire.
//
// Gates (bench exits nonzero; CI's JSON gate re-checks the numbers): every
// refresh byte-identical to the full recompute, median speedup >= 5x at a
// 1% delta, retained state bounded (it may not grow faster than the data),
// and the delta-Iterate arm ships fewer bytes than the full-ship arm for a
// byte-identical result.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/plan.h"
#include "exec/incremental/policy.h"
#include "exec/incremental/view.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

constexpr int64_t kBaseRows = 200000;
constexpr int64_t kSideRows = 4000;
constexpr int64_t kDeltaRows = kBaseRows / 100;  // the 1% refresh batch
constexpr int kRounds = 8;
constexpr int64_t kKeyRange = 4000;
constexpr int64_t kGroups = 64;

SchemaPtr BaseSchema() {
  return Schema::Make({Field::Attr("k", DataType::kInt64),
                       Field::Attr("g", DataType::kInt64),
                       Field::Attr("v", DataType::kFloat64)})
      .ValueOrDie();
}

TablePtr RandomBatch(Rng* rng, int64_t rows) {
  TableBuilder b(BaseSchema());
  for (int64_t i = 0; i < rows; ++i) {
    NEXUS_CHECK(b.AppendRow({Value::Int64(rng->NextInt(0, kKeyRange - 1)),
                             Value::Int64(rng->NextInt(0, kGroups - 1)),
                             Value::Float64(static_cast<double>(
                                 rng->NextInt(-1000, 1000)))})
                    .ok());
  }
  return b.Finish().ValueOrDie();
}

TablePtr SideTable() {
  Rng rng(77);
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("w", DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t i = 0; i < kSideRows; ++i) {
    NEXUS_CHECK(b.AppendRow({Value::Int64(i),
                             Value::Float64(static_cast<double>(i % 10))})
                    .ok());
  }
  return b.Finish().ValueOrDie();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  benchjson::Recorder rec("incremental");

  // ----- Refresh arms: incremental vs full recompute at a 1% delta. ------
  Rng rng(19);
  InMemoryCatalog catalog;
  NEXUS_CHECK(catalog.Put("base", Dataset(RandomBatch(&rng, kBaseRows))).ok());
  NEXUS_CHECK(catalog.Put("side", Dataset(SideTable())).ok());

  PlanPtr view = Plan::Aggregate(
      Plan::Join(Plan::Select(Plan::Scan("base"), Gt(Col("v"), Lit(0.0))),
                 Plan::Scan("side"), JoinType::kInner, {"k"}, {"k"}),
      {"g"},
      {AggSpec{AggFunc::kSum, Col("v"), "sv"},
       AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kMax, Col("w"), "hi"}});

  incremental::ViewRegistry reg(&catalog);
  NEXUS_CHECK(reg.Register("hot", view).ok());
  const int64_t state_after_build = reg.state_bytes();

  std::vector<double> inc_ms, full_ms;
  bool identical = true;
  int64_t delta_rows_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    NEXUS_CHECK(
        catalog.Append("base", Dataset(RandomBatch(&rng, kDeltaRows))).ok());
    incremental::RefreshInfo info;
    WallTimer ti;
    TablePtr got = reg.Refresh("hot", &info).ValueOrDie();
    inc_ms.push_back(ti.ElapsedMillis());
    WallTimer tf;
    TablePtr want = incremental::ExecuteViewPlan(*view, catalog).ValueOrDie();
    full_ms.push_back(tf.ElapsedMillis());
    identical = identical && got->Equals(*want) && info.incremental;
    delta_rows_total += info.delta_rows;
  }
  const int64_t state_after = reg.state_bytes();
  const double inc_med = Median(inc_ms);
  const double full_med = Median(full_ms);
  const double speedup = full_med / std::max(inc_med, 1e-9);
  // Bounded state: the retained footprint may grow with the data (the join
  // build sides legitimately hold every row) but not faster than it.
  const double data_growth =
      static_cast<double>(kBaseRows + kRounds * kDeltaRows) /
      static_cast<double>(kBaseRows);
  const bool state_bounded =
      state_after <=
      static_cast<int64_t>(static_cast<double>(state_after_build) *
                           data_growth * 1.5);

  rec.Record("e19_refresh_incremental", delta_rows_total, inc_med);
  rec.Record("e19_refresh_full", kBaseRows + kRounds * kDeltaRows, full_med);
  rec.Record("e19_refresh_speedup_x", 0, speedup);
  rec.Record("e19_refresh_identical", identical ? 1 : 0, 0.0);
  rec.Record("e19_state_bytes_initial", state_after_build, 0.0);
  rec.Record("e19_state_bytes_final", state_after, 0.0);
  rec.Record("e19_state_bounded", state_bounded ? 1 : 0, 0.0);

  std::printf("E19 incremental refresh (1%% delta, %d rounds):\n", kRounds);
  std::printf("  incremental %.2f ms vs full %.2f ms -> %.1fx, identical=%d\n",
              inc_med, full_med, speedup, identical ? 1 : 0);
  std::printf("  state %lld B -> %lld B (bounded=%d)\n",
              static_cast<long long>(state_after_build),
              static_cast<long long>(state_after), state_bounded ? 1 : 0);

  // ----- Delta-driven Iterate: loop bindings as %NXB1-DELTA tails. -------
  auto run_loop = [&](bool incremental_on, ExecutionMetrics* m) {
    incremental::SetIncrementalOverride(incremental_on);
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    TableBuilder b(Schema::Make({Field::Attr("v", DataType::kInt64)})
                       .ValueOrDie());
    for (int64_t i = 0; i < 20000; ++i) {
      NEXUS_CHECK(b.AppendRow({Value::Int64(i)}).ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "state0", Dataset(b.Finish().ValueOrDie()))
            .ok());
    TableBuilder vb(
        Schema::Make({Field::Attr("v", DataType::kInt64)}).ValueOrDie());
    NEXUS_CHECK(vb.AppendRow({Value::Int64(-1)}).ok());
    IterateOp op;
    op.body = Plan::Union(Plan::LoopVar(),
                          Plan::Values(Dataset(vb.Finish().ValueOrDie())));
    op.max_iters = 12;
    PlanPtr loop = Plan::Iterate(Plan::Scan("state0"), op);
    CoordinatorOptions opts;
    opts.provider_side_iteration = false;
    Coordinator coord(&cluster, opts);
    WallTimer t;
    TablePtr out = coord.Execute(loop, m).ValueOrDie().table();
    double ms = t.ElapsedMillis();
    incremental::ClearIncrementalOverride();
    return std::make_pair(out, ms);
  };

  ExecutionMetrics m_off, m_on;
  auto [full_out, full_loop_ms] = run_loop(false, &m_off);
  auto [delta_out, delta_loop_ms] = run_loop(true, &m_on);
  const bool loop_identical = delta_out->Equals(*full_out);
  const bool loop_fewer_bytes = m_on.bytes_total < m_off.bytes_total;

  rec.RecordWire("e19_iterate_full_ship", full_out->num_rows(), full_loop_ms,
                 m_off.fragments, m_off.messages, m_off.retries,
                 m_off.bytes_total, m_off.plan_cache_hits);
  rec.RecordWire("e19_iterate_delta_ship", delta_out->num_rows(),
                 delta_loop_ms, m_on.fragments, m_on.messages, m_on.retries,
                 m_on.bytes_total, m_on.plan_cache_hits);
  rec.Record("e19_iterate_delta_bindings", m_on.delta_bindings, 0.0);
  rec.Record("e19_iterate_delta_bytes_saved", m_on.delta_bytes_saved, 0.0);
  rec.Record("e19_iterate_identical", loop_identical ? 1 : 0, 0.0);
  rec.Record("e19_iterate_fewer_bytes", loop_fewer_bytes ? 1 : 0, 0.0);

  std::printf("E19 delta-Iterate (12 rounds, 20k-row loop state):\n");
  std::printf(
      "  full-ship %lld B, delta-ship %lld B (%lld delta bindings, saved "
      "%lld B), identical=%d\n",
      static_cast<long long>(m_off.bytes_total),
      static_cast<long long>(m_on.bytes_total),
      static_cast<long long>(m_on.delta_bindings),
      static_cast<long long>(m_on.delta_bytes_saved), loop_identical ? 1 : 0);

  const bool ok = identical && speedup >= 5.0 && state_bounded &&
                  loop_identical && loop_fewer_bytes &&
                  m_on.delta_bindings > 0;
  if (!ok) std::printf("E19 FAILED correctness gates\n");
  return ok ? 0 : 1;
}
