// E3 — Intent Preservation (desideratum 3): "if the original function is
// matrix multiply, it should be recognizable as such at a server that has a
// direct implementation of matrix multiply."
//
// Method: the client writes matrix multiplication *as a relational
// pipeline* (join + multiply + sum-aggregate), the way an application built
// on a tabular API would. Two arms:
//   recognition OFF  the pipeline runs as written on the relational engine;
//   recognition ON   the optimizer recognizes the pipeline as MatMul and
//                    the planner routes it to the linear-algebra engine.
// Sweep n; also run the intent op written directly. Report wall times and
// the speedup recognition buys.
#include <cstdio>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

TablePtr RandomMatrix(Rng* rng, int64_t rows, int64_t cols, const char* d0,
                      const char* d1, const char* attr) {
  SchemaPtr s = Schema::Make({Field::Dim(d0), Field::Dim(d1),
                              Field::Attr(attr, DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      NEXUS_CHECK(b.AppendRow({Value::Int64(r), Value::Int64(c),
                               Value::Float64(rng->NextDouble(0.1, 1.0))})
                      .ok());
    }
  }
  return b.Finish().ValueOrDie();
}

// Matrix multiply written as a relational pipeline over tagged tables.
PlanPtr HandWrittenMatMul() {
  PlanPtr right = Plan::Rename(Plan::Scan("B"),
                               {{"k", "k2"}, {"j", "j2"}, {"b", "bv"}});
  PlanPtr joined =
      Plan::Join(Plan::Scan("A"), right, JoinType::kInner, {"k"}, {"k2"});
  PlanPtr prod = Plan::Extend(joined, {{"p", Mul(Col("a"), Col("bv"))}});
  PlanPtr agg = Plan::Aggregate(prod, {"i", "j2"},
                                {AggSpec{AggFunc::kSum, Col("p"), "c"}});
  return Plan::Select(agg, Ne(Col("c"), Lit(0)));
}

}  // namespace

int main() {
  std::printf("E3 Intent preservation: matmul written as join+multiply+sum\n");
  std::printf("recognition OFF -> runs as written on relstore;\n");
  std::printf("recognition ON  -> rewritten to MatMul, placed on linalg\n\n");
  std::printf("%6s  %14s  %14s  %9s  %14s\n", "n", "as-written(ms)",
              "recognized(ms)", "speedup", "intent-op(ms)");

  benchjson::Recorder json("intent");
  for (int64_t n : {24, 48, 96, 160}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("linalg", MakeLinalgProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(static_cast<uint64_t>(n));
    TablePtr a = RandomMatrix(&rng, n, n, "i", "k", "a");
    TablePtr b = RandomMatrix(&rng, n, n, "k", "j", "b");
    // Data lives on the relational server (the client's home system).
    NEXUS_CHECK(cluster.PutData("relstore", "A", Dataset(a)).ok());
    NEXUS_CHECK(cluster.PutData("relstore", "B", Dataset(b)).ok());

    PlanPtr pipeline = HandWrittenMatMul();

    CoordinatorOptions off;
    off.optimizer.recognize_intent = false;
    Coordinator coord_off(&cluster, off);
    WallTimer t1;
    Dataset as_written = coord_off.Execute(pipeline).ValueOrDie();
    double ms_off = t1.ElapsedMillis();

    CoordinatorOptions on;
    on.optimizer.recognize_intent = true;
    Coordinator coord_on(&cluster, on);
    WallTimer t2;
    Dataset recognized = coord_on.Execute(pipeline).ValueOrDie();
    double ms_on = t2.ElapsedMillis();

    // The intent op written directly, for reference.
    PlanPtr direct = Plan::MatMul(Plan::Scan("A"), Plan::Scan("B"), "c");
    WallTimer t3;
    Dataset intent = coord_on.Execute(direct).ValueOrDie();
    double ms_direct = t3.ElapsedMillis();

    json.Record("as_written", n * n, ms_off);
    json.AnnotateOptimizer(coord_off.last_optimizer_stats());
    json.Record("recognized", n * n, ms_on);
    json.AnnotateOptimizer(coord_on.last_optimizer_stats());
    json.Record("intent_op", n * n, ms_direct);
    json.AnnotateOptimizer(coord_on.last_optimizer_stats());
    NEXUS_CHECK(as_written.LogicallyEquals(recognized)) << "n=" << n;
    std::printf("%6lld  %14.2f  %14.2f  %8.2fx  %14.2f\n",
                static_cast<long long>(n), ms_off, ms_on, ms_off / ms_on,
                ms_direct);
    (void)intent;
  }
  std::printf("\nshape expectation: the recognized arm wins and the gap widens\n");
  std::printf("with n (hash join + boxed aggregation vs blocked GEMM).\n");
  return 0;
}
