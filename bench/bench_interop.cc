// E4 — Server Interoperation (desideratum 4): "an algebra query that spans
// servers should be realizable as a plan where intermediate results pass
// directly between servers, rather than being routed through the
// application or a middle tier."
//
// Method: C = A x B with A, B stored on the array server and the product
// executed on the linear-algebra server. The coordinator moves both inputs
// across the server boundary either directly or relayed through the client.
// Sweep the matrix size; report bytes through the client, message counts,
// and simulated network time (1 ms latency, 1 Gbit/s links).
#include <cstdio>

#include "bench_json.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "common/random.h"
#include "federation/coordinator.h"

using namespace nexus;  // NOLINT

namespace {

TablePtr RandomMatrix(Rng* rng, int64_t n, const char* d0, const char* d1,
                      const char* attr) {
  SchemaPtr s = Schema::Make({Field::Dim(d0), Field::Dim(d1),
                              Field::Attr(attr, DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      NEXUS_CHECK(b.AppendRow({Value::Int64(r), Value::Int64(c),
                               Value::Float64(rng->NextDouble(0.1, 1.0))})
                      .ok());
    }
  }
  return b.Finish().ValueOrDie();
}

}  // namespace

int main() {
  std::printf("E4 Server interoperation: arraydb -> linalg matrix pipeline\n");
  std::printf("direct = intermediates server->server; relay = through client\n\n");
  std::printf("%6s  %12s | %10s %9s %9s | %10s %9s %9s | %7s\n", "n",
              "intermediate", "thru-cli", "msgs", "sim(ms)", "thru-cli",
              "msgs", "sim(ms)", "ratio");
  std::printf("%6s  %12s | %30s | %30s | %7s\n", "", "", "---------- direct ---------",
              "---------- relay ----------", "bytes");

  benchjson::Recorder json("interop");
  for (int64_t n : {16, 32, 64, 128}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("arraydb", MakeArrayProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("linalg", MakeLinalgProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(static_cast<uint64_t>(n) + 17);
    NEXUS_CHECK(cluster
                    .PutData("arraydb", "A",
                             Dataset(RandomMatrix(&rng, n, "i", "k", "a")))
                    .ok());
    NEXUS_CHECK(cluster
                    .PutData("arraydb", "B",
                             Dataset(RandomMatrix(&rng, n, "k", "j", "b")))
                    .ok());
    PlanPtr mm = Plan::MatMul(Plan::Scan("A"), Plan::Scan("B"), "c");

    CoordinatorOptions direct;
    direct.transfer_mode = TransferMode::kDirect;
    Coordinator dc(&cluster, direct);
    ExecutionMetrics dm;
    Dataset r1 = dc.Execute(mm, &dm).ValueOrDie();

    CoordinatorOptions relay;
    relay.transfer_mode = TransferMode::kRelay;
    Coordinator rc(&cluster, relay);
    ExecutionMetrics rm;
    Dataset r2 = rc.Execute(mm, &rm).ValueOrDie();

    NEXUS_CHECK(r1.LogicallyEquals(r2));
    json.Record("direct_sim", n * n, dm.simulated_seconds * 1e3);
    json.AnnotateOptimizer(dc.last_optimizer_stats());
    json.Record("relay_sim", n * n, rm.simulated_seconds * 1e3);
    json.AnnotateOptimizer(rc.last_optimizer_stats());
    int64_t intermediate = dm.data_bytes - r1.ByteSize();
    double ratio = dm.bytes_through_client > 0
                       ? static_cast<double>(rm.bytes_through_client) /
                             static_cast<double>(dm.bytes_through_client)
                       : 0.0;
    std::printf("%6lld  %12s | %10s %9lld %9.2f | %10s %9lld %9.2f | %6.2fx\n",
                static_cast<long long>(n),
                FormatBytes(static_cast<uint64_t>(intermediate)).c_str(),
                FormatBytes(static_cast<uint64_t>(dm.bytes_through_client)).c_str(),
                static_cast<long long>(dm.messages), dm.simulated_seconds * 1e3,
                FormatBytes(static_cast<uint64_t>(rm.bytes_through_client)).c_str(),
                static_cast<long long>(rm.messages), rm.simulated_seconds * 1e3,
                ratio);
  }
  std::printf("\nshape expectation: through-client bytes stay ~flat (result only)\n");
  std::printf("under direct transfer but grow with the inputs under relay; the\n");
  std::printf("gap widens with n.\n");
  return 0;
}
