// E1 — Coverage (desideratum 1): "Big Data algebra should express the
// operations commonly requested of data and analysis servers. It should at
// least span standard relational and array operations."
//
// Method: a catalogue of canonical operations drawn from relational algebra
// / SQL, array-database (SciDB-style) operator sets, linear algebra, and
// graph analytics. For each entry we *construct the algebra plan and
// type-check it* against a demonstration schema — an operation counts as
// covered only if the plan validates. Prints the coverage matrix and totals.
#include <cstdio>
#include <map>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/schema_inference.h"
#include "expr/builder.h"
#include "frontend/bdl.h"
#include "types/table.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

struct CatalogueEntry {
  const char* category;
  const char* operation;
  std::function<Result<PlanPtr>()> build;
};

void FillDemoCatalog(InMemoryCatalog& cat) {
  auto t = [](std::vector<Field> fields) {
    return Dataset(Table::Empty(Schema::Make(std::move(fields)).ValueOrDie()));
  };
  NEXUS_CHECK(cat.Put("r", t({Field::Attr("a", DataType::kInt64),
                              Field::Attr("b", DataType::kFloat64),
                              Field::Attr("s", DataType::kString)}))
                  .ok());
  NEXUS_CHECK(cat.Put("r2", t({Field::Attr("a", DataType::kInt64),
                               Field::Attr("b", DataType::kFloat64),
                               Field::Attr("s", DataType::kString)}))
                  .ok());
  NEXUS_CHECK(cat.Put("dim_table", t({Field::Attr("k", DataType::kInt64),
                                      Field::Attr("name", DataType::kString)}))
                  .ok());
  NEXUS_CHECK(cat.Put("arr", t({Field::Dim("i"), Field::Dim("j"),
                                Field::Attr("v", DataType::kFloat64)}))
                  .ok());
  NEXUS_CHECK(cat.Put("arr2", t({Field::Dim("i"), Field::Dim("j"),
                                 Field::Attr("w", DataType::kFloat64)}))
                  .ok());
  NEXUS_CHECK(cat.Put("mat_a", t({Field::Dim("i"), Field::Dim("k"),
                                  Field::Attr("a", DataType::kFloat64)}))
                  .ok());
  NEXUS_CHECK(cat.Put("mat_b", t({Field::Dim("k"), Field::Dim("j"),
                                  Field::Attr("b", DataType::kFloat64)}))
                  .ok());
  NEXUS_CHECK(cat.Put("edges", t({Field::Attr("src", DataType::kInt64),
                                  Field::Attr("dst", DataType::kInt64)}))
                  .ok());
}

std::vector<CatalogueEntry> Catalogue() {
  auto scan = [] { return Plan::Scan("r"); };
  return {
      // --- relational algebra / SQL core ---
      {"relational", "selection (WHERE)",
       [=]() -> Result<PlanPtr> { return Plan::Select(scan(), Gt(Col("a"), Lit(1))); }},
      {"relational", "projection",
       [=]() -> Result<PlanPtr> { return Plan::Project(scan(), {"a"}); }},
      {"relational", "computed column (map)",
       [=]() -> Result<PlanPtr> {
         return Plan::Extend(scan(), {{"c", Mul(Col("b"), Lit(2.0))}});
       }},
      {"relational", "inner equi-join",
       [=]() -> Result<PlanPtr> {
         return Plan::Join(scan(), Plan::Scan("dim_table"), JoinType::kInner,
                           {"a"}, {"k"});
       }},
      {"relational", "left outer join",
       [=]() -> Result<PlanPtr> {
         return Plan::Join(scan(), Plan::Scan("dim_table"), JoinType::kLeft,
                           {"a"}, {"k"});
       }},
      {"relational", "semi join (EXISTS)",
       [=]() -> Result<PlanPtr> {
         return Plan::Join(scan(), Plan::Scan("dim_table"), JoinType::kSemi,
                           {"a"}, {"k"});
       }},
      {"relational", "anti join (NOT EXISTS)",
       [=]() -> Result<PlanPtr> {
         return Plan::Join(scan(), Plan::Scan("dim_table"), JoinType::kAnti,
                           {"a"}, {"k"});
       }},
      {"relational", "theta join (non-equi)",
       [=]() -> Result<PlanPtr> {
         return Plan::Join(scan(), Plan::Scan("dim_table"), JoinType::kInner, {},
                           {}, Gt(Col("a"), Col("k")));
       }},
      {"relational", "grouped aggregation",
       [=]() -> Result<PlanPtr> {
         return Plan::Aggregate(scan(), {"s"},
                                {AggSpec{AggFunc::kSum, Col("b"), "t"}});
       }},
      {"relational", "global aggregation",
       [=]() -> Result<PlanPtr> {
         return Plan::Aggregate(scan(), {},
                                {AggSpec{AggFunc::kCount, nullptr, "n"},
                                 AggSpec{AggFunc::kAvg, Col("b"), "m"}});
       }},
      {"relational", "sort (ORDER BY)",
       [=]() -> Result<PlanPtr> { return Plan::Sort(scan(), {{"b", false}}); }},
      {"relational", "top-k (LIMIT/OFFSET)",
       [=]() -> Result<PlanPtr> {
         return Plan::Limit(Plan::Sort(scan(), {{"b", false}}), 10, 5);
       }},
      {"relational", "duplicate elimination",
       [=]() -> Result<PlanPtr> { return Plan::Distinct(scan()); }},
      {"relational", "union all",
       [=]() -> Result<PlanPtr> { return Plan::Union(scan(), Plan::Scan("r2")); }},
      {"relational", "rename",
       [=]() -> Result<PlanPtr> { return Plan::Rename(scan(), {{"a", "id"}}); }},
      {"relational", "having (post-agg filter)",
       [=]() -> Result<PlanPtr> {
         return Plan::Select(
             Plan::Aggregate(scan(), {"s"}, {AggSpec{AggFunc::kSum, Col("b"), "t"}}),
             Gt(Col("t"), Lit(5.0)));
       }},
      {"relational", "string functions",
       [=]() -> Result<PlanPtr> {
         return Plan::Extend(scan(), {{"u", Func("upper", {Col("s")})},
                                      {"len", Func("length", {Col("s")})}});
       }},
      {"relational", "conditional expression (CASE)",
       [=]() -> Result<PlanPtr> {
         return Plan::Extend(
             scan(), {{"sign", Func("if", {Gt(Col("b"), Lit(0.0)), Lit(1), Lit(-1)})}});
       }},
      {"relational", "null handling (COALESCE / IS NULL)",
       [=]() -> Result<PlanPtr> {
         return Plan::Extend(scan(), {{"nb", Func("coalesce", {Col("b"), Lit(0.0)})},
                                      {"missing", Func("is_null", {Col("b")})}});
       }},
      // --- array operations (SciDB-style) ---
      {"array", "subarray (slice by coordinate box)",
       [] { return Result<PlanPtr>(Plan::Slice(Plan::Scan("arr"), {{"i", 0, 10}, {"j", 0, 10}})); }},
      {"array", "coordinate shift (translate origin)",
       [] { return Result<PlanPtr>(Plan::Shift(Plan::Scan("arr"), {{"i", -5}})); }},
      {"array", "regrid (block aggregate / downsample)",
       [] {
         return Result<PlanPtr>(
             Plan::Regrid(Plan::Scan("arr"), {{"i", 4}, {"j", 4}}, AggFunc::kAvg));
       }},
      {"array", "moving window aggregate",
       [] {
         return Result<PlanPtr>(
             Plan::Window(Plan::Scan("arr"), {{"i", 1}, {"j", 1}}, AggFunc::kMax));
       }},
      {"array", "transpose (dimension permutation)",
       [] { return Result<PlanPtr>(Plan::Transpose(Plan::Scan("arr"), {"j", "i"})); }},
      {"array", "cell-wise apply",
       [] {
         return Result<PlanPtr>(Plan::Extend(
             Plan::Scan("arr"), {{"v2", Func("sqrt", {Func("abs", {Col("v")})})}}));
       }},
      {"array", "cell-wise filter (sparsify)",
       [] {
         return Result<PlanPtr>(Plan::Select(Plan::Scan("arr"), Gt(Col("v"), Lit(0.0))));
       }},
      {"array", "elementwise combine of two arrays",
       [] {
         return Result<PlanPtr>(
             Plan::ElemWise(Plan::Scan("arr"), Plan::Scan("arr2"), BinaryOp::kAdd));
       }},
      {"array", "dimension-aware aggregate (collapse one dim)",
       [] {
         return Result<PlanPtr>(Plan::Aggregate(
             Plan::Scan("arr"), {"i"}, {AggSpec{AggFunc::kSum, Col("v"), "row_sum"}}));
       }},
      {"array", "array -> table (unbox)",
       [] { return Result<PlanPtr>(Plan::Unbox(Plan::Scan("arr"))); }},
      {"array", "table -> array (rebox)",
       [] { return Result<PlanPtr>(Plan::Rebox(Plan::Scan("r"), {"a"}, 32)); }},
      // --- fused model: cross-representation pipelines ---
      {"fused", "array slice -> relational join",
       [] {
         return Result<PlanPtr>(Plan::Join(
             Plan::Unbox(Plan::Slice(Plan::Scan("arr"), {{"i", 0, 4}})),
             Plan::Scan("dim_table"), JoinType::kInner, {"i"}, {"k"}));
       }},
      {"fused", "relational filter -> array regrid",
       [] {
         return Result<PlanPtr>(Plan::Regrid(
             Plan::Select(Plan::Scan("arr"), Gt(Col("v"), Lit(0.0))), {{"i", 2}},
             AggFunc::kAvg));
       }},
      // --- linear algebra ---
      {"linear-algebra", "matrix multiply (intent op)",
       [] {
         return Result<PlanPtr>(
             Plan::MatMul(Plan::Scan("mat_a"), Plan::Scan("mat_b"), "c"));
       }},
      {"linear-algebra", "matrix transpose",
       [] {
         return Result<PlanPtr>(Plan::Transpose(Plan::Scan("mat_a"), {"k", "i"}));
       }},
      {"linear-algebra", "matrix addition",
       [] {
         return Result<PlanPtr>(
             Plan::ElemWise(Plan::Scan("arr"), Plan::Scan("arr2"), BinaryOp::kAdd));
       }},
      {"linear-algebra", "Hadamard (elementwise) product",
       [] {
         return Result<PlanPtr>(
             Plan::ElemWise(Plan::Scan("arr"), Plan::Scan("arr2"), BinaryOp::kMul));
       }},
      {"linear-algebra", "scalar scaling",
       [] {
         return Result<PlanPtr>(
             Plan::Extend(Plan::Scan("mat_a"), {{"scaled", Mul(Col("a"), Lit(2.0))}}));
       }},
      {"linear-algebra", "row sums (matrix-vector against ones)",
       [] {
         return Result<PlanPtr>(Plan::Aggregate(
             Plan::Scan("mat_a"), {"i"}, {AggSpec{AggFunc::kSum, Col("a"), "y"}}));
       }},
      {"linear-algebra", "frobenius norm (via apply + aggregate)",
       [] {
         return Result<PlanPtr>(Plan::Aggregate(
             Plan::Extend(Plan::Scan("mat_a"), {{"sq", Mul(Col("a"), Col("a"))}}), {},
             {AggSpec{AggFunc::kSum, Col("sq"), "norm_sq"}}));
       }},
      // --- graph / iterative analytics ---
      {"graph", "PageRank (intent op)",
       [] {
         PageRankOp op;
         return Result<PlanPtr>(Plan::PageRank(Plan::Scan("edges"), op));
       }},
      {"graph", "out-degree distribution",
       [] {
         return Result<PlanPtr>(Plan::Aggregate(
             Plan::Scan("edges"), {"src"}, {AggSpec{AggFunc::kCount, nullptr, "deg"}}));
       }},
      {"graph", "2-hop neighbours (self-join)",
       [] {
         return Result<PlanPtr>(Plan::Join(
             Plan::Scan("edges"),
             Plan::Rename(Plan::Scan("edges"), {{"src", "mid"}, {"dst", "hop2"}}),
             JoinType::kInner, {"dst"}, {"mid"}));
       }},
      {"graph", "generic fixpoint (Iterate until converged)",
       [] {
         IterateOp it;
         it.body = Plan::LoopVar();
         it.measure = Plan::Aggregate(
             Plan::Extend(Plan::LoopVar(),
                          {{"d", Func("abs", {Sub(Col("b"), Col("b"))})}}),
             {}, {AggSpec{AggFunc::kSum, Col("d"), "delta"}});
         it.epsilon = 1e-6;
         it.max_iters = 100;
         return Result<PlanPtr>(Plan::Iterate(Plan::Scan("r"), it));
       }},
      {"graph", "label propagation step (join + group-min)",
       [] {
         return Result<PlanPtr>(Plan::Aggregate(
             Plan::Join(Plan::Scan("edges"), Plan::Scan("dim_table"),
                        JoinType::kInner, {"src"}, {"k"}),
             {"dst"}, {AggSpec{AggFunc::kMin, Col("name"), "label"}}));
       }},
  };
}

}  // namespace

int main() {
  InMemoryCatalog catalog;
  FillDemoCatalog(catalog);
  std::vector<CatalogueEntry> entries = Catalogue();

  std::printf("E1 Coverage: canonical operations expressible in the algebra\n");
  std::printf("(an operation counts only if its plan type-checks)\n\n");
  std::printf("%-16s  %-48s  %s\n", "category", "operation", "covered");
  std::printf("%-16s  %-48s  %s\n", "--------", "---------", "-------");

  benchjson::Recorder json("coverage");
  std::map<std::string, std::pair<int, int>> per_category;  // covered, total
  for (const CatalogueEntry& e : entries) {
    WallTimer timer;
    auto plan = e.build();
    bool ok = plan.ok() && InferSchema(*plan.ValueOrDie(), catalog).ok();
    json.Record(std::string(e.category) + "/" + e.operation, 0,
                timer.ElapsedMillis());
    if (plan.ok() && !ok) {
      auto st = InferSchema(*plan.ValueOrDie(), catalog);
      std::printf("  [type error: %s]\n", st.status().ToString().c_str());
    }
    std::printf("%-16s  %-48s  %s\n", e.category, e.operation, ok ? "yes" : "NO");
    auto& [covered, total] = per_category[e.category];
    covered += ok ? 1 : 0;
    ++total;
  }
  std::printf("\nper-category totals:\n");
  int covered_all = 0, total_all = 0;
  for (const auto& [cat, ct] : per_category) {
    std::printf("  %-16s %2d / %2d\n", cat.c_str(), ct.first, ct.second);
    covered_all += ct.first;
    total_all += ct.second;
  }
  std::printf("  %-16s %2d / %2d\n", "TOTAL", covered_all, total_all);

  // The same coverage through the surface language (a sample).
  const char* bdl_samples[] = {
      "from r | where a > 1 and s != \"x\" | group by s aggregate sum(b) as t "
      "| sort by t desc | limit 3",
      "from arr | window i 1, j 1 using avg | regrid i/4, j/4 using max",
      "from mat_a | matmul mat_b as c",
      "from edges | pagerank src dst damping 0.85 iters 30",
  };
  int bdl_ok = 0;
  for (const char* q : bdl_samples) {
    auto p = ParseBdl(q);
    if (p.ok() && InferSchema(*p.ValueOrDie(), catalog).ok()) ++bdl_ok;
  }
  std::printf("\nBDL surface-language spot checks: %d / %zu parse and type-check\n",
              bdl_ok, std::size(bdl_samples));
  return covered_all == total_all && bdl_ok == 4 ? 0 : 1;
}
