// E16 — Compiled expression bytecode + fused pipelines ("as fast as the
// hardware allows"): the interpreter walks a boxed Value tree per row; the
// bytecode VM runs a register program over whole morsels.
//
// Arms:
//   e16_expr_interp / e16_expr_compiled: one expression-heavy scan (nulls,
//     conditionals, math builtins — off the legacy fast path) evaluated by
//     the row-at-a-time interpreter vs the compiled VM. Gate: >= 5x, and
//     byte-identical output columns.
//   e16_pipe_interp / e16_pipe_compiled / e16_pipe_fused: a
//     filter→extend→aggregate pipeline through the relational provider with
//     compilation off, compilation on, and compilation+fusion on.
//     Gate: byte-identical tables across all three arms.
//   e16_cache_cold / e16_cache_warm: the same plan executed twice; the warm
//     run must compile zero programs and hit the program cache.
#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "expr/bytecode.h"
#include "expr/eval.h"
#include "optimizer/fusion.h"
#include "provider/provider.h"
#include "telemetry/metrics.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

constexpr int64_t kExprRows = 1'000'000;
constexpr int64_t kPipeRows = 1'000'000;

TablePtr ExprTable(int64_t rows) {
  SchemaPtr s = Schema::Make({Field::Attr("a", DataType::kInt64),
                              Field::Attr("b", DataType::kFloat64),
                              Field::Attr("flag", DataType::kBool)})
                    .ValueOrDie();
  Rng rng(17);
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row = {Value::Int64(rng.NextInt(-100, 100)),
                              Value::Float64(rng.NextDouble(-8.0, 8.0)),
                              Value::Bool(rng.NextBool())};
    if (rng.NextBool(0.08)) row[rng.NextBounded(3)] = Value::Null();
    NEXUS_CHECK(b.AppendRow(row).ok());
  }
  return b.Finish().ValueOrDie();
}

double MinMillis(const std::function<void()>& fn, int reps = 3) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

// Expression-heavy scan: nulls + conditionals + math keep the interpreter on
// its boxed row path; the whole tree compiles to one register program.
void RunExprArm(benchjson::Recorder* json) {
  TablePtr t = ExprTable(kExprRows);
  ExprPtr e = Add(
      Add(Mul(Func("coalesce", {Col("b"), Lit(0.5)}), Lit(2.0)),
          Func("if", {Func("is_null", {Col("flag")}), Mul(Col("b"), Col("b")),
                      Func("sqrt", {Func("abs", {Col("b")})})})),
      Func("min", {Func("coalesce", {Cast(DataType::kFloat64, Col("a")),
                                     Lit(0.0)}),
                   Lit(50.0)}));

  SetExprCompileOverride(false);
  Column interp = EvalExprVector(*e, *t).ValueOrDie();
  double ms_interp =
      MinMillis([&] { EvalExprVector(*e, *t).ValueOrDie(); });
  SetExprCompileOverride(true);
  Column compiled = EvalExprVector(*e, *t).ValueOrDie();
  double ms_compiled =
      MinMillis([&] { EvalExprVector(*e, *t).ValueOrDie(); });
  ClearExprCompileOverride();

  NEXUS_CHECK(compiled.Equals(interp));  // byte-identical, not just close
  json->Record("e16_expr_interp", kExprRows, ms_interp);
  json->Record("e16_expr_compiled", kExprRows, ms_compiled);
  std::printf("expression-heavy scan over %lld rows\n",
              static_cast<long long>(kExprRows));
  std::printf("  interpreter  %9.2f ms\n", ms_interp);
  std::printf("  compiled VM  %9.2f ms   (%.2fx)\n", ms_compiled,
              ms_interp / ms_compiled);
  NEXUS_CHECK(ms_interp / ms_compiled >= 5.0);
}

PlanPtr PipelinePlan() {
  return Plan::Aggregate(
      Plan::Extend(
          Plan::Select(Plan::Scan("fact"),
                       And(Gt(Col("k"), Lit(5)), Lt(Col("k"), Lit(95)))),
          {{"z", Add(Mul(Col("v"), Lit(3.0)), Col("w"))},
           {"z2", Func("if", {Gt(Col("v"), Lit(0.0)), Col("v"),
                              Mul(Col("v"), Lit(-1.0))})}}),
      {"g"},
      {AggSpec{AggFunc::kSum, Col("z"), "sz"},
       AggSpec{AggFunc::kSum, Col("z2"), "sz2"},
       AggSpec{AggFunc::kCount, nullptr, "n"}});
}

void RunPipelineArm(benchjson::Recorder* json) {
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("g", DataType::kInt64),
                              Field::Attr("v", DataType::kFloat64),
                              Field::Attr("w", DataType::kFloat64)})
                    .ValueOrDie();
  Rng rng(23);
  TableBuilder b(s);
  for (int64_t i = 0; i < kPipeRows; ++i) {
    // Integer-valued doubles keep the grouped sums exact, so the three arms
    // can be compared byte-for-byte.
    NEXUS_CHECK(b.AppendRow({Value::Int64(rng.NextInt(0, 99)),
                             Value::Int64(rng.NextInt(0, 15)),
                             Value::Float64(static_cast<double>(
                                 rng.NextInt(-50, 50))),
                             Value::Float64(static_cast<double>(
                                 rng.NextInt(-10, 10)))})
                    .ok());
  }
  ProviderPtr relstore = MakeRelationalProvider();
  NEXUS_CHECK(relstore->catalog()->Put("fact", Dataset(b.Finish().ValueOrDie()))
                  .ok());
  PlanPtr plan = PipelinePlan();

  auto run_arm = [&](bool compile, bool fuse) {
    SetExprCompileOverride(compile);
    SetPipelineFusionOverride(fuse);
    Dataset out = relstore->Execute(*plan).ValueOrDie();
    double ms = MinMillis([&] { relstore->Execute(*plan).ValueOrDie(); });
    return std::make_pair(ms, out.table());
  };
  auto [ms_interp, t_interp] = run_arm(false, false);
  auto [ms_compiled, t_compiled] = run_arm(true, false);
  auto [ms_fused, t_fused] = run_arm(true, true);
  ClearExprCompileOverride();
  ClearPipelineFusionOverride();

  NEXUS_CHECK(t_compiled->Equals(*t_interp));
  NEXUS_CHECK(t_fused->Equals(*t_interp));
  json->Record("e16_pipe_interp", kPipeRows, ms_interp);
  json->Record("e16_pipe_compiled", kPipeRows, ms_compiled);
  json->Record("e16_pipe_fused", kPipeRows, ms_fused);
  std::printf("\nfilter->extend->aggregate pipeline over %lld rows\n",
              static_cast<long long>(kPipeRows));
  std::printf("  interpreter        %9.2f ms\n", ms_interp);
  std::printf("  compiled           %9.2f ms   (%.2fx)\n", ms_compiled,
              ms_interp / ms_compiled);
  std::printf("  compiled + fused   %9.2f ms   (%.2fx)\n", ms_fused,
              ms_interp / ms_fused);

  // Cache arm: re-executing the same plan must compile nothing.
  auto& reg = telemetry::MetricsRegistry::Global();
  telemetry::Counter* compiles = reg.counter("expr.compile");
  telemetry::Counter* hits = reg.counter("expr.compile_cache_hit");
  ClearProgramCacheForTest();
  const int64_t c0 = compiles->value();
  WallTimer cold_t;
  NEXUS_CHECK(relstore->Execute(*plan).ok());
  double ms_cold = cold_t.ElapsedMillis();
  const int64_t cold_compiles = compiles->value() - c0;
  const int64_t c1 = compiles->value();
  const int64_t h1 = hits->value();
  WallTimer warm_t;
  NEXUS_CHECK(relstore->Execute(*plan).ok());
  double ms_warm = warm_t.ElapsedMillis();
  const int64_t warm_compiles = compiles->value() - c1;
  const int64_t warm_hits = hits->value() - h1;
  NEXUS_CHECK(cold_compiles > 0);
  NEXUS_CHECK(warm_compiles == 0);
  NEXUS_CHECK(warm_hits > 0);
  json->Record("e16_cache_cold", cold_compiles, ms_cold);
  json->Record("e16_cache_warm", warm_hits, ms_warm);
  std::printf("\nprogram cache: cold run compiled %lld program(s); "
              "warm run compiled 0, hit cache %lld time(s)\n",
              static_cast<long long>(cold_compiles),
              static_cast<long long>(warm_hits));
}

}  // namespace

int main() {
  benchjson::Recorder json("compile");
  std::printf("E16: compiled expression bytecode vs interpreter\n");
  std::printf("threads=%d\n\n", GetThreadCount());
  RunExprArm(&json);
  RunPipelineArm(&json);
  std::printf("\nall byte-identity checks passed\n");
  return 0;
}
