// E9 — Model fusion: "a fusion of tabular and array models, with 0 or more
// attributes in a table structure being tagged as dimensions, and operators
// being dimension-aware."
//
// Two measurements, swept over cell density:
//   (a) rebox round trip — table -> chunked array -> table; the conversion
//       cost is the price of moving between representations, and the round
//       trip must be lossless;
//   (b) dimension-aware advantage — the same cell-wise combine of two
//       grids executed as a dimension-aware ElemWise on the chunked array
//       engine vs as a generic equi-join + arithmetic on the relational
//       engine.
#include <cstdio>
#include <string>
#include <tuple>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "types/ndarray.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

TablePtr SparseGrid(Rng* rng, int64_t n, double density, const char* attr) {
  SchemaPtr s = Schema::Make({Field::Dim("i"), Field::Dim("j"),
                              Field::Attr(attr, DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (!rng->NextBool(density)) continue;
      NEXUS_CHECK(b.AppendRow({Value::Int64(i), Value::Int64(j),
                               Value::Float64(rng->NextDouble(0, 1))})
                      .ok());
    }
  }
  return b.Finish().ValueOrDie();
}

}  // namespace

int main() {
  const int64_t n = 256;
  std::printf("E9 Model fusion: rebox round trip and dimension-aware ops\n");
  std::printf("grid %lld x %lld, chunk 32\n\n", static_cast<long long>(n),
              static_cast<long long>(n));
  std::printf("(a) table <-> array round trip\n");
  std::printf("%8s %9s  %12s  %12s  %9s\n", "density", "cells", "to-array(ms)",
              "to-table(ms)", "lossless");

  benchjson::Recorder json("rebox");
  for (double density : {0.05, 0.25, 0.5, 1.0}) {
    Rng rng(static_cast<uint64_t>(density * 1000));
    TablePtr t = SparseGrid(&rng, n, density, "v");
    WallTimer t1;
    auto arr = NDArray::FromTable(*t, {"i", "j"}, {32, 32});
    NEXUS_CHECK(arr.ok());
    double to_array = t1.ElapsedMillis();
    WallTimer t2;
    auto back = arr.ValueOrDie()->ToTable();
    NEXUS_CHECK(back.ok());
    double to_table = t2.ElapsedMillis();
    bool lossless =
        Dataset(t).LogicallyEquals(Dataset(TablePtr(back.ValueOrDie())));
    json.Record("to_array", t->num_rows(), to_array);
    json.Record("to_table", t->num_rows(), to_table);
    std::printf("%8.2f %9lld  %12.2f  %12.2f  %9s\n", density,
                static_cast<long long>(t->num_rows()), to_array, to_table,
                lossless ? "yes" : "NO");
  }

  std::printf("\n(b) cell-wise combine: dimension-aware (arraydb) vs generic\n");
  std::printf("    join (relstore), same algebra node\n");
  std::printf("%8s %9s  %12s  %14s  %9s\n", "density", "cells", "arraydb(ms)",
              "relstore(ms)", "ratio");

  for (double density : {0.05, 0.25, 0.5, 1.0}) {
    Rng rng(static_cast<uint64_t>(density * 977) + 5);
    TablePtr a = SparseGrid(&rng, n, density, "v");
    TablePtr b = SparseGrid(&rng, n, density, "w");

    PlanPtr combine = Plan::ElemWise(Plan::Scan("GA"), Plan::Scan("GB"),
                                     BinaryOp::kMul);
    auto run_on = [&](const char* provider_name, ProviderPtr provider) {
      Cluster cluster;
      NEXUS_CHECK(cluster.AddServer(provider_name, std::move(provider)).ok());
      NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
      // Each engine stores its native representation: chunked arrays on the
      // array server, columnar tables on the relational server.
      Dataset da(a), db(b);
      if (std::string(provider_name) == "arraydb") {
        da = Dataset(Dataset(a).AsArray(32).ValueOrDie());
        db = Dataset(Dataset(b).AsArray(32).ValueOrDie());
      }
      NEXUS_CHECK(cluster.PutData(provider_name, "GA", std::move(da)).ok());
      NEXUS_CHECK(cluster.PutData(provider_name, "GB", std::move(db)).ok());
      Coordinator coord(&cluster);
      NEXUS_CHECK(coord.Execute(combine).ok());  // warm-up
      WallTimer t;
      Dataset r = coord.Execute(combine).ValueOrDie();
      return std::make_tuple(t.ElapsedMillis(), r,
                             coord.last_optimizer_stats());
    };
    auto [array_ms, r1, opt1] = run_on("arraydb", MakeArrayProvider());
    auto [rel_ms, r2, opt2] = run_on("relstore", MakeRelationalProvider());
    NEXUS_CHECK(r1.LogicallyEquals(r2));
    json.Record("elemwise_arraydb", a->num_rows(), array_ms);
    json.AnnotateOptimizer(opt1);
    json.Record("elemwise_relstore", a->num_rows(), rel_ms);
    json.AnnotateOptimizer(opt2);
    std::printf("%8.2f %9lld  %12.2f  %14.2f  %8.2fx\n", density,
                static_cast<long long>(a->num_rows()), array_ms, rel_ms,
                rel_ms / array_ms);
  }
  std::printf("\nshape expectation: the round trip is lossless at every density\n");
  std::printf("and scales with occupied cells; the dimension-aware engine wins\n");
  std::printf("at high density (dense chunk layout beats hashing), while the\n");
  std::printf("generic join narrows the gap as the grid sparsifies.\n");
  return 0;
}
