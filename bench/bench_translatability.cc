// E2 — Translatability (desideratum 2): "every algebra operator should be
// translatable to a back-end system (or a combination of such systems)".
//
// Method: for every operator of the algebra, build a canonical plan over
// demonstration data and attempt it on every provider. A cell reads:
//   native      the provider claims and correctly executes it
//   expanded    claimed via an internal translation/expansion (relstore's
//               MatMul/PageRank, slice-as-filter, …) — still "native" in
//               the claims sense but annotated for the report
//   -           not claimed (the planner routes around it)
//   FAIL        claimed but wrong / errored (must never appear)
// The bottom line verifies the desideratum: every operator is executable by
// at least one specialized provider or by the reference backstop.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/random.h"
#include "core/schema_inference.h"
#include "expr/builder.h"
#include "provider/provider.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

struct OpCase {
  OpKind kind;
  PlanPtr plan;
};

void FillCatalog(Provider* p, Rng* rng) {
  // Table data.
  SchemaPtr rs = Schema::Make({Field::Attr("a", DataType::kInt64),
                               Field::Attr("b", DataType::kFloat64)})
                     .ValueOrDie();
  TableBuilder rb(rs);
  for (int64_t i = 0; i < 64; ++i) {
    NEXUS_CHECK(rb.AppendRow({Value::Int64(i % 16),
                              Value::Float64(static_cast<double>(rng->NextInt(-9, 9)))})
                    .ok());
  }
  NEXUS_CHECK(p->catalog()->Put("r", Dataset(rb.Finish().ValueOrDie())).ok());
  // 2-d arrays.
  auto matrix = [&](const char* d0, const char* d1, const char* attr) {
    SchemaPtr ms = Schema::Make({Field::Dim(d0), Field::Dim(d1),
                                 Field::Attr(attr, DataType::kFloat64)})
                       .ValueOrDie();
    TableBuilder mb(ms);
    for (int64_t i = 0; i < 8; ++i) {
      for (int64_t j = 0; j < 8; ++j) {
        NEXUS_CHECK(mb.AppendRow({Value::Int64(i), Value::Int64(j),
                                  Value::Float64(static_cast<double>(
                                      rng->NextInt(1, 9)))})
                        .ok());
      }
    }
    return Dataset(mb.Finish().ValueOrDie());
  };
  NEXUS_CHECK(p->catalog()->Put("m1", matrix("i", "k", "v")).ok());
  NEXUS_CHECK(p->catalog()->Put("m2", matrix("k", "j", "w")).ok());
  NEXUS_CHECK(p->catalog()->Put("m3", matrix("i", "k", "v")).ok());
  // Edges.
  SchemaPtr es = Schema::Make({Field::Attr("src", DataType::kInt64),
                               Field::Attr("dst", DataType::kInt64)})
                     .ValueOrDie();
  TableBuilder eb(es);
  for (int64_t e = 0; e < 60; ++e) {
    NEXUS_CHECK(eb.AppendRow({Value::Int64(rng->NextInt(0, 14)),
                              Value::Int64(rng->NextInt(0, 14))})
                    .ok());
  }
  NEXUS_CHECK(p->catalog()->Put("edges", Dataset(eb.Finish().ValueOrDie())).ok());
}

std::vector<OpCase> Cases() {
  std::vector<OpCase> out;
  auto add = [&](OpKind k, PlanPtr p) { out.push_back(OpCase{k, std::move(p)}); };
  add(OpKind::kScan, Plan::Scan("r"));
  {
    SchemaPtr s = Schema::Make({Field::Attr("x", DataType::kInt64)}).ValueOrDie();
    TableBuilder b(s);
    NEXUS_CHECK(b.AppendRow({Value::Int64(1)}).ok());
    add(OpKind::kValues, Plan::Values(Dataset(b.Finish().ValueOrDie())));
  }
  add(OpKind::kSelect, Plan::Select(Plan::Scan("m1"), Gt(Col("v"), Lit(4.0))));
  add(OpKind::kProject, Plan::Project(Plan::Scan("r"), {"b"}));
  add(OpKind::kExtend,
      Plan::Extend(Plan::Scan("m1"), {{"v2", Mul(Col("v"), Lit(2.0))}}));
  add(OpKind::kJoin, Plan::Join(Plan::Scan("r"),
                                Plan::Rename(Plan::Scan("r"), {{"a", "a2"}, {"b", "b2"}}),
                                JoinType::kInner, {"a"}, {"a2"}));
  add(OpKind::kAggregate,
      Plan::Aggregate(Plan::Scan("r"), {"a"},
                      {AggSpec{AggFunc::kSum, Col("b"), "t"}}));
  add(OpKind::kSort, Plan::Sort(Plan::Scan("r"), {{"b", true}, {"a", false}}));
  add(OpKind::kLimit, Plan::Limit(Plan::Sort(Plan::Scan("r"), {{"a", true}}), 5, 2));
  add(OpKind::kDistinct, Plan::Distinct(Plan::Project(Plan::Scan("r"), {"a"})));
  add(OpKind::kUnion, Plan::Union(Plan::Scan("r"), Plan::Scan("r")));
  add(OpKind::kRename, Plan::Rename(Plan::Scan("r"), {{"a", "id"}}));
  add(OpKind::kRebox, Plan::Rebox(Plan::Distinct(Plan::Project(Plan::Scan("r"), {"a"})), {"a"}, 8));
  add(OpKind::kUnbox, Plan::Unbox(Plan::Scan("m1")));
  add(OpKind::kSlice, Plan::Slice(Plan::Scan("m1"), {{"i", 1, 6}, {"k", 0, 4}}));
  add(OpKind::kShift, Plan::Shift(Plan::Scan("m1"), {{"i", 3}}));
  add(OpKind::kRegrid,
      Plan::Regrid(Plan::Scan("m1"), {{"i", 2}, {"k", 2}}, AggFunc::kSum));
  add(OpKind::kTranspose, Plan::Transpose(Plan::Scan("m1"), {"k", "i"}));
  add(OpKind::kWindow,
      Plan::Window(Plan::Scan("m1"), {{"i", 1}, {"k", 1}}, AggFunc::kMax));
  add(OpKind::kElemWise,
      Plan::ElemWise(Plan::Scan("m1"), Plan::Scan("m3"), BinaryOp::kAdd));
  add(OpKind::kMatMul, Plan::MatMul(Plan::Scan("m1"), Plan::Scan("m2"), "c"));
  {
    PageRankOp pr;
    pr.max_iters = 30;
    pr.epsilon = 1e-10;
    add(OpKind::kPageRank, Plan::PageRank(Plan::Scan("edges"), pr));
  }
  {
    IterateOp it;
    it.body = Plan::Select(Plan::LoopVar(), Gt(Col("v"), Lit(2.0)));
    it.max_iters = 2;
    add(OpKind::kIterate, Plan::Iterate(Plan::Scan("m1"), it));
  }
  add(OpKind::kExchange,
      Plan::Exchange(Plan::Scan("r"), "elsewhere", TransferMode::kDirect));
  return out;
}

// Providers whose claim is an internal translation rather than a native
// kernel — annotated in the matrix.
bool IsExpansionClaim(const std::string& provider, OpKind kind) {
  if (provider != "relstore") return false;
  switch (kind) {
    case OpKind::kMatMul:
    case OpKind::kPageRank:
    case OpKind::kSlice:
    case OpKind::kShift:
    case OpKind::kRegrid:
    case OpKind::kTranspose:
    case OpKind::kElemWise:
      return true;
    default:
      return false;
  }
}

bool CloseEnough(const Dataset& got, const Dataset& want) {
  if (got.LogicallyEquals(want)) return true;
  // Iterative float results (PageRank): compare with tolerance.
  auto gt = got.AsTable();
  auto wt = want.AsTable();
  if (!gt.ok() || !wt.ok()) return false;
  const TablePtr& g = gt.ValueOrDie();
  const TablePtr& w = wt.ValueOrDie();
  if (g->num_rows() != w->num_rows() || g->num_columns() != w->num_columns()) {
    return false;
  }
  std::map<std::string, double> want_map;
  for (int64_t r = 0; r < w->num_rows(); ++r) {
    if (!w->At(r, w->num_columns() - 1).is_numeric()) return false;
    std::string key;
    for (int c = 0; c + 1 < w->num_columns(); ++c) key += w->At(r, c).ToString() + "|";
    want_map[key] = w->At(r, w->num_columns() - 1).AsDouble();
  }
  for (int64_t r = 0; r < g->num_rows(); ++r) {
    std::string key;
    for (int c = 0; c + 1 < g->num_columns(); ++c) key += g->At(r, c).ToString() + "|";
    auto it = want_map.find(key);
    if (it == want_map.end()) return false;
    if (std::fabs(it->second - g->At(r, g->num_columns() - 1).AsDouble()) > 1e-8) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::vector<ProviderPtr> providers = {
      MakeReferenceProvider(), MakeRelationalProvider(), MakeArrayProvider(),
      MakeLinalgProvider(), MakeGraphProvider()};
  {
    Rng rng(20150104);  // CIDR'15 opening day
    for (const ProviderPtr& p : providers) {
      Rng copy = rng;  // identical data everywhere
      FillCatalog(p.get(), &copy);
    }
  }

  std::printf("E2 Translatability: operator x provider matrix\n");
  std::printf("(native = claims & agrees with reference; expanded = via internal\n");
  std::printf(" translation; '-' = not claimed, planner combines providers)\n\n");
  std::printf("%-11s", "operator");
  for (const ProviderPtr& p : providers) {
    std::printf("  %-10s", p->name().c_str());
  }
  std::printf("\n%-11s", "--------");
  for (size_t i = 0; i < providers.size(); ++i) std::printf("  %-10s", "------");
  std::printf("\n");

  benchjson::Recorder json("translatability");
  int total_ops = 0, ops_with_specialist = 0, failures = 0;
  for (const OpCase& c : Cases()) {
    ++total_ops;
    // Reference first (the oracle).
    auto want = providers[0]->Execute(*c.plan);
    NEXUS_CHECK(want.ok()) << OpKindName(c.kind) << ": " << want.status();
    std::printf("%-11s", OpKindName(c.kind));
    bool any_specialist = false;
    for (const ProviderPtr& p : providers) {
      if (!p->ClaimsTree(*c.plan)) {
        std::printf("  %-10s", "-");
        continue;
      }
      WallTimer timer;
      auto got = p->Execute(*c.plan);
      json.Record(std::string(OpKindName(c.kind)) + "@" + p->name(), 0,
                  timer.ElapsedMillis());
      const char* cell;
      if (!got.ok() || !CloseEnough(got.ValueOrDie(), want.ValueOrDie())) {
        cell = "FAIL";
        ++failures;
      } else if (p->name() == "reference") {
        cell = "native";
      } else {
        any_specialist = true;
        cell = IsExpansionClaim(p->name(), c.kind) ? "expanded" : "native";
      }
      std::printf("  %-10s", cell);
    }
    std::printf("\n");
    if (any_specialist) ++ops_with_specialist;
  }
  std::printf("\noperators executable on >=1 specialized provider: %d / %d\n",
              ops_with_specialist, total_ops);
  std::printf("operators executable overall (incl. reference backstop): %d / %d\n",
              total_ops - failures > 0 ? total_ops : 0, total_ops);
  std::printf("failures: %d (must be 0)\n", failures);
  return failures == 0 ? 0 : 1;
}
