// Machine-readable benchmark output. Every bench_* binary emits a
// BENCH_<name>.json next to wherever it runs, one record per measurement:
//   {"op": ..., "rows": ..., "wall_ms": ..., "threads": ...,
//    "fragments": ..., "messages": ..., "retries": ...}
// so sweeps can be plotted or regression-tracked without scraping the
// human-oriented tables. Benches that measure simulated network time (the
// federation experiments) record simulated milliseconds in wall_ms; the op
// name says which.
#ifndef NEXUS_BENCH_BENCH_JSON_H_
#define NEXUS_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "optimizer/optimizer.h"

namespace nexus {
namespace benchjson {

class Recorder {
 public:
  explicit Recorder(std::string bench) : bench_(std::move(bench)) {}
  ~Recorder() { Write(); }
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Appends one measurement. threads <= 0 records the process-wide budget.
  void Record(const std::string& op, long long rows, double wall_ms,
              int threads = 0) {
    Entry e;
    e.op = op;
    e.rows = rows;
    e.wall_ms = wall_ms;
    e.threads = threads > 0 ? threads : GetThreadCount();
    entries_.push_back(std::move(e));
  }

  /// Federation measurement: also records the per-call ExecutionMetrics
  /// counts that matter for regression-tracking distributed runs.
  void RecordFederated(const std::string& op, long long rows, double wall_ms,
                       long long fragments, long long messages,
                       long long retries, int threads = 0) {
    Record(op, rows, wall_ms, threads);
    Entry& e = entries_.back();
    e.fragments = fragments;
    e.messages = messages;
    e.retries = retries;
  }

  /// Wire-level measurement (E13): federation counts plus the bytes that
  /// actually crossed the simulated network and the provider plan-cache
  /// hits, so the text-vs-binary ablation is regression-trackable.
  void RecordWire(const std::string& op, long long rows, double wall_ms,
                  long long fragments, long long messages, long long retries,
                  long long bytes_on_wire, long long plan_cache_hits,
                  int threads = 0) {
    RecordFederated(op, rows, wall_ms, fragments, messages, retries, threads);
    Entry& e = entries_.back();
    e.bytes_on_wire = bytes_on_wire;
    e.plan_cache_hits = plan_cache_hits;
  }

  /// Attaches the optimizer's pass counters to the most recent measurement
  /// (E7/E14: what the planner did, next to what the run cost).
  void AnnotateOptimizer(const OptimizerStats& s) {
    if (entries_.empty()) return;
    Entry& e = entries_.back();
    e.has_optimizer = true;
    e.opt = s;
  }

  /// Writes BENCH_<bench>.json into the working directory. The destructor
  /// calls this, so a bench only needs to keep the Recorder alive in main.
  void Write() const {
    std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 Escaped(bench_).c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"rows\": %lld, \"wall_ms\": %.6f, "
                   "\"threads\": %d, \"fragments\": %lld, \"messages\": %lld, "
                   "\"retries\": %lld, \"bytes_on_wire\": %lld, "
                   "\"plan_cache_hits\": %lld",
                   Escaped(e.op).c_str(), e.rows, e.wall_ms, e.threads,
                   e.fragments, e.messages, e.retries, e.bytes_on_wire,
                   e.plan_cache_hits);
      if (e.has_optimizer) {
        std::fprintf(f,
                     ", \"selections_pushed\": %lld, "
                     "\"intents_recognized\": %lld, "
                     "\"projects_inserted\": %lld, "
                     "\"expressions_folded\": %lld, "
                     "\"joins_reordered\": %lld, "
                     "\"estimated_rows_root\": %lld, "
                     "\"ops_lowered\": %lld",
                     static_cast<long long>(e.opt.selections_pushed),
                     static_cast<long long>(e.opt.intents_recognized),
                     static_cast<long long>(e.opt.projects_inserted),
                     static_cast<long long>(e.opt.expressions_folded),
                     static_cast<long long>(e.opt.joins_reordered),
                     static_cast<long long>(e.opt.estimated_rows_root),
                     static_cast<long long>(e.opt.ops_lowered));
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Entry {
    std::string op;
    long long rows = 0;
    double wall_ms = 0.0;
    int threads = 0;
    // Federation accounting (zero for pure-engine benches).
    long long fragments = 0;
    long long messages = 0;
    long long retries = 0;
    // Wire-level accounting (zero unless recorded via RecordWire).
    long long bytes_on_wire = 0;
    long long plan_cache_hits = 0;
    // Optimizer pass counters (present only after AnnotateOptimizer).
    bool has_optimizer = false;
    OptimizerStats opt;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back(' ');
        continue;
      }
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<Entry> entries_;
};

}  // namespace benchjson
}  // namespace nexus

#endif  // NEXUS_BENCH_BENCH_JSON_H_
