// Machine-readable benchmark output. Every bench_* binary emits a
// BENCH_<name>.json next to wherever it runs, one record per measurement:
//   {"op": ..., "rows": ..., "wall_ms": ..., "threads": ...,
//    "fragments": ..., "messages": ..., "retries": ...}
// so sweeps can be plotted or regression-tracked without scraping the
// human-oriented tables. Benches that measure simulated network time (the
// federation experiments) record simulated milliseconds in wall_ms; the op
// name says which.
#ifndef NEXUS_BENCH_BENCH_JSON_H_
#define NEXUS_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"

namespace nexus {
namespace benchjson {

class Recorder {
 public:
  explicit Recorder(std::string bench) : bench_(std::move(bench)) {}
  ~Recorder() { Write(); }
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Appends one measurement. threads <= 0 records the process-wide budget.
  void Record(const std::string& op, long long rows, double wall_ms,
              int threads = 0) {
    entries_.push_back(Entry{op, rows, wall_ms,
                             threads > 0 ? threads : GetThreadCount(), 0, 0, 0,
                             0, 0});
  }

  /// Federation measurement: also records the per-call ExecutionMetrics
  /// counts that matter for regression-tracking distributed runs.
  void RecordFederated(const std::string& op, long long rows, double wall_ms,
                       long long fragments, long long messages,
                       long long retries, int threads = 0) {
    entries_.push_back(Entry{op, rows, wall_ms,
                             threads > 0 ? threads : GetThreadCount(), fragments,
                             messages, retries, 0, 0});
  }

  /// Wire-level measurement (E13): federation counts plus the bytes that
  /// actually crossed the simulated network and the provider plan-cache
  /// hits, so the text-vs-binary ablation is regression-trackable.
  void RecordWire(const std::string& op, long long rows, double wall_ms,
                  long long fragments, long long messages, long long retries,
                  long long bytes_on_wire, long long plan_cache_hits,
                  int threads = 0) {
    entries_.push_back(Entry{op, rows, wall_ms,
                             threads > 0 ? threads : GetThreadCount(), fragments,
                             messages, retries, bytes_on_wire, plan_cache_hits});
  }

  /// Writes BENCH_<bench>.json into the working directory. The destructor
  /// calls this, so a bench only needs to keep the Recorder alive in main.
  void Write() const {
    std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 Escaped(bench_).c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"rows\": %lld, \"wall_ms\": %.6f, "
                   "\"threads\": %d, \"fragments\": %lld, \"messages\": %lld, "
                   "\"retries\": %lld, \"bytes_on_wire\": %lld, "
                   "\"plan_cache_hits\": %lld}%s\n",
                   Escaped(e.op).c_str(), e.rows, e.wall_ms, e.threads,
                   e.fragments, e.messages, e.retries, e.bytes_on_wire,
                   e.plan_cache_hits, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Entry {
    std::string op;
    long long rows;
    double wall_ms;
    int threads;
    // Federation accounting (zero for pure-engine benches).
    long long fragments;
    long long messages;
    long long retries;
    // Wire-level accounting (zero unless recorded via RecordWire).
    long long bytes_on_wire;
    long long plan_cache_hits;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back(' ');
        continue;
      }
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<Entry> entries_;
};

}  // namespace benchjson
}  // namespace nexus

#endif  // NEXUS_BENCH_BENCH_JSON_H_
