// E5 — Expression-tree shipping (LINQ property): "it can pass queries to
// Providers in the form of an expression tree, rather than as a series of
// remote function calls. This capability obviously cuts down on
// communication between client and Provider."
//
// Method: a five-operator pipeline (select → extend → aggregate → sort →
// limit) over a table of R rows, executed two ways on the same cluster:
//   tree    one serialized expression tree; only the final result returns;
//   per-op  one remote call per operator, every intermediate routed back to
//           the client and re-uploaded (the client-library pattern).
// Sweep R; report round trips, total bytes, bytes through the client, and
// simulated network time.
// E13 — Binary columnar wire format: the same federated fetch executed once
// with the legacy text wire pinned and once with NXB1 negotiation (the
// default), on an event-log workload whose columns are representative of
// machine data (frame-of-reference timestamps, dictionary hosts/messages,
// run-length-encodable severity levels). A repeat execution on the binary
// arm measures the provider plan-fingerprint cache.
#include <cstdio>
#include <memory>

#include "bench_json.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "common/random.h"
#include "core/wire_format.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

// Event-log table: the column mix real log pipelines ship — monotone
// timestamps (FOR), low-cardinality strings (dict), near-constant severity
// (RLE), and a small-range integer count.
std::unique_ptr<Cluster> MakeLogCluster(int64_t rows) {
  auto cluster = std::make_unique<Cluster>();
  NEXUS_CHECK(cluster->AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster->AddServer("reference", MakeReferenceProvider()).ok());
  Rng rng(static_cast<uint64_t>(rows) * 31);
  SchemaPtr s = Schema::Make({Field::Attr("ts", DataType::kInt64),
                              Field::Attr("host", DataType::kString),
                              Field::Attr("level", DataType::kInt64),
                              Field::Attr("msg", DataType::kString),
                              Field::Attr("count", DataType::kInt64)})
                    .ValueOrDie();
  static const char* kMsgs[] = {"request served", "cache refill",
                                "slow query", "connection reset"};
  TableBuilder b(s);
  for (int64_t i = 0; i < rows; ++i) {
    NEXUS_CHECK(
        b.AppendRow(
             {Value::Int64(1700000000000 + i * 250 + rng.NextInt(0, 40)),
              Value::String("host-" + std::to_string(rng.NextInt(0, 7))),
              Value::Int64(i % 97 == 0 ? 2 : 0),
              Value::String(kMsgs[rng.NextInt(0, 3)]),
              Value::Int64(rng.NextInt(0, 99))})
            .ok());
  }
  NEXUS_CHECK(
      cluster->PutData("relstore", "logs", Dataset(b.Finish().ValueOrDie()))
          .ok());
  return cluster;
}

}  // namespace

int main() {
  std::printf("E5 Expression shipping vs per-operator remote calls\n\n");
  std::printf("%9s | %5s %10s %10s %8s | %5s %10s %10s %8s | %7s\n", "rows",
              "msgs", "bytes", "thru-cli", "sim(ms)", "msgs", "bytes",
              "thru-cli", "sim(ms)", "time");
  std::printf("%9s | %37s | %37s | %7s\n", "",
              "----------- tree ------------", "---------- per-op -----------",
              "ratio");

  benchjson::Recorder json("shipping");
  for (int64_t rows : {1000, 10000, 50000, 200000}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(static_cast<uint64_t>(rows));
    SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                                Field::Attr("v", DataType::kFloat64)})
                      .ValueOrDie();
    TableBuilder b(s);
    for (int64_t i = 0; i < rows; ++i) {
      NEXUS_CHECK(b.AppendRow({Value::Int64(rng.NextInt(0, 99)),
                               Value::Float64(rng.NextDouble(0, 100))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "events", Dataset(b.Finish().ValueOrDie()))
            .ok());

    PlanPtr p = Plan::Scan("events");
    p = Plan::Select(p, Gt(Col("v"), Lit(25.0)));
    p = Plan::Extend(p, {{"w", Mul(Col("v"), Col("v"))}});
    p = Plan::Aggregate(p, {"k"}, {AggSpec{AggFunc::kSum, Col("w"), "sw"}});
    p = Plan::Sort(p, {{"sw", false}});
    p = Plan::Limit(p, 10, 0);

    CoordinatorOptions opts;
    opts.optimize = false;  // identical operator counts in both arms
    Coordinator coord(&cluster, opts);
    ExecutionMetrics tree, perop;
    Dataset r1 = coord.Execute(p, &tree).ValueOrDie();
    Dataset r2 = coord.ExecutePerOp(p, &perop).ValueOrDie();
    NEXUS_CHECK(r1.LogicallyEquals(r2));
    json.RecordFederated("tree_sim", rows, tree.simulated_seconds * 1e3,
                         tree.fragments, tree.messages, tree.retries);
    json.AnnotateOptimizer(coord.last_optimizer_stats());
    json.RecordFederated("perop_sim", rows, perop.simulated_seconds * 1e3,
                         perop.fragments, perop.messages, perop.retries);
    json.AnnotateOptimizer(coord.last_optimizer_stats());

    std::printf(
        "%9lld | %5lld %10s %10s %8.2f | %5lld %10s %10s %8.2f | %6.2fx\n",
        static_cast<long long>(rows), static_cast<long long>(tree.messages),
        FormatBytes(static_cast<uint64_t>(tree.bytes_total)).c_str(),
        FormatBytes(static_cast<uint64_t>(tree.bytes_through_client)).c_str(),
        tree.simulated_seconds * 1e3, static_cast<long long>(perop.messages),
        FormatBytes(static_cast<uint64_t>(perop.bytes_total)).c_str(),
        FormatBytes(static_cast<uint64_t>(perop.bytes_through_client)).c_str(),
        perop.simulated_seconds * 1e3,
        perop.simulated_seconds / tree.simulated_seconds);
  }
  std::printf("\nshape expectation: tree mode sends 2 messages regardless of data\n");
  std::printf("size; per-op round trips scale with pipeline length and its bytes\n");
  std::printf("with intermediate sizes, so the gap grows with the input.\n");

  std::printf("\nE13 Text vs NXB1 binary wire on a federated event-log fetch\n\n");
  std::printf("%9s | %10s %10s %6s | %10s %6s %5s\n", "rows", "text", "binary",
              "ratio", "repeat", "saved", "hits");
  std::printf("%9s | %29s | %24s\n", "",
              "----- bytes on wire ------", "-- binary, 2nd run --");
  for (int64_t rows : {2000, 10000, 50000}) {
    // The query ships a filter and fetches nearly the whole table back: the
    // wire bytes are dominated by the dataset encoding, which is the thing
    // under test.
    PlanPtr q = Plan::Select(Plan::Scan("logs"), Gt(Col("count"), Lit(-1)));

    // Text arm: a fresh cluster with the legacy wire pinned process-wide.
    SetWireFormatOverride(WireFormat::kText);
    std::unique_ptr<Cluster> text_cluster = MakeLogCluster(rows);
    Coordinator text_coord(text_cluster.get());
    ExecutionMetrics text_m;
    Dataset text_d = text_coord.Execute(q, &text_m).ValueOrDie();
    ClearWireFormatOverride();

    // Binary arm: identical fresh cluster, default NXB1 negotiation. The
    // second execution re-uses the provider's cached plan fingerprint.
    std::unique_ptr<Cluster> bin_cluster = MakeLogCluster(rows);
    Coordinator bin_coord(bin_cluster.get());
    ExecutionMetrics bin_m, rep_m;
    Dataset bin_d = bin_coord.Execute(q, &bin_m).ValueOrDie();
    Dataset rep_d = bin_coord.Execute(q, &rep_m).ValueOrDie();
    NEXUS_CHECK(bin_d.LogicallyEquals(text_d));
    NEXUS_CHECK(rep_d.LogicallyEquals(text_d));

    json.RecordWire("e13_text", rows, text_m.simulated_seconds * 1e3,
                    text_m.fragments, text_m.messages, text_m.retries,
                    text_m.bytes_total, text_m.plan_cache_hits);
    json.AnnotateOptimizer(text_coord.last_optimizer_stats());
    json.RecordWire("e13_binary", rows, bin_m.simulated_seconds * 1e3,
                    bin_m.fragments, bin_m.messages, bin_m.retries,
                    bin_m.bytes_total, bin_m.plan_cache_hits);
    json.AnnotateOptimizer(bin_coord.last_optimizer_stats());
    json.RecordWire("e13_binary_repeat", rows, rep_m.simulated_seconds * 1e3,
                    rep_m.fragments, rep_m.messages, rep_m.retries,
                    rep_m.bytes_total, rep_m.plan_cache_hits);
    json.AnnotateOptimizer(bin_coord.last_optimizer_stats());

    std::printf("%9lld | %10s %10s %5.1fx | %10s %6s %5lld\n",
                static_cast<long long>(rows),
                FormatBytes(static_cast<uint64_t>(text_m.bytes_total)).c_str(),
                FormatBytes(static_cast<uint64_t>(bin_m.bytes_total)).c_str(),
                static_cast<double>(text_m.bytes_total) /
                    static_cast<double>(bin_m.bytes_total),
                FormatBytes(static_cast<uint64_t>(rep_m.bytes_total)).c_str(),
                FormatBytes(static_cast<uint64_t>(rep_m.wire_bytes_saved)).c_str(),
                static_cast<long long>(rep_m.plan_cache_hits));
  }
  std::printf("\nshape expectation: the binary arm moves >=5x fewer bytes (FOR\n");
  std::printf("timestamps, dict strings, RLE levels); the repeat run replaces the\n");
  std::printf("shipped plan with a fixed-size fingerprint reference (hits > 0).\n");
  return 0;
}
