// E5 — Expression-tree shipping (LINQ property): "it can pass queries to
// Providers in the form of an expression tree, rather than as a series of
// remote function calls. This capability obviously cuts down on
// communication between client and Provider."
//
// Method: a five-operator pipeline (select → extend → aggregate → sort →
// limit) over a table of R rows, executed two ways on the same cluster:
//   tree    one serialized expression tree; only the final result returns;
//   per-op  one remote call per operator, every intermediate routed back to
//           the client and re-uploaded (the client-library pattern).
// Sweep R; report round trips, total bytes, bytes through the client, and
// simulated network time.
#include <cstdio>

#include "bench_json.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "common/random.h"
#include "expr/builder.h"
#include "federation/coordinator.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

int main() {
  std::printf("E5 Expression shipping vs per-operator remote calls\n\n");
  std::printf("%9s | %5s %10s %10s %8s | %5s %10s %10s %8s | %7s\n", "rows",
              "msgs", "bytes", "thru-cli", "sim(ms)", "msgs", "bytes",
              "thru-cli", "sim(ms)", "time");
  std::printf("%9s | %37s | %37s | %7s\n", "",
              "----------- tree ------------", "---------- per-op -----------",
              "ratio");

  benchjson::Recorder json("shipping");
  for (int64_t rows : {1000, 10000, 50000, 200000}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(static_cast<uint64_t>(rows));
    SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                                Field::Attr("v", DataType::kFloat64)})
                      .ValueOrDie();
    TableBuilder b(s);
    for (int64_t i = 0; i < rows; ++i) {
      NEXUS_CHECK(b.AppendRow({Value::Int64(rng.NextInt(0, 99)),
                               Value::Float64(rng.NextDouble(0, 100))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "events", Dataset(b.Finish().ValueOrDie()))
            .ok());

    PlanPtr p = Plan::Scan("events");
    p = Plan::Select(p, Gt(Col("v"), Lit(25.0)));
    p = Plan::Extend(p, {{"w", Mul(Col("v"), Col("v"))}});
    p = Plan::Aggregate(p, {"k"}, {AggSpec{AggFunc::kSum, Col("w"), "sw"}});
    p = Plan::Sort(p, {{"sw", false}});
    p = Plan::Limit(p, 10, 0);

    CoordinatorOptions opts;
    opts.optimize = false;  // identical operator counts in both arms
    Coordinator coord(&cluster, opts);
    ExecutionMetrics tree, perop;
    Dataset r1 = coord.Execute(p, &tree).ValueOrDie();
    Dataset r2 = coord.ExecutePerOp(p, &perop).ValueOrDie();
    NEXUS_CHECK(r1.LogicallyEquals(r2));
    json.RecordFederated("tree_sim", rows, tree.simulated_seconds * 1e3,
                         tree.fragments, tree.messages, tree.retries);
    json.RecordFederated("perop_sim", rows, perop.simulated_seconds * 1e3,
                         perop.fragments, perop.messages, perop.retries);

    std::printf(
        "%9lld | %5lld %10s %10s %8.2f | %5lld %10s %10s %8.2f | %6.2fx\n",
        static_cast<long long>(rows), static_cast<long long>(tree.messages),
        FormatBytes(static_cast<uint64_t>(tree.bytes_total)).c_str(),
        FormatBytes(static_cast<uint64_t>(tree.bytes_through_client)).c_str(),
        tree.simulated_seconds * 1e3, static_cast<long long>(perop.messages),
        FormatBytes(static_cast<uint64_t>(perop.bytes_total)).c_str(),
        FormatBytes(static_cast<uint64_t>(perop.bytes_through_client)).c_str(),
        perop.simulated_seconds * 1e3,
        perop.simulated_seconds / tree.simulated_seconds);
  }
  std::printf("\nshape expectation: tree mode sends 2 messages regardless of data\n");
  std::printf("size; per-op round trips scale with pipeline length and its bytes\n");
  std::printf("with intermediate sizes, so the gap grows with the input.\n");
  return 0;
}
