// E8 — Engine baselines: microbenchmarks of the four substrate engines
// (google-benchmark). These underpin every other experiment: the relational
// engine's vectorized filter/join/aggregate, the array engine's chunked
// regrid/window and slice pruning, the linear-algebra kernels (naive vs
// blocked GEMM ablation, SpGEMM), and the graph kernels.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "arraydb/engine.h"
#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "expr/builder.h"
#include "graph/graph.h"
#include "linalg/dense.h"
#include "linalg/sparse.h"
#include "relational/engine.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

TablePtr MakeFactTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("v", DataType::kFloat64)})
                    .ValueOrDie();
  std::vector<int64_t> ks(static_cast<size_t>(rows));
  std::vector<double> vs(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    ks[static_cast<size_t>(i)] = rng.NextInt(0, rows / 16 + 1);
    vs[static_cast<size_t>(i)] = rng.NextDouble(0, 100);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInt64(std::move(ks)));
  cols.push_back(Column::FromFloat64(std::move(vs)));
  return Table::Make(s, std::move(cols)).ValueOrDie();
}

NDArrayPtr MakeGrid(int64_t n, int64_t chunk, uint64_t seed) {
  Rng rng(seed);
  auto arr = NDArray::Make({DimensionSpec{"i", 0, n, chunk},
                            DimensionSpec{"j", 0, n, chunk}},
                           Schema::Make({Field::Attr("v", DataType::kFloat64)})
                               .ValueOrDie())
                 .ValueOrDie();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      NEXUS_CHECK(arr->Set({i, j}, {Value::Float64(rng.NextDouble(0, 1))}).ok());
    }
  }
  return arr;
}

// --- relational engine ---

void BM_RelationalFilter(benchmark::State& state) {
  TablePtr t = MakeFactTable(state.range(0), 1);
  ExprPtr pred = Gt(Col("v"), Lit(50.0));
  for (auto _ : state) {
    auto r = relational::Filter(t, *pred);
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationalFilter)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_RelationalHashJoin(benchmark::State& state) {
  TablePtr probe = MakeFactTable(state.range(0), 2);
  TablePtr build = relational::Rename(MakeFactTable(state.range(0) / 8, 3),
                                      {{"k", "bk"}, {"v", "bv"}})
                       .ValueOrDie();
  JoinOp op;
  op.left_keys = {"k"};
  op.right_keys = {"bk"};
  for (auto _ : state) {
    auto r = relational::HashJoin(probe, build, op);
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationalHashJoin)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_RelationalHashAggregate(benchmark::State& state) {
  TablePtr t = MakeFactTable(state.range(0), 4);
  AggregateOp op;
  op.group_by = {"k"};
  op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
             AggSpec{AggFunc::kCount, nullptr, "n"}};
  for (auto _ : state) {
    auto r = relational::HashAggregate(t, op);
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationalHashAggregate)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_RelationalSort(benchmark::State& state) {
  TablePtr t = MakeFactTable(state.range(0), 5);
  for (auto _ : state) {
    auto r = relational::Sort(t, {{"v", true}});
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationalSort)->Arg(1 << 14)->Arg(1 << 17);

// --- array engine ---

void BM_ArrayRegrid(benchmark::State& state) {
  NDArrayPtr arr = MakeGrid(state.range(0), 32, 6);
  for (auto _ : state) {
    auto r = arraydb::Regrid(*arr, {{"i", 4}, {"j", 4}}, AggFunc::kAvg);
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_ArrayRegrid)->Arg(64)->Arg(128)->Arg(256);

void BM_ArrayWindow(benchmark::State& state) {
  NDArrayPtr arr = MakeGrid(state.range(0), 32, 7);
  for (auto _ : state) {
    auto r = arraydb::Window(*arr, {{"i", 1}, {"j", 1}}, AggFunc::kAvg);
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_ArrayWindow)->Arg(32)->Arg(64)->Arg(128);

// Chunk pruning ablation: a small slice of a large array — the chunk-native
// engine visits only overlapping chunks; cost should track the slice, not
// the array.
void BM_ArraySlicePruning(benchmark::State& state) {
  NDArrayPtr arr = MakeGrid(256, static_cast<int64_t>(state.range(0)), 8);
  for (auto _ : state) {
    auto r = arraydb::Slice(*arr, {{"i", 0, 16}, {"j", 0, 16}});
    NEXUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetLabel("chunk=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ArraySlicePruning)->Arg(8)->Arg(32)->Arg(128);

// --- linear algebra ---

void BM_GemmNaive(benchmark::State& state) {
  Rng rng(9);
  int64_t n = state.range(0);
  linalg::DenseMatrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.NextDouble(-1, 1);
  for (double& v : b.data()) v = rng.NextDouble(-1, 1);
  for (auto _ : state) {
    auto c = linalg::MatMulNaive(a, b);
    NEXUS_CHECK(c.ok());
    benchmark::DoNotOptimize(c.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  Rng rng(9);
  int64_t n = state.range(0);
  linalg::DenseMatrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.NextDouble(-1, 1);
  for (double& v : b.data()) v = rng.NextDouble(-1, 1);
  for (auto _ : state) {
    auto c = linalg::MatMulBlocked(a, b, state.range(1));
    NEXUS_CHECK(c.ok());
    benchmark::DoNotOptimize(c.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmBlocked)
    ->Args({256, 16})
    ->Args({256, 64})
    ->Args({256, 128})
    ->Args({512, 64});

void BM_SpGemm(benchmark::State& state) {
  Rng rng(10);
  int64_t n = state.range(0);
  double density = 0.02;
  std::vector<linalg::Triplet> ta, tb;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      if (rng.NextBool(density)) ta.push_back({r, c, rng.NextDouble(-1, 1)});
      if (rng.NextBool(density)) tb.push_back({r, c, rng.NextDouble(-1, 1)});
    }
  }
  auto a = linalg::SparseMatrixCSR::FromTriplets(n, n, ta).ValueOrDie();
  auto b = linalg::SparseMatrixCSR::FromTriplets(n, n, tb).ValueOrDie();
  for (auto _ : state) {
    auto c = a.SpGEMM(b);
    NEXUS_CHECK(c.ok());
    benchmark::DoNotOptimize(c.ValueOrDie());
  }
  state.SetLabel("nnz=" + std::to_string(a.nnz()));
}
BENCHMARK(BM_SpGemm)->Arg(256)->Arg(512)->Arg(1024);

// --- graph engine ---

graph::CsrGraph MakeRandomGraph(int64_t nodes, int64_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> src(static_cast<size_t>(edges)),
      dst(static_cast<size_t>(edges));
  for (int64_t e = 0; e < edges; ++e) {
    src[static_cast<size_t>(e)] = rng.NextInt(0, nodes - 1);
    dst[static_cast<size_t>(e)] = rng.NextInt(0, nodes - 1);
  }
  return graph::CsrGraph::FromEdges(src, dst);
}

void BM_PageRankCsr(benchmark::State& state) {
  graph::CsrGraph g = MakeRandomGraph(state.range(0), state.range(0) * 8, 11);
  graph::PageRankOptions opts;
  opts.max_iters = 20;
  opts.epsilon = 0;  // fixed work per run
  for (auto _ : state) {
    auto r = graph::PageRank(g, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * opts.max_iters);
}
BENCHMARK(BM_PageRankCsr)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Bfs(benchmark::State& state) {
  graph::CsrGraph g = MakeRandomGraph(state.range(0), state.range(0) * 8, 12);
  for (auto _ : state) {
    auto levels = graph::Bfs(g, 0);
    benchmark::DoNotOptimize(levels);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(1 << 12)->Arg(1 << 16);

void BM_Triangles(benchmark::State& state) {
  graph::CsrGraph g = MakeRandomGraph(state.range(0), state.range(0) * 6, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CountTriangles(g));
  }
}
BENCHMARK(BM_Triangles)->Arg(1 << 9)->Arg(1 << 12);

// Console output stays the library's; every per-iteration run is also tapped
// into BENCH_engines.json. rows is the benchmark's first /arg when present.
class JsonTapReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTapReporter(benchjson::Recorder* json) : json_(json) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::string name = run.benchmark_name();
      long long rows = 0;
      size_t slash = name.find('/');
      if (slash != std::string::npos) rows = std::atoll(name.c_str() + slash + 1);
      double ms = run.iterations > 0
                      ? run.real_accumulated_time /
                            static_cast<double>(run.iterations) * 1e3
                      : 0.0;
      json_->Record(name, rows, ms);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  benchjson::Recorder* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchjson::Recorder json("engines");
  JsonTapReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
