// E11 — Morsel-driven parallelism: thread count vs speedup on the kernels
// the scheduler drives — a 1M-row hash join, a 1M-row hash aggregate, and a
// blocked GEMM. Every parallel arm is verified byte-identical to the
// thread_count = 1 result (the determinism contract: morsel decomposition
// depends only on job size, results merge in morsel order).
//
// Speedup is meaningful only when the host has cores to spare; on a 1-core
// box all arms time the same and the table shows ~1.0x. The byte-identical
// checks hold regardless.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "linalg/dense.h"
#include "relational/engine.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

TablePtr MakeFactTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("v", DataType::kFloat64)})
                    .ValueOrDie();
  std::vector<int64_t> ks(static_cast<size_t>(rows));
  std::vector<double> vs(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    ks[static_cast<size_t>(i)] = rng.NextInt(0, rows / 16 + 1);
    vs[static_cast<size_t>(i)] = rng.NextDouble(0, 100);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInt64(std::move(ks)));
  cols.push_back(Column::FromFloat64(std::move(vs)));
  return Table::Make(s, std::move(cols)).ValueOrDie();
}

// Best-of-3 wall time of fn() at the given thread budget; the first call's
// result is returned for the identity check.
template <typename Fn>
auto TimeAt(int threads, Fn fn, double* ms) {
  SetThreadCount(threads);
  auto result = fn();
  WallTimer t;
  *ms = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer rt;
    auto again = fn();
    *ms = std::min(*ms, rt.ElapsedMillis());
    (void)again;
  }
  return result;
}

}  // namespace

int main() {
  const int restore = GetThreadCount();
  const int64_t kRows = 1 << 20;
  std::printf("E11 Morsel-driven parallelism: threads vs speedup\n");
  std::printf("host hardware threads: %d (speedup needs >1 to show)\n\n",
              HardwareThreads());
  std::printf("%-10s %9s | %8s | %8s %8s | %8s %8s | %8s %8s | %s\n", "op",
              "rows", "t=1(ms)", "t=2(ms)", "speedup", "t=4(ms)", "speedup",
              "t=8(ms)", "speedup", "identical");

  benchjson::Recorder json("parallel");
  const std::vector<int> kSweep = {2, 4, 8};

  auto sweep = [&](const char* op, int64_t rows, auto fn, auto same) {
    double base_ms = 0;
    auto baseline = TimeAt(1, fn, &base_ms);
    json.Record(op, rows, base_ms, 1);
    std::printf("%-10s %9lld | %8.1f |", op, static_cast<long long>(rows),
                base_ms);
    bool all_identical = true;
    for (int t : kSweep) {
      double ms = 0;
      auto r = TimeAt(t, fn, &ms);
      json.Record(op, rows, ms, t);
      all_identical = all_identical && same(baseline, r);
      std::printf(" %8.1f %7.2fx |", ms, base_ms / ms);
    }
    std::printf(" %s\n", all_identical ? "yes" : "NO");
    NEXUS_CHECK(all_identical) << op << ": parallel result diverged";
  };

  auto table_same = [](const TablePtr& a, const TablePtr& b) {
    return a->Equals(*b);
  };

  {
    TablePtr probe = MakeFactTable(kRows, 2);
    TablePtr build = relational::Rename(MakeFactTable(kRows / 8, 3),
                                        {{"k", "bk"}, {"v", "bv"}})
                         .ValueOrDie();
    JoinOp op;
    op.left_keys = {"k"};
    op.right_keys = {"bk"};
    sweep("join", kRows,
          [&] { return relational::HashJoin(probe, build, op).ValueOrDie(); },
          table_same);
  }
  {
    TablePtr t = MakeFactTable(kRows, 4);
    AggregateOp op;
    op.group_by = {"k"};
    op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
               AggSpec{AggFunc::kCount, nullptr, "n"}};
    sweep("aggregate", kRows,
          [&] { return relational::HashAggregate(t, op).ValueOrDie(); },
          table_same);
  }
  {
    Rng rng(9);
    const int64_t n = 384;
    linalg::DenseMatrix a(n, n), b(n, n);
    for (double& v : a.data()) v = rng.NextDouble(-1, 1);
    for (double& v : b.data()) v = rng.NextDouble(-1, 1);
    sweep("matmul", n * n,
          [&] { return linalg::MatMulBlocked(a, b, 64).ValueOrDie(); },
          [](const linalg::DenseMatrix& x, const linalg::DenseMatrix& y) {
            return x.data() == y.data();
          });
  }

  SetThreadCount(restore);
  std::printf(
      "\nshape expectation: with >=4 hardware threads the join and aggregate\n"
      "reach >=2.5x at t=4 and matmul scales near-linearly; the 'identical'\n"
      "column must read yes everywhere at any core count — parallel output\n"
      "is byte-identical to sequential by construction.\n");
  return 0;
}
