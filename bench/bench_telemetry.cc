// E12 — Telemetry overhead: the tracing hooks ride inside every engine
// kernel, operator, fragment dispatch, and morsel, so their cost decides
// whether tracing can stay compiled in. Measure the E11 workloads (1M-row
// hash join, 1M-row hash aggregate, blocked GEMM) with tracing off and on;
// the off arm must price a disabled hook at one relaxed atomic load, and
// the on arm's overhead stays small because spans are recorded per morsel
// and kernel, not per row.
//
// A second section runs a federated query on a lossy transport with
// tracing enabled and exports the stitched Chrome trace to E12_trace.json
// (load it in Perfetto / chrome://tracing; CI validates it parses).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "linalg/dense.h"
#include "relational/engine.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

TablePtr MakeFactTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("v", DataType::kFloat64)})
                    .ValueOrDie();
  std::vector<int64_t> ks(static_cast<size_t>(rows));
  std::vector<double> vs(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    ks[static_cast<size_t>(i)] = rng.NextInt(0, rows / 16 + 1);
    vs[static_cast<size_t>(i)] = rng.NextDouble(0, 100);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInt64(std::move(ks)));
  cols.push_back(Column::FromFloat64(std::move(vs)));
  return Table::Make(s, std::move(cols)).ValueOrDie();
}

// Best-of-N wall time of fn() with tracing off and on. Reps interleave the
// two arms so host-load drift cancels instead of landing on one side, and
// recorded spans are dropped between reps so the on arm times the hooks,
// not an ever-growing span vector.
template <typename Fn>
void BestMsOffOn(Fn fn, double* off_ms, double* on_ms) {
  *off_ms = 1e30;
  *on_ms = 1e30;
  for (int rep = 0; rep < 7; ++rep) {
    for (bool enabled : {false, true}) {
      telemetry::SetEnabled(enabled);
      telemetry::ClearSpans();
      WallTimer t;
      fn();
      double ms = t.ElapsedMillis();
      double& best = enabled ? *on_ms : *off_ms;
      best = std::min(best, ms);
    }
  }
  telemetry::SetEnabled(false);
  telemetry::ClearSpans();
}

void LoadMatMulCluster(Cluster* cluster) {
  NEXUS_CHECK(cluster->AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster->AddServer("relsmall", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster->AddServer("linalg", MakeLinalgProvider()).ok());
  auto matrix = [](uint64_t seed, const char* d0, const char* d1,
                   const char* attr) {
    Rng rng(seed);
    SchemaPtr s = Schema::Make({Field::Dim(d0), Field::Dim(d1),
                                Field::Attr(attr, DataType::kFloat64)})
                      .ValueOrDie();
    TableBuilder b(s);
    for (int64_t r = 0; r < 16; ++r) {
      for (int64_t c = 0; c < 16; ++c) {
        NEXUS_CHECK(
            b.AppendRow({Value::Int64(r), Value::Int64(c),
                         Value::Float64(rng.NextDouble(0.1, 1.0))})
                .ok());
      }
    }
    return Dataset(b.Finish().ValueOrDie());
  };
  NEXUS_CHECK(cluster->PutData("relstore", "MA", matrix(31, "i", "k", "a")).ok());
  NEXUS_CHECK(cluster->PutData("relsmall", "MB", matrix(32, "k", "j", "b")).ok());
}

}  // namespace

int main() {
  const int restore = GetThreadCount();
  const int64_t kRows = 1 << 20;
  SetThreadCount(4);  // morsel hooks only fire where parallel regions run
  std::printf("E12 Telemetry overhead: tracing off vs on (E11 workloads)\n\n");
  std::printf("%-10s %9s | %10s %10s | %8s\n", "op", "rows", "off(ms)",
              "on(ms)", "overhead");

  benchjson::Recorder json("telemetry");
  double worst_overhead = 0.0;

  auto compare = [&](const char* op, int64_t rows, auto fn) {
    double off = 0.0, on = 0.0;
    BestMsOffOn(fn, &off, &on);
    double overhead = (on - off) / off * 100.0;
    worst_overhead = std::max(worst_overhead, overhead);
    json.Record(std::string(op) + "_off", rows, off, 4);
    json.Record(std::string(op) + "_on", rows, on, 4);
    std::printf("%-10s %9lld | %10.2f %10.2f | %+7.1f%%\n", op,
                static_cast<long long>(rows), off, on, overhead);
  };

  {
    TablePtr probe = MakeFactTable(kRows, 2);
    TablePtr build = relational::Rename(MakeFactTable(kRows / 8, 3),
                                        {{"k", "bk"}, {"v", "bv"}})
                         .ValueOrDie();
    JoinOp op;
    op.left_keys = {"k"};
    op.right_keys = {"bk"};
    compare("join", kRows, [&] {
      return relational::HashJoin(probe, build, op).ValueOrDie();
    });
  }
  {
    TablePtr t = MakeFactTable(kRows, 4);
    AggregateOp op;
    op.group_by = {"k"};
    op.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
               AggSpec{AggFunc::kCount, nullptr, "n"}};
    compare("aggregate", kRows, [&] {
      return relational::HashAggregate(t, op).ValueOrDie();
    });
  }
  {
    Rng rng(9);
    const int64_t n = 384;
    linalg::DenseMatrix a(n, n), b(n, n);
    for (double& v : a.data()) v = rng.NextDouble(-1, 1);
    for (double& v : b.data()) v = rng.NextDouble(-1, 1);
    compare("matmul", n * n,
            [&] { return linalg::MatMulBlocked(a, b, 64).ValueOrDie(); });
  }

  // -------------------------------------------------------------------------
  // Federated trace export: one faulty multi-server query, fully traced.
  // -------------------------------------------------------------------------
  std::printf("\nfederated trace export:\n");
  {
    Cluster cluster;
    LoadMatMulCluster(&cluster);
    FaultOptions f;
    f.enabled = true;
    f.drop_probability = 0.25;
    f.seed = 7;
    cluster.transport()->SetFaultOptions(f);
    CoordinatorOptions opts;
    opts.retry.max_attempts = 8;
    opts.thread_count = 1;
    Coordinator coord(&cluster, opts);
    PlanPtr mm = Plan::MatMul(Plan::Scan("MA"), Plan::Scan("MB"), "c");

    telemetry::SetEnabled(true);
    telemetry::ClearSpans();
    // Walk the deterministic fault stream until a query pays a retry, so
    // the exported trace shows the recovery machinery, not a clean run.
    uint64_t trace = 0;
    ExecutionMetrics m;
    for (int q = 0; q < 8 && trace == 0; ++q) {
      ExecutionMetrics qm;
      NEXUS_CHECK(coord.Execute(mm, &qm).ok());
      if (qm.retries > 0) {
        trace = coord.last_trace_id();
        m = qm;
      }
    }
    telemetry::SetEnabled(false);
    NEXUS_CHECK(trace != 0) << "fault stream never dropped a message";
    NEXUS_CHECK(
        telemetry::WriteChromeTrace("E12_trace.json", telemetry::Spans(), trace)
            .ok());
    int64_t spans = 0;
    for (const auto& s : telemetry::Spans()) spans += s.trace == trace;
    std::printf(
        "  E12_trace.json: %lld spans, %lld fragments, %lld messages, "
        "%lld retries (load in Perfetto)\n",
        static_cast<long long>(spans), static_cast<long long>(m.fragments),
        static_cast<long long>(m.messages), static_cast<long long>(m.retries));
    json.RecordFederated("traced_query_sim", spans, m.simulated_seconds * 1e3,
                         m.fragments, m.messages, m.retries, 1);
    json.AnnotateOptimizer(coord.last_optimizer_stats());
    telemetry::ClearSpans();
  }

  SetThreadCount(restore);
  std::printf(
      "\nshape expectation: the off arms match a build without telemetry (a\n"
      "disabled hook is one relaxed atomic load) and the on arms stay within\n"
      "single-digit percent — spans are per kernel/morsel, never per row.\n"
      "worst overhead this run: %+.1f%% (target < 5%%, noise permitting)\n",
      worst_overhead);
  return 0;
}
