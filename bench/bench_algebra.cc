// E17 — Semi-ring kernel subsystem ("one algebra under all four engines"):
// the same ⊕/⊗ programs run as algebra kernels (Ext/Join/Union on the shared
// morsel pool) and as the engines' native loops, byte-identically.
//
// Arms:
//   e17_spmv_native / e17_spmv_algebra: y = A·x by the CSR loop (lowering
//     off) vs Join⊕ over plus_times (lowering on). Gate: bitwise-equal y —
//     recorded as e17_spmv_identical (rows=1).
//   e17_spgemm_native / e17_spgemm_algebra: C = A·B, Gustavson vs
//     Join⊗+Reduce⊕; bitwise-equal triplets.
//   e17_agg_<engine>: one SUM/MIN/MAX/COUNT aggregate-as-Union⊕ plan
//     executed by every provider — reference, relstore, arraydb, linalg,
//     graphd. Gate: all byte-identical to reference — recorded as
//     e17_agg_engines_identical (rows = agreeing engines).
//   e17_lower_offon_identical: the same plan through relstore with
//     NEXUS_SEMIRING off vs on, byte-identical (rows=1).
//   e17_ops_lowered: a coordinator run; the lower_semiring pass must count
//     the aggregate (last_optimizer_stats().ops_lowered > 0) and
//     ExplainAnalyze must carry the "algebra:" summary line.
#include <cstdio>
#include <string>
#include <vector>

#include "algebra/semiring.h"
#include "bench_json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "federation/coordinator.h"
#include "linalg/sparse.h"
#include "provider/provider.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

constexpr int64_t kAggRows = 1'000'000;

double MinMillis(const std::function<void()>& fn, int reps = 3) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

std::vector<linalg::Triplet> RandomTriplets(int64_t rows, int64_t cols,
                                            int64_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::Triplet> out;
  out.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) {
    out.push_back(linalg::Triplet{rng.NextInt(0, rows - 1),
                                  rng.NextInt(0, cols - 1),
                                  rng.NextDouble(-1, 1)});
  }
  return out;
}

void RunSparseArms(benchjson::Recorder* json) {
  const int64_t n = 2000;
  linalg::SparseMatrixCSR a =
      linalg::SparseMatrixCSR::FromTriplets(n, n, RandomTriplets(n, n, 40000, 7))
          .ValueOrDie();
  Rng rng(11);
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng.NextDouble(-1, 1);

  algebra::SetSemiringLoweringOverride(false);
  std::vector<double> y_native = a.SpMV(x).ValueOrDie();
  double ms_native = MinMillis([&] { a.SpMV(x).ValueOrDie(); });
  algebra::SetSemiringLoweringOverride(true);
  std::vector<double> y_algebra = a.SpMV(x).ValueOrDie();
  double ms_algebra = MinMillis([&] { a.SpMV(x).ValueOrDie(); });

  NEXUS_CHECK(y_native.size() == y_algebra.size());
  for (size_t i = 0; i < y_native.size(); ++i) {
    NEXUS_CHECK(y_native[i] == y_algebra[i]);  // bitwise, not approximate
  }
  json->Record("e17_spmv_native", n, ms_native);
  json->Record("e17_spmv_algebra", n, ms_algebra);
  json->Record("e17_spmv_identical", 1, 0.0);
  std::printf("SpMV %lldx%lld (nnz=%lld)\n", static_cast<long long>(n),
              static_cast<long long>(n), static_cast<long long>(a.nnz()));
  std::printf("  native CSR loop   %9.2f ms\n", ms_native);
  std::printf("  algebra Join+     %9.2f ms   (bitwise identical)\n",
              ms_algebra);

  const int64_t m = 300;
  linalg::SparseMatrixCSR ga =
      linalg::SparseMatrixCSR::FromTriplets(m, m, RandomTriplets(m, m, 6000, 5))
          .ValueOrDie();
  linalg::SparseMatrixCSR gb =
      linalg::SparseMatrixCSR::FromTriplets(m, m, RandomTriplets(m, m, 6000, 9))
          .ValueOrDie();
  algebra::SetSemiringLoweringOverride(false);
  linalg::SparseMatrixCSR c_native = ga.SpGEMM(gb).ValueOrDie();
  double ms_gn = MinMillis([&] { ga.SpGEMM(gb).ValueOrDie(); });
  algebra::SetSemiringLoweringOverride(true);
  linalg::SparseMatrixCSR c_algebra = ga.SpGEMM(gb).ValueOrDie();
  double ms_ga = MinMillis([&] { ga.SpGEMM(gb).ValueOrDie(); });
  std::vector<linalg::Triplet> tn = c_native.ToTriplets();
  std::vector<linalg::Triplet> ta = c_algebra.ToTriplets();
  NEXUS_CHECK(tn.size() == ta.size());
  for (size_t i = 0; i < tn.size(); ++i) {
    NEXUS_CHECK(tn[i].row == ta[i].row && tn[i].col == ta[i].col &&
                tn[i].value == ta[i].value);
  }
  json->Record("e17_spgemm_native", m, ms_gn);
  json->Record("e17_spgemm_algebra", m, ms_ga);
  std::printf("SpGEMM %lldx%lld (nnz=%lld)\n", static_cast<long long>(m),
              static_cast<long long>(m), static_cast<long long>(ga.nnz()));
  std::printf("  native Gustavson  %9.2f ms\n", ms_gn);
  std::printf("  algebra Join+Red  %9.2f ms   (bitwise identical)\n", ms_ga);
  algebra::ClearSemiringLoweringOverride();
}

TablePtr Fact17() {
  SchemaPtr s = Schema::Make({Field::Attr("g", DataType::kInt64),
                              Field::Attr("v", DataType::kFloat64),
                              Field::Attr("c", DataType::kInt64)})
                    .ValueOrDie();
  Rng rng(23);
  TableBuilder b(s);
  // Integer-valued doubles keep the grouped sums exact, so every engine's
  // fold can be compared byte-for-byte.
  for (int64_t i = 0; i < kAggRows; ++i) {
    NEXUS_CHECK(
        b.AppendRow({Value::Int64(rng.NextInt(0, 63)),
                     Value::Float64(static_cast<double>(rng.NextInt(-50, 50))),
                     Value::Int64(rng.NextInt(-10, 10))})
            .ok());
  }
  return b.Finish().ValueOrDie();
}

PlanPtr AggPlan() {
  return Plan::Aggregate(Plan::Scan("fact17"), {"g"},
                         {AggSpec{AggFunc::kSum, Col("v"), "sv"},
                          AggSpec{AggFunc::kSum, Col("c"), "sc"},
                          AggSpec{AggFunc::kMin, Col("v"), "lo"},
                          AggSpec{AggFunc::kMax, Col("c"), "hi"},
                          AggSpec{AggFunc::kCount, nullptr, "n"}});
}

void RunEngineArms(benchjson::Recorder* json) {
  TablePtr fact = Fact17();
  PlanPtr plan = AggPlan();
  struct Engine {
    const char* name;
    ProviderPtr provider;
  };
  std::vector<Engine> engines = {{"reference", MakeReferenceProvider()},
                                 {"relstore", MakeRelationalProvider()},
                                 {"arraydb", MakeArrayProvider()},
                                 {"linalg", MakeLinalgProvider()},
                                 {"graphd", MakeGraphProvider()}};
  for (Engine& e : engines) {
    NEXUS_CHECK(e.provider->catalog()->Put("fact17", Dataset(fact)).ok());
  }

  algebra::SetSemiringLoweringOverride(true);
  std::printf("\nSUM/MIN/MAX/COUNT aggregate over %lld rows\n",
              static_cast<long long>(kAggRows));
  TablePtr baseline;
  int identical = 0;
  for (Engine& e : engines) {
    NEXUS_CHECK(e.provider->ClaimsTree(*plan));
    Dataset out = e.provider->Execute(*plan).ValueOrDie();
    double ms = MinMillis([&] { e.provider->Execute(*plan).ValueOrDie(); });
    TablePtr t = out.table();
    NEXUS_CHECK(t != nullptr);
    if (baseline == nullptr) {
      baseline = t;
    } else {
      NEXUS_CHECK(t->Equals(*baseline));
      ++identical;
    }
    json->Record(std::string("e17_agg_") + e.name,
                 static_cast<long long>(t->num_rows()), ms);
    std::printf("  %-10s %9.2f ms\n", e.name, ms);
  }
  json->Record("e17_agg_engines_identical", identical, 0.0);
  std::printf("  all %d engines byte-identical to reference\n", identical);

  // Off vs on through the relational provider: the switch must not change a
  // single byte.
  algebra::SetSemiringLoweringOverride(false);
  TablePtr off = engines[1].provider->Execute(*plan).ValueOrDie().table();
  algebra::SetSemiringLoweringOverride(true);
  TablePtr on = engines[1].provider->Execute(*plan).ValueOrDie().table();
  NEXUS_CHECK(off->Equals(*on));
  json->Record("e17_lower_offon_identical", 1, 0.0);
  std::printf("  NEXUS_SEMIRING off vs on: byte-identical\n");

  // Planner visibility: the lower_semiring pass counts the aggregate and
  // ExplainAnalyze carries the algebra summary line.
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
  NEXUS_CHECK(cluster.PutData("relstore", "fact17", Dataset(fact)).ok());
  Coordinator coord(&cluster);
  Dataset via_coord = coord.Execute(plan).ValueOrDie();
  NEXUS_CHECK(via_coord.table()->Equals(*baseline));
  OptimizerStats stats = coord.last_optimizer_stats();
  NEXUS_CHECK(stats.ops_lowered > 0);
  std::string explain = coord.ExplainAnalyze(plan).ValueOrDie();
  NEXUS_CHECK(explain.find("algebra:") != std::string::npos);
  json->Record("e17_ops_lowered", stats.ops_lowered, 0.0);
  json->AnnotateOptimizer(stats);
  std::printf("  optimizer ops_lowered=%lld; ExplainAnalyze has algebra line\n",
              static_cast<long long>(stats.ops_lowered));
  algebra::ClearSemiringLoweringOverride();
}

}  // namespace

int main() {
  benchjson::Recorder json("algebra");
  std::printf("E17: one semi-ring algebra under all four engines\n");
  std::printf("threads=%d\n\n", GetThreadCount());
  RunSparseArms(&json);
  RunEngineArms(&json);
  std::printf("\nall byte-identity checks passed\n");
  return 0;
}
