// E6 — Control iteration: "many areas, such as graph analytics and data
// mining, require repeated execution of an expression until some
// convergence criterion is met."
//
// Method: PageRank-to-convergence expressed as an Iterate over base algebra
// (the PageRank expansion), executed two ways on the same cluster:
//   provider-side  the whole Iterate ships once; the loop runs at the server;
//   client-driven  the coordinator drives the loop, re-shipping the body
//                  (with the current state inlined) every iteration.
// Sweep the graph size; report iterations, round trips, bytes through the
// client, and simulated network time.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "common/random.h"
#include "core/expansion.h"
#include "federation/coordinator.h"

using namespace nexus;  // NOLINT

int main() {
  std::printf("E6 Control iteration: PageRank fixpoint, provider-side vs\n");
  std::printf("client-driven loop (same Iterate plan)\n\n");
  std::printf("%7s %6s | %5s %10s %8s | %5s %10s %8s | %7s\n", "nodes",
              "iters", "msgs", "thru-cli", "sim(ms)", "msgs", "thru-cli",
              "sim(ms)", "time");
  std::printf("%7s %6s | %26s | %26s | %7s\n", "", "",
              "----- provider-side -----", "----- client-driven -----", "ratio");

  benchjson::Recorder json("iteration");
  struct CacheRow {
    int64_t nodes;
    int64_t cached_plan_bytes, nocache_plan_bytes, hits;
    double cached_sim, nocache_sim;
  };
  std::vector<CacheRow> cache_rows;
  for (int64_t nodes : {50, 100, 200, 400}) {
    Cluster cluster;
    NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
    NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
    Rng rng(static_cast<uint64_t>(nodes) * 13);
    SchemaPtr es = Schema::Make({Field::Attr("src", DataType::kInt64),
                                 Field::Attr("dst", DataType::kInt64)})
                       .ValueOrDie();
    TableBuilder eb(es);
    for (int64_t e = 0; e < nodes * 4; ++e) {
      NEXUS_CHECK(eb.AppendRow({Value::Int64(rng.NextInt(0, nodes - 1)),
                                Value::Int64(rng.NextInt(0, nodes - 1))})
                      .ok());
    }
    NEXUS_CHECK(
        cluster.PutData("relstore", "edges", Dataset(eb.Finish().ValueOrDie()))
            .ok());

    PageRankOp pr;
    pr.max_iters = 30;
    pr.epsilon = 1e-6;
    FederatedCatalog fed(&cluster);
    SchemaPtr edge_schema = fed.GetSchema("edges").ValueOrDie();
    PlanPtr loop = ExpandPageRank(Plan::Scan("edges"), pr, *edge_schema).ValueOrDie();

    CoordinatorOptions server_side;
    server_side.provider_side_iteration = true;
    Coordinator sc(&cluster, server_side);
    ExecutionMetrics sm;
    Dataset r1 = sc.Execute(loop, &sm).ValueOrDie();

    CoordinatorOptions client_side;
    client_side.provider_side_iteration = false;
    Coordinator cc(&cluster, client_side);
    ExecutionMetrics cm;
    Dataset r2 = cc.Execute(loop, &cm).ValueOrDie();

    // E13 ablation: the same client-driven loop without the plan cache —
    // every round re-ships the full body instead of a fingerprint + changed
    // loop-variable bindings.
    CoordinatorOptions no_cache = client_side;
    no_cache.plan_cache = false;
    Coordinator nc(&cluster, no_cache);
    ExecutionMetrics nm;
    Dataset r3 = nc.Execute(loop, &nm).ValueOrDie();

    // Ranks agree within float tolerance.
    TablePtr t1 = r1.AsTable().ValueOrDie();
    TablePtr t2 = r2.AsTable().ValueOrDie();
    TablePtr t3 = r3.AsTable().ValueOrDie();
    NEXUS_CHECK(t1->num_rows() == t2->num_rows());
    NEXUS_CHECK(t2->num_rows() == t3->num_rows());
    json.Record("provider_side_sim", nodes, sm.simulated_seconds * 1e3);
    json.AnnotateOptimizer(sc.last_optimizer_stats());
    json.RecordWire("client_driven_sim", nodes, cm.simulated_seconds * 1e3,
                    cm.fragments, cm.messages, cm.retries, cm.bytes_total,
                    cm.plan_cache_hits);
    json.AnnotateOptimizer(cc.last_optimizer_stats());
    json.RecordWire("client_nocache_sim", nodes, nm.simulated_seconds * 1e3,
                    nm.fragments, nm.messages, nm.retries, nm.bytes_total,
                    nm.plan_cache_hits);
    json.AnnotateOptimizer(nc.last_optimizer_stats());
    cache_rows.push_back({nodes, cm.plan_bytes, nm.plan_bytes,
                          cm.plan_cache_hits, cm.simulated_seconds,
                          nm.simulated_seconds});

    std::printf("%7lld %6lld | %5lld %10s %8.2f | %5lld %10s %8.2f | %6.2fx\n",
                static_cast<long long>(nodes),
                static_cast<long long>(cm.client_loop_iterations),
                static_cast<long long>(sm.messages),
                FormatBytes(static_cast<uint64_t>(sm.bytes_through_client)).c_str(),
                sm.simulated_seconds * 1e3, static_cast<long long>(cm.messages),
                FormatBytes(static_cast<uint64_t>(cm.bytes_through_client)).c_str(),
                cm.simulated_seconds * 1e3,
                cm.simulated_seconds / sm.simulated_seconds);
  }
  std::printf("\nshape expectation: provider-side iteration is 2 messages total;\n");
  std::printf("the client-driven loop pays >=4 messages per iteration (body plan,\n");
  std::printf("state down, measure plan, delta back) plus state bytes both ways,\n");
  std::printf("so the gap scales with iterations x state size.\n");

  std::printf("\nE13 Plan-fingerprint cache on the client-driven loop\n\n");
  std::printf("%7s | %10s %8s | %10s %8s | %5s | %7s\n", "nodes", "plan-B",
              "sim(ms)", "plan-B", "sim(ms)", "hits", "time");
  std::printf("%7s | %19s | %19s | %5s | %7s\n", "", "----- cached ------",
              "---- no cache -----", "", "ratio");
  for (const auto& r : cache_rows) {
    std::printf("%7lld | %10s %8.2f | %10s %8.2f | %5lld | %6.2fx\n",
                static_cast<long long>(r.nodes),
                FormatBytes(static_cast<uint64_t>(r.cached_plan_bytes)).c_str(),
                r.cached_sim * 1e3,
                FormatBytes(static_cast<uint64_t>(r.nocache_plan_bytes)).c_str(),
                r.nocache_sim * 1e3, static_cast<long long>(r.hits),
                r.nocache_sim / r.cached_sim);
  }
  std::printf("\nshape expectation: the cached loop ships the body once and then\n");
  std::printf("only fingerprint references + changed loop-variable bindings, so\n");
  std::printf("plan bytes stop scaling with iterations and simulated time drops.\n");
  return 0;
}
