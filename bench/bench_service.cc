// E15 — Multi-tenant overload: admission control, budget kills, and
// graceful degradation under 4x oversubscription. A shared Server runs 8
// tenants (interactive / standard / batch classes) from twice as many
// client threads as it has execution slots; every query must complete or
// fail with a retryable status (rejected at the queue or killed by the
// governor), no tenant class may starve, and a 10x-memory-oversubscribed
// tenant must be kill-or-queued without perturbing its neighbors' results.
//
// The JSON gates are schedule-independent invariants, not exact timings:
// rejections observed at saturation, zero starved classes, zero
// non-retryable failures, p99 latency bounded, per-tenant completion
// counts present, and byte-identical neighbor results under memory
// pressure.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "expr/builder.h"
#include "provider/provider.h"
#include "service/server.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT
using service::QueryClass;
using service::QueryOptions;
using service::QueryReport;
using service::ServerOptions;
using service::TenantOptions;

namespace {

constexpr int kTenants = 8;
constexpr int kThreadsPerTenant = 2;
constexpr int kQueriesPerThread = 6;

void LoadData(Cluster* cluster) {
  Rng rng(42);
  SchemaPtr orders = Schema::Make({Field::Attr("oid", DataType::kInt64),
                                   Field::Attr("cust", DataType::kInt64),
                                   Field::Attr("amount", DataType::kFloat64)})
                         .ValueOrDie();
  TableBuilder b(orders);
  for (int64_t i = 0; i < 20000; ++i) {
    NEXUS_CHECK(b.AppendRow({Value::Int64(i),
                             Value::Int64(rng.NextInt(0, 199)),
                             Value::Float64(rng.NextDouble(0, 1000))})
                    .ok());
  }
  NEXUS_CHECK(
      cluster->PutData("relstore", "orders", Dataset(b.Finish().ValueOrDie()))
          .ok());
}

QueryClass ClassOf(int tenant) {
  if (tenant < 3) return QueryClass::kInteractive;
  if (tenant < 6) return QueryClass::kStandard;
  return QueryClass::kBatch;
}

// Per-class workload: cheap scan for interactive, group-by for standard,
// sort for batch — different memory and CPU shapes under one queue.
PlanPtr PlanFor(QueryClass cls, int64_t salt) {
  double cut = 100.0 + static_cast<double>(salt % 7) * 50.0;
  switch (cls) {
    case QueryClass::kInteractive:
      return Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(cut)));
    case QueryClass::kStandard: {
      AggregateOp agg;
      agg.group_by = {"cust"};
      agg.aggs.push_back({AggFunc::kSum, Col("amount"), "total"});
      return Plan::Aggregate(
          Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(cut))),
          agg.group_by, agg.aggs);
    }
    case QueryClass::kBatch:
      return Plan::Sort(
          Plan::Select(Plan::Scan("orders"), Gt(Col("amount"), Lit(cut))),
          {{"amount", false}});
  }
  return Plan::Scan("orders");
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct TenantStats {
  std::atomic<int> completed{0};
  std::atomic<int> retryable_failures{0};
  std::atomic<int> fatal_failures{0};
  std::mutex mu;
  std::vector<double> latencies_ms;  // guarded by mu
};

// One client thread: issue queries back-to-back, retrying retryable
// rejections/kills with a short backoff. Overload is sustained because
// 16 threads share 4 slots.
void ClientLoop(service::Server* server, int64_t session, int tenant,
                TenantStats* stats) {
  QueryClass cls = ClassOf(tenant);
  for (int q = 0; q < kQueriesPerThread; ++q) {
    QueryOptions opts;
    opts.query_class = cls;
    bool done = false;
    for (int attempt = 0; attempt < 200 && !done; ++attempt) {
      QueryReport report;
      Status s = server
                     ->Execute(session, PlanFor(cls, tenant * 31 + q), opts,
                               &report)
                     .status();
      if (s.ok()) {
        stats->completed.fetch_add(1);
        std::lock_guard<std::mutex> lock(stats->mu);
        stats->latencies_ms.push_back(report.queue_wait_ms +
                                      report.latency_ms);
        done = true;
      } else if (IsRetryable(s)) {
        stats->retryable_failures.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      } else {
        stats->fatal_failures.fetch_add(1);
        done = true;
      }
    }
  }
}

}  // namespace

int main() {
  benchjson::Recorder rec("service");

  // ----- Phase 1: 8 tenants at ~4x overload. -------------------------------
  Cluster cluster;
  NEXUS_CHECK(cluster.AddServer("relstore", MakeRelationalProvider()).ok());
  NEXUS_CHECK(cluster.AddServer("reference", MakeReferenceProvider()).ok());
  LoadData(&cluster);

  ServerOptions options;
  options.max_concurrent = 4;
  options.queue_capacity = 6;  // < client threads - slots: saturation rejects
  service::Server server(&cluster, options);
  std::vector<int64_t> sessions;
  for (int t = 0; t < kTenants; ++t) {
    NEXUS_CHECK(
        server.RegisterTenant(StrCat("tenant", t), TenantOptions{0, 1}).ok());
    sessions.push_back(
        server.OpenSession(StrCat("tenant", t)).ValueOrDie());
  }

  TenantStats stats[kTenants];
  WallTimer timer;
  std::vector<std::thread> clients;
  for (int t = 0; t < kTenants; ++t) {
    for (int k = 0; k < kThreadsPerTenant; ++k) {
      clients.emplace_back(ClientLoop, &server, sessions[t], t, &stats[t]);
    }
  }
  for (std::thread& th : clients) th.join();
  double wall_ms = timer.ElapsedSeconds() * 1e3;

  std::vector<double> all_lat, interactive_lat;
  int total_completed = 0, total_retryable = 0, total_fatal = 0;
  int starved_classes = 0;
  int class_completed[3] = {0, 0, 0};
  for (int t = 0; t < kTenants; ++t) {
    total_completed += stats[t].completed.load();
    total_retryable += stats[t].retryable_failures.load();
    total_fatal += stats[t].fatal_failures.load();
    class_completed[static_cast<int>(ClassOf(t))] +=
        stats[t].completed.load();
    double mean = 0.0;
    for (double l : stats[t].latencies_ms) mean += l;
    if (!stats[t].latencies_ms.empty()) {
      mean /= static_cast<double>(stats[t].latencies_ms.size());
    }
    all_lat.insert(all_lat.end(), stats[t].latencies_ms.begin(),
                   stats[t].latencies_ms.end());
    if (ClassOf(t) == QueryClass::kInteractive) {
      interactive_lat.insert(interactive_lat.end(),
                             stats[t].latencies_ms.begin(),
                             stats[t].latencies_ms.end());
    }
    rec.Record(StrCat("e15_tenant_", t), stats[t].completed.load(), mean);
  }
  for (int c = 0; c < 3; ++c) {
    if (class_completed[c] == 0) ++starved_classes;
  }

  const int expected = kTenants * kThreadsPerTenant * kQueriesPerThread;
  rec.Record("e15_overload_wall", total_completed, wall_ms,
             kTenants * kThreadsPerTenant);
  rec.Record("e15_overload_p50_interactive", total_completed,
             Percentile(interactive_lat, 0.50));
  rec.Record("e15_overload_p99_interactive", total_completed,
             Percentile(interactive_lat, 0.99));
  rec.Record("e15_overload_p99_all", total_completed,
             Percentile(all_lat, 0.99));
  rec.Record("e15_rejections", server.admission().rejected(), 0.0);
  rec.Record("e15_retryable_failures", total_retryable, 0.0);
  rec.Record("e15_non_retryable_failures", total_fatal, 0.0);
  rec.Record("e15_starved_classes", starved_classes, 0.0);
  rec.Record("e15_completed_all", total_completed == expected ? 1 : 0, 0.0);

  std::printf("E15 overload: %d/%d completed, %lld rejected, %d retryable, "
              "%d fatal, %d starved classes, wall %.0f ms\n",
              total_completed, expected,
              static_cast<long long>(server.admission().rejected()),
              total_retryable, total_fatal, starved_classes, wall_ms);
  std::printf("  latency p50(interactive)=%.1f ms  p99(interactive)=%.1f ms"
              "  p99(all)=%.1f ms\n",
              Percentile(interactive_lat, 0.50),
              Percentile(interactive_lat, 0.99), Percentile(all_lat, 0.99));

  // ----- Phase 2: 10x memory oversubscription without collateral damage. --
  // Measure the hog query's real reservation on an unlimited budget, then
  // re-register the hog at a tenth of it. Its queries must be killed (or
  // queued) with a retryable status while a neighbor's concurrent results
  // stay byte-identical to its solo run.
  service::Server over(&cluster, ServerOptions{});
  NEXUS_CHECK(over.RegisterTenant("probe", TenantOptions{0, 1}).ok());
  int64_t probe = over.OpenSession("probe").ValueOrDie();
  QueryReport probe_report;
  PlanPtr hog_plan = PlanFor(QueryClass::kBatch, 3);
  NEXUS_CHECK(
      over.Execute(probe, hog_plan, {}, &probe_report).status().ok());
  int64_t hog_budget = std::max<int64_t>(1, probe_report.reserved_bytes / 10);

  NEXUS_CHECK(
      over.RegisterTenant("hog", TenantOptions{hog_budget, 1}).ok());
  NEXUS_CHECK(over.RegisterTenant("neighbor", TenantOptions{0, 1}).ok());
  int64_t hog_session = over.OpenSession("hog").ValueOrDie();
  int64_t nb_session = over.OpenSession("neighbor").ValueOrDie();

  PlanPtr nb_plan = PlanFor(QueryClass::kStandard, 1);
  Dataset nb_solo = over.Execute(nb_session, nb_plan).ValueOrDie();

  std::atomic<int> hog_killed{0}, hog_fatal{0};
  std::thread hog_thread([&] {
    for (int i = 0; i < 8; ++i) {
      Status s = over.Execute(hog_session, hog_plan).status();
      if (s.ok()) continue;  // squeaked under the budget this round
      if (IsRetryable(s)) {
        hog_killed.fetch_add(1);
      } else {
        hog_fatal.fetch_add(1);
      }
    }
  });
  int nb_identical = 0, nb_runs = 12;
  for (int i = 0; i < nb_runs; ++i) {
    auto got = over.Execute(nb_session, nb_plan);
    if (got.ok() && got.ValueOrDie().LogicallyEquals(nb_solo)) ++nb_identical;
  }
  hog_thread.join();

  rec.Record("e15_oversub_identical", nb_identical == nb_runs ? 1 : 0, 0.0);
  rec.Record("e15_oversub_hog_kills", hog_killed.load(), 0.0);
  rec.Record("e15_oversub_hog_fatal", hog_fatal.load(), 0.0);
  rec.Record("e15_governor_kills", over.governor().kills(), 0.0);

  std::printf("E15 oversubscription: budget=%lld B, neighbor identical "
              "%d/%d, hog retryable-killed %d, hog fatal %d, governor "
              "kills %lld\n",
              static_cast<long long>(hog_budget), nb_identical, nb_runs,
              hog_killed.load(), hog_fatal.load(),
              static_cast<long long>(over.governor().kills()));
  return total_fatal == 0 && hog_fatal.load() == 0 && starved_classes == 0
             ? 0
             : 1;
}
