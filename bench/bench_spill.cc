// E18 — Out-of-core execution: Grace-style spilling join and aggregation
// under memory oversubscription. A probe run with a peak-tracking meter
// measures the in-memory working set of a hash join and a grouped
// aggregate; the spill arm then re-runs both with an 8x-smaller budget
// forced through the spill policy, so every operator must partition to
// NXB1 scratch and stream partition-at-a-time.
//
// Gates (the bench exits nonzero on correctness, CI's JSON gate re-checks
// the numbers): the oversubscribed run completes instead of failing,
// its result is byte-identical to the in-memory run, spill bytes actually
// hit disk, no scratch file outlives its query, and the slowdown stays
// within 3x (checked from the JSON so loaded local machines don't flake).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/plan.h"
#include "exec/spill/spill.h"
#include "expr/builder.h"
#include "relational/engine.h"
#include "telemetry/metrics.h"

using namespace nexus;         // NOLINT
using namespace nexus::exprs;  // NOLINT

namespace {

constexpr int64_t kLeftRows = 200000;
constexpr int64_t kRightRows = 60000;
constexpr int64_t kKeyRange = 20000;
constexpr int kReps = 3;

/// Tracks the peak resident working set of a run: the probe that the spill
/// arm's oversubscribed budget is derived from.
class PeakMeter : public MemoryMeter {
 public:
  void Charge(int64_t bytes) override {
    int64_t now = resident_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void Release(int64_t bytes) override {
    resident_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> resident_{0};
  std::atomic<int64_t> peak_{0};
};

TablePtr BuildLeft() {
  Rng rng(18);
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("v", DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t i = 0; i < kLeftRows; ++i) {
    NEXUS_CHECK(b.AppendRow({Value::Int64(rng.NextInt(0, kKeyRange - 1)),
                             Value::Float64(rng.NextDouble(0, 100))})
                    .ok());
  }
  return b.Finish().ValueOrDie();
}

TablePtr BuildRight() {
  Rng rng(81);
  SchemaPtr s = Schema::Make({Field::Attr("k", DataType::kInt64),
                              Field::Attr("w", DataType::kFloat64)})
                    .ValueOrDie();
  TableBuilder b(s);
  for (int64_t i = 0; i < kRightRows; ++i) {
    NEXUS_CHECK(b.AppendRow({Value::Int64(rng.NextInt(0, kKeyRange - 1)),
                             Value::Float64(rng.NextDouble(0, 10))})
                    .ok());
  }
  return b.Finish().ValueOrDie();
}

struct Arm {
  TablePtr result;
  double wall_ms = 0.0;  // best of kReps
};

template <typename Fn>
Arm Run(const Fn& fn) {
  Arm arm;
  arm.wall_ms = 1e30;
  for (int r = 0; r < kReps; ++r) {
    WallTimer t;
    arm.result = fn();
    arm.wall_ms = std::min(arm.wall_ms, t.ElapsedMillis());
  }
  return arm;
}

}  // namespace

int main() {
  benchjson::Recorder rec("spill");
  TablePtr left = BuildLeft();
  TablePtr right = BuildRight();

  JoinOp join;
  join.type = JoinType::kInner;
  join.left_keys = {"k"};
  join.right_keys = {"k"};

  AggregateOp agg;
  agg.group_by = {"k"};
  agg.aggs = {AggSpec{AggFunc::kSum, Col("v"), "sv"},
              AggSpec{AggFunc::kCount, nullptr, "n"},
              AggSpec{AggFunc::kMin, Col("v"), "lo"}};

  // ----- Probe: in-memory arms under a peak-tracking meter. The override
  // pins spill OFF so the probe is a genuine in-memory run even when the
  // environment forces NEXUS_SPILL=1.
  spill::SetSpillOverride(false);
  spill::ClearSpillBudgetOverride();
  PeakMeter probe;
  TaskContext probe_ctx;
  probe_ctx.meter = &probe;
  Arm join_mem, agg_mem;
  {
    ScopedTaskContext sc(&probe_ctx);
    join_mem = Run([&] {
      return relational::HashJoin(left, right, join).ValueOrDie();
    });
    agg_mem = Run([&] {
      return relational::HashAggregate(left, agg).ValueOrDie();
    });
  }
  const int64_t peak = probe.peak();
  const int64_t budget = std::max<int64_t>(1, peak / 8);

  // ----- Spill arms: 8x oversubscribed, identical answers required. -------
  auto* bytes_written =
      telemetry::MetricsRegistry::Global().counter("spill.bytes_written");
  auto* partitions =
      telemetry::MetricsRegistry::Global().counter("spill.partitions");
  const int64_t bytes_before = bytes_written->value();
  const int64_t parts_before = partitions->value();
  spill::SetSpillOverride(true);
  spill::SetSpillBudgetOverride(budget);
  Arm join_spill = Run([&] {
    return relational::HashJoin(left, right, join).ValueOrDie();
  });
  Arm agg_spill = Run([&] {
    return relational::HashAggregate(left, agg).ValueOrDie();
  });
  spill::ClearSpillOverride();
  spill::ClearSpillBudgetOverride();
  const int64_t spill_bytes = bytes_written->value() - bytes_before;
  const int64_t spill_parts = partitions->value() - parts_before;
  const int64_t leaked = spill::SpillManager::Global().live_files();

  const bool join_identical = join_spill.result->Equals(*join_mem.result);
  const bool agg_identical = agg_spill.result->Equals(*agg_mem.result);
  const double join_slowdown =
      join_spill.wall_ms / std::max(join_mem.wall_ms, 1e-9);
  const double agg_slowdown =
      agg_spill.wall_ms / std::max(agg_mem.wall_ms, 1e-9);

  rec.Record("e18_probe_peak_bytes", peak, 0.0);
  rec.Record("e18_budget_bytes", budget, 0.0);
  rec.Record("e18_join_inmem", join_mem.result->num_rows(), join_mem.wall_ms);
  rec.Record("e18_join_spill", join_spill.result->num_rows(),
             join_spill.wall_ms);
  rec.Record("e18_join_identical", join_identical ? 1 : 0, 0.0);
  rec.Record("e18_join_slowdown_x", 0, join_slowdown);
  rec.Record("e18_agg_inmem", agg_mem.result->num_rows(), agg_mem.wall_ms);
  rec.Record("e18_agg_spill", agg_spill.result->num_rows(), agg_spill.wall_ms);
  rec.Record("e18_agg_identical", agg_identical ? 1 : 0, 0.0);
  rec.Record("e18_agg_slowdown_x", 0, agg_slowdown);
  rec.Record("e18_spill_bytes", spill_bytes, 0.0);
  rec.Record("e18_spill_partitions", spill_parts, 0.0);
  rec.Record("e18_scratch_leaked", leaked, 0.0);

  std::printf("E18 out-of-core: peak=%lld B budget=%lld B (8x oversubscribed)\n",
              static_cast<long long>(peak), static_cast<long long>(budget));
  std::printf("  join: %lld rows, in-mem %.1f ms, spill %.1f ms (%.2fx), "
              "identical=%d\n",
              static_cast<long long>(join_spill.result->num_rows()),
              join_mem.wall_ms, join_spill.wall_ms, join_slowdown,
              join_identical ? 1 : 0);
  std::printf("  agg:  %lld rows, in-mem %.1f ms, spill %.1f ms (%.2fx), "
              "identical=%d\n",
              static_cast<long long>(agg_spill.result->num_rows()),
              agg_mem.wall_ms, agg_spill.wall_ms, agg_slowdown,
              agg_identical ? 1 : 0);
  std::printf("  spilled %lld B across %lld partitions, %lld scratch "
              "files leaked\n",
              static_cast<long long>(spill_bytes),
              static_cast<long long>(spill_parts),
              static_cast<long long>(leaked));

  const bool ok = join_identical && agg_identical && spill_bytes > 0 &&
                  spill_parts > 0 && leaked == 0;
  if (!ok) std::printf("E18 FAILED correctness gates\n");
  return ok ? 0 : 1;
}
